"""Make the src layout importable even without an editable install.

Offline environments may lack the ``wheel`` package needed for
``pip install -e .``; inserting ``src`` here keeps ``pytest tests/`` and
``pytest benchmarks/`` working either way.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
