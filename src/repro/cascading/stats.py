"""Sampling-based column statistics for encoding selection.

§2.6: "the search space for optimal encoding combinations grows
significantly as the catalog expands, requiring systems like Procella
and BtrBlocks to employ sampling-based distribution analysis and
heuristic approaches for encoding selection."

``collect_stats`` inspects a bounded sample (contiguous head + strided
tail, so both local runs and global cardinality are represented) and
produces the signals the selector's heuristics key on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encodings.base import Kind, infer_kind

SAMPLE_SIZE = 4096


@dataclass
class ColumnStats:
    """Distribution fingerprint of a (sampled) column."""

    kind: Kind
    n: int
    n_sampled: int
    n_unique: int = 0
    min_value: float = 0.0
    max_value: float = 0.0
    non_negative: bool = True
    avg_run_length: float = 1.0
    sorted_fraction: float = 0.0  # fraction of non-decreasing steps
    mode_fraction: float = 0.0  # share of the most frequent value
    decimal_fraction: float = 0.0  # floats that are short decimals
    avg_byte_length: float = 0.0  # BYTES only
    true_fraction: float = 0.0  # BOOL only
    avg_list_length: float = 0.0  # LIST_* only
    window_overlap: float = 0.0  # LIST_INT: consecutive-row overlap


def take_sample(values, limit: int = SAMPLE_SIZE):
    """Head block + strided remainder, preserving local structure."""
    n = len(values)
    if n <= limit:
        return values
    head = limit // 2
    stride = max(1, (n - head) // (limit - head))
    if isinstance(values, np.ndarray):
        return np.concatenate((values[:head], values[head::stride][: limit - head]))
    return list(values[:head]) + list(values[head::stride][: limit - head])


def collect_stats(values) -> ColumnStats:
    kind = infer_kind(values)
    n = len(values)
    sample = take_sample(values)
    stats = ColumnStats(kind=kind, n=n, n_sampled=len(sample))
    if len(sample) == 0:
        return stats
    if kind == Kind.INT:
        arr = np.asarray(sample, dtype=np.int64)
        _numeric_stats(stats, arr)
    elif kind == Kind.FLOAT:
        arr = np.asarray(sample, dtype=np.float64)
        _numeric_stats(stats, arr)
        finite = arr[np.isfinite(arr)]
        if len(finite):
            rounded = np.round(finite, 6)
            stats.decimal_fraction = float(
                (rounded == finite).mean()
            )
    elif kind == Kind.BOOL:
        arr = np.asarray(sample)
        stats.true_fraction = float(arr.mean())
        stats.n_unique = int(len(np.unique(arr)))
        runs = 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
        stats.avg_run_length = len(arr) / runs
    elif kind == Kind.BYTES:
        lengths = [len(b) for b in sample if b is not None]
        stats.avg_byte_length = float(np.mean(lengths)) if lengths else 0.0
        stats.n_unique = len(set(sample))
        counts: dict = {}
        for item in sample:
            counts[item] = counts.get(item, 0) + 1
        stats.mode_fraction = max(counts.values()) / len(sample)
    elif kind in (Kind.LIST_INT, Kind.LIST_FLOAT):
        lengths = [len(row) for row in sample]
        stats.avg_list_length = float(np.mean(lengths)) if lengths else 0.0
        if kind == Kind.LIST_INT:
            stats.window_overlap = _window_overlap(sample)
    return stats


def _numeric_stats(stats: ColumnStats, arr: np.ndarray) -> None:
    finite = arr[np.isfinite(arr)] if arr.dtype.kind == "f" else arr
    if len(finite) == 0:
        return
    stats.min_value = float(finite.min())
    stats.max_value = float(finite.max())
    stats.non_negative = stats.min_value >= 0
    uniq, counts = np.unique(finite, return_counts=True)
    stats.n_unique = int(len(uniq))
    stats.mode_fraction = float(counts.max() / len(finite))
    if len(arr) > 1:
        diffs = np.diff(arr)
        stats.sorted_fraction = float((diffs >= 0).mean())
        runs = 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
        stats.avg_run_length = len(arr) / runs


def _window_overlap(rows, probe: int = 32) -> float:
    """Mean Jaccard-ish overlap of consecutive list rows (Fig 3 signal)."""
    overlaps = []
    prev = None
    for row in rows[:probe]:
        cur = np.asarray(row)
        if prev is not None and len(prev) and len(cur):
            inter = len(np.intersect1d(prev, cur))
            overlaps.append(inter / max(len(prev), len(cur)))
        prev = cur
    return float(np.mean(overlaps)) if overlaps else 0.0
