"""Nimble-style linear selection objective.

§3: "Nimble incorporates a user-configurable linear objective function
that independently weights read time, write time, and storage size that
enables users to tailor encoding strategies to their specific workload
requirements."

``score_candidate`` encodes+decodes the sample under a candidate scheme
and combines measured (write seconds, read seconds, bytes) — each
normalized per value — under the configured weights. Weight presets
mirror the workloads the paper cares about: training reads dominate for
ML ("mini-batch reads with infrequent filtering"), so the default
leans on read time and size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.encodings.base import Encoding, decode_blob, encode_blob


#: seconds-per-raw-MB scale that makes a 10 ms/MB decode cost comparable
#: to a 0.1 compression-ratio difference
_TIME_SCALE = 10.0


@dataclass(frozen=True)
class CostWeights:
    """Linear objective over (compression ratio, read s/MB, write s/MB).

    All three terms are normalized per *raw* byte so columns of scalars
    and columns of 1 KB list rows score on the same scale.
    """

    size: float = 1.0
    read: float = 1.0
    write: float = 0.1

    def combine(self, compression_ratio: float, read_s_per_mb: float,
                write_s_per_mb: float) -> float:
        return (
            self.size * compression_ratio
            + self.read * read_s_per_mb * _TIME_SCALE
            + self.write * write_s_per_mb * _TIME_SCALE
        )


#: presets named after the workloads in the paper
TRAINING_READS = CostWeights(size=1.0, read=2.0, write=0.05)
BALANCED = CostWeights(size=1.0, read=1.0, write=1.0)
COLD_STORAGE = CostWeights(size=3.0, read=0.2, write=0.2)


@dataclass
class CandidateScore:
    """Measured cost of one candidate scheme on the sample."""

    encoding: Encoding
    description: str
    encoded_bytes: int
    write_seconds: float
    read_seconds: float
    objective: float


def raw_size_bytes(values) -> int:
    """Approximate uncompressed footprint of a value container."""
    import numpy as np

    if isinstance(values, np.ndarray):
        return max(1, values.nbytes)
    total = 0
    for item in values:
        if item is None:
            total += 1
        elif isinstance(item, (bytes, bytearray)):
            total += len(item) + 4
        elif isinstance(item, np.ndarray):
            total += item.nbytes + 4
        elif isinstance(item, (list, tuple)):
            total += 8 * len(item) + 4
        else:
            total += 8
    return max(1, total)


def score_candidate(
    values, encoding: Encoding, weights: CostWeights, description: str = ""
) -> CandidateScore | None:
    """Encode + decode the sample; None when the scheme is inapplicable."""
    raw = raw_size_bytes(values)
    try:
        t0 = time.perf_counter()
        blob = encode_blob(values, encoding)
        t1 = time.perf_counter()
        decode_blob(blob)
        t2 = time.perf_counter()
    except Exception:
        return None
    write_s = t1 - t0
    read_s = t2 - t1
    mb = raw / 1e6
    objective = weights.combine(len(blob) / raw, read_s / mb, write_s / mb)
    return CandidateScore(
        encoding=encoding,
        description=description or encoding.name,
        encoded_bytes=len(blob),
        write_seconds=write_s,
        read_seconds=read_s,
        objective=objective,
    )
