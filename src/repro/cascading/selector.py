"""The cascading encoding selector (paper §2.6).

Combines the ingredients the paper names:

* **sampling-based distribution analysis** (:mod:`repro.cascading.stats`)
  prunes the catalog to heuristically-plausible candidates, like
  Procella/BtrBlocks;
* **measured selection** under a Nimble-style linear objective
  (:mod:`repro.cascading.objective`);
* **bounded recursion**: candidates at depth *d* may pick cascaded
  children chosen at depth *d-1* — "current implementations, such as
  BtrBlocks, pragmatically limit recursion to one or two levels".
  ``max_depth=0`` disables composition entirely (the static
  single-encoding baseline the depth-ablation benchmark compares).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascading.objective import (
    CandidateScore,
    CostWeights,
    TRAINING_READS,
    score_candidate,
)
from repro.cascading.stats import ColumnStats, collect_stats, take_sample
from repro.encodings import (
    ALP,
    BitShuffle,
    Chimp,
    Chunked,
    Constant,
    Delta,
    Dictionary,
    Encoding,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    FSST,
    Gorilla,
    Huffman,
    Kind,
    ListEncoding,
    MainlyConstant,
    Pseudodecimal,
    RLE,
    Roaring,
    SparseBool,
    SparseListDelta,
    Trivial,
    Varint,
    ZigZag,
)

DEFAULT_MAX_DEPTH = 2


@dataclass
class SelectionResult:
    """The winning scheme plus the scored alternatives."""

    encoding: Encoding
    description: str
    scores: list[CandidateScore]
    stats: ColumnStats

    @property
    def best(self) -> CandidateScore:
        return self.scores[0]


def _int_candidates(
    stats: ColumnStats, sample, depth: int
) -> list[tuple[Encoding, str]]:
    out: list[tuple[Encoding, str]] = [(Trivial(), "trivial")]
    if stats.n_unique <= 1:
        return [(Constant(), "constant")] + out
    small_domain = stats.n_unique <= max(64, stats.n_sampled // 8)
    out.append((FixedBitWidth(), "fixed_bit_width"))
    if stats.non_negative:
        out.append((Varint(), "varint"))
        out.append((FastBP128(), "fastbp128"))
        out.append((FastPFOR(), "fastpfor"))
    else:
        out.append((ZigZag(), "zigzag(varint)"))
    out.append((FrameOfReference(), "for"))
    if stats.sorted_fraction > 0.9:
        out.append((Delta(), "delta(zigzag(varint))"))
    if stats.avg_run_length >= 1.5 and depth >= 1:
        values_child, values_desc = (
            (Dictionary(), "dictionary")
            if small_domain
            else (ZigZag(), "zigzag")
        )
        out.append(
            (
                RLE(values_child=values_child, counts_child=Varint()),
                f"rle({values_desc}, varint)",
            )
        )
    if small_domain and depth >= 1:
        out.append((Dictionary(), "dictionary(fixed_bit_width)"))
        if stats.avg_run_length >= 1.5:
            out.append(
                (
                    Dictionary(codes_child=RLE()),
                    "dictionary(rle)",
                )
            )
    if stats.n_unique <= 256:
        out.append((Huffman(), "huffman"))
    if stats.mode_fraction > 0.8:
        out.append((MainlyConstant(), "mainly_constant"))
    if depth >= 1:
        out.append((BitShuffle(), "bitshuffle(chunked)"))
        out.append((Chunked(), "chunked(trivial)"))
        if stats.non_negative and depth >= 2:
            out.append(
                (Chunked(FastBP128()), "chunked(fastbp128)")
            )
    return out


def _float_candidates(
    stats: ColumnStats, sample, depth: int
) -> list[tuple[Encoding, str]]:
    out: list[tuple[Encoding, str]] = [(Trivial(), "trivial")]
    if stats.n_unique <= 1:
        return [(Constant(), "constant")] + out
    out.append((ALP(), "alp(for)"))
    if stats.decimal_fraction > 0.5:
        out.append((Pseudodecimal(), "pseudodecimal"))
    out.append((Gorilla(), "gorilla"))
    out.append((Chimp(), "chimp"))
    if stats.mode_fraction > 0.8:
        out.append((MainlyConstant(), "mainly_constant"))
    if depth >= 1:
        out.append((BitShuffle(), "bitshuffle(chunked)"))
        out.append((Chunked(), "chunked(trivial)"))
        if depth >= 2:
            out.append((Chunked(BitShuffle(Trivial())), "chunked(bitshuffle)"))
    return out


def _bytes_candidates(
    stats: ColumnStats, sample, depth: int
) -> list[tuple[Encoding, str]]:
    out: list[tuple[Encoding, str]] = [(Trivial(), "trivial")]
    if stats.n_unique <= 1:
        return [(Constant(), "constant")] + out
    if stats.n_unique <= max(64, stats.n_sampled // 4) and depth >= 1:
        out.append((Dictionary(), "dictionary(fixed_bit_width)"))
        if depth >= 2:
            out.append((Dictionary(codes_child=RLE()), "dictionary(rle)"))
    out.append((FSST(), "fsst"))
    if depth >= 1:
        out.append((Chunked(), "chunked(trivial)"))
        if depth >= 2:
            out.append((Chunked(FSST()), "chunked(fsst)"))
    return out


def _bool_candidates(
    stats: ColumnStats, sample, depth: int
) -> list[tuple[Encoding, str]]:
    out: list[tuple[Encoding, str]] = [
        (Trivial(), "trivial"),
        (SparseBool(), "sparse_bool"),
        (Roaring(), "roaring"),
    ]
    if stats.avg_run_length >= 4 and depth >= 1:
        out.append((RLE(), "rle(zigzag, varint)"))
    return out


def _list_candidates(
    stats: ColumnStats, sample, depth: int, weights: CostWeights
) -> list[tuple[Encoding, str]]:
    out: list[tuple[Encoding, str]] = [(ListEncoding(), "list(trivial)")]
    if stats.kind == Kind.LIST_INT:
        if depth >= 1 and len(sample):
            flat = np.concatenate(
                [np.asarray(r, dtype=np.int64) for r in sample if len(r)]
                or [np.zeros(0, dtype=np.int64)]
            )
            inner = choose_encoding(
                flat, weights=weights, max_depth=depth - 1
            )
            out.append(
                (
                    ListEncoding(values_child=inner.encoding),
                    f"list({inner.description})",
                )
            )
        if stats.window_overlap > 0.3:
            out.append((SparseListDelta(), "sparse_list_delta(chunked)"))
    elif depth >= 1:
        out.append((ListEncoding(values_child=Chunked()), "list(chunked)"))
    return out


def candidate_encodings(
    values, stats: ColumnStats, depth: int, weights: CostWeights
) -> list[tuple[Encoding, str]]:
    """Heuristic candidate set for the sampled column."""
    sample = take_sample(values)
    if stats.kind == Kind.INT:
        return _int_candidates(stats, sample, depth)
    if stats.kind == Kind.FLOAT:
        return _float_candidates(stats, sample, depth)
    if stats.kind == Kind.BYTES:
        return _bytes_candidates(stats, sample, depth)
    if stats.kind == Kind.BOOL:
        return _bool_candidates(stats, sample, depth)
    return _list_candidates(stats, sample, depth, weights)


def select_encoding(
    values,
    weights: CostWeights | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> SelectionResult:
    """Pick the best scheme for this column under the linear objective."""
    weights = weights or TRAINING_READS
    stats = collect_stats(values)
    sample = take_sample(values)
    scores: list[CandidateScore] = []
    for encoding, description in candidate_encodings(
        values, stats, max_depth, weights
    ):
        score = score_candidate(sample, encoding, weights, description)
        if score is not None:
            scores.append(score)
    if not scores:
        raise ValueError("no applicable encoding for column")
    scores.sort(key=lambda s: s.objective)
    return SelectionResult(
        encoding=scores[0].encoding,
        description=scores[0].description,
        scores=scores,
        stats=stats,
    )


def choose_encoding(
    values,
    weights: CostWeights | None = None,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> SelectionResult:
    """Alias of :func:`select_encoding` (kept for writer integration)."""
    return select_encoding(values, weights=weights, max_depth=max_depth)
