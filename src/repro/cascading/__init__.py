"""Cascading encoding selection (paper §2.6).

Sampling-based stats + heuristic candidate pruning + a Nimble-style
linear objective over measured (size, read time, write time), with
bounded recursion over sub-column encodings.

>>> import numpy as np
>>> from repro.cascading import choose_encoding
>>> result = choose_encoding(np.repeat(np.arange(10), 100))
>>> result.description            # doctest: +SKIP
'rle(dictionary, varint)'
"""

from repro.cascading.objective import (
    BALANCED,
    COLD_STORAGE,
    CandidateScore,
    CostWeights,
    TRAINING_READS,
    score_candidate,
)
from repro.cascading.selector import (
    DEFAULT_MAX_DEPTH,
    SelectionResult,
    candidate_encodings,
    choose_encoding,
    select_encoding,
)
from repro.cascading.stats import ColumnStats, collect_stats, take_sample

__all__ = [
    "CostWeights",
    "CandidateScore",
    "TRAINING_READS",
    "BALANCED",
    "COLD_STORAGE",
    "score_candidate",
    "SelectionResult",
    "DEFAULT_MAX_DEPTH",
    "candidate_encodings",
    "choose_encoding",
    "select_encoding",
    "ColumnStats",
    "collect_stats",
    "take_sample",
]
