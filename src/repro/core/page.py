"""On-device page framing.

A page is the unit of encoding, checksumming and in-place deletion:

====================  =================================================
header (16 bytes)     u32 alloc_len — payload area size, fixed at write
                      u32 payload_len — used bytes (may shrink after a
                      compacting deletion, never grows)
                      u32 n_values — values currently stored (may shrink
                      when a deletion drops rows instead of masking)
                      u32 flags — bit 0: COMPACTED
payload               self-describing encoding blob + padding
====================  =================================================

The "post-update page dimensions do not exceed their initial size"
criterion of §2.1 maps to ``payload_len <= alloc_len`` being an
invariant for the page's whole life.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

PAGE_HEADER_FMT = "<IIII"
PAGE_HEADER_SIZE = struct.calcsize(PAGE_HEADER_FMT)

FLAG_COMPACTED = 1


@dataclass
class PageHeader:
    alloc_len: int
    payload_len: int
    n_values: int
    flags: int = 0

    def pack(self) -> bytes:
        if self.payload_len > self.alloc_len:
            raise ValueError(
                f"page payload {self.payload_len} exceeds allocation "
                f"{self.alloc_len}"
            )
        return struct.pack(
            PAGE_HEADER_FMT,
            self.alloc_len,
            self.payload_len,
            self.n_values,
            self.flags,
        )

    @staticmethod
    def unpack(data: bytes, offset: int = 0) -> "PageHeader":
        alloc_len, payload_len, n_values, flags = struct.unpack_from(
            PAGE_HEADER_FMT, data, offset
        )
        return PageHeader(alloc_len, payload_len, n_values, flags)

    @property
    def compacted(self) -> bool:
        return bool(self.flags & FLAG_COMPACTED)


def frame_page(payload: bytes, n_values: int, padding: int = 0) -> bytes:
    """Header + payload + optional slack bytes."""
    header = PageHeader(
        alloc_len=len(payload) + padding,
        payload_len=len(payload),
        n_values=n_values,
    )
    return header.pack() + payload + b"\x00" * padding
