"""Process-wide tiered chunk cache with single-flight dedup.

On local devices the per-reader :class:`~repro.core.reader.ChunkCache`
was enough: misses cost one cheap ``pread``. On an object store every
miss is a paid round trip, so the cache becomes load-bearing
infrastructure and grows three properties the per-reader LRU lacked:

**Byte budgets and tiers.**  A memory tier holds raw chunk bytes under
an LRU byte budget; evictions optionally *spill* to a bounded
local-disk tier (cheap capacity between RAM and the remote store).
Disk entries carry a content checksum and the serialized key, so a
truncated or corrupted spill file — crash, concurrent trim, cosmic ray
— is detected on read, deleted, and reported as a miss: the caller
refetches from the backend and never sees bad bytes.

**Correct sharing.**  Entries are keyed by
``(storage identity, file fingerprint, column, row group)``.  The
identity pins the backing device (path for files, object identity for
in-memory devices); the fingerprint is a hash of the file's footer
bytes, which covers the Merkle root, stats and deletion state — any
in-place scrub or rewrite produces a new fingerprint, so one shared
cache is safe across readers, snapshots and epochs without explicit
invalidation.  Writers still call :func:`notify_mutation` to promptly
drop orphaned entries for a mutated device.

**Single-flight.**  Concurrent requests for one in-flight chunk
coalesce onto a shared flight: exactly one caller fetches from the
backend while the rest block on its event (counted as
``cache_singleflight_waits_total``).  If the leader fails, a waiter
retries the claim and becomes the new leader — a thundering herd on a
hot chunk resolves to exactly one upstream fetch, never zero.

The legacy per-reader ``ChunkCache`` in :mod:`repro.core.reader` is now
a shim over this class (memory tier only, entry cap preserved for
compatibility, plus the byte budget it always should have had).
"""

from __future__ import annotations

import os
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics
from repro.util.hashing import hash_bytes

__all__ = [
    "TieredChunkCache",
    "TierStats",
    "storage_identity",
    "process_cache",
    "configure_process_cache",
    "notify_mutation",
    "add_mutation_listener",
    "remove_mutation_listener",
]

#: Spill-file layout: magic, payload checksum, key length, key, payload.
_SPILL_MAGIC = b"SPL1"
_SPILL_HEADER = struct.Struct("<4sQI")

_DEFAULT_MEMORY_BYTES = 64 << 20


@dataclass
class TierStats:
    """Counters for one :class:`TieredChunkCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    spills: int = 0
    spill_bytes: int = 0
    singleflight_waits: int = 0
    checksum_failures: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class _Flight:
    """One in-flight backend fetch that waiters can block on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: bytes | None = None
        self.error: BaseException | None = None


class TieredChunkCache:
    """Byte-budgeted memory tier spilling to a bounded disk tier.

    Keys are arbitrary hashable tuples; readers use
    ``(storage identity, file fingerprint, col_idx, row_group)``.
    ``memory_bytes`` bounds the memory tier; ``disk_bytes > 0`` (with a
    ``disk_dir``) enables the spill tier.  ``max_entries`` additionally
    caps the memory tier by entry count — the legacy ``ChunkCache``
    contract, kept so the shim evicts exactly as before.

    Thread-safe.  ``mirror=False`` keeps a cache's counters out of the
    process-wide ``cache_tier_*`` metric families (used by the
    per-reader shim, which publishes the legacy ``scan_cache_*``
    families instead).
    """

    def __init__(
        self,
        memory_bytes: int = _DEFAULT_MEMORY_BYTES,
        *,
        disk_bytes: int = 0,
        disk_dir: str | None = None,
        max_entries: int | None = None,
        name: str = "chunks",
        mirror: bool = True,
    ) -> None:
        if disk_bytes > 0 and disk_dir is None:
            raise ValueError("disk_bytes > 0 requires disk_dir")
        self.name = name
        self.memory_bytes = memory_bytes
        self.disk_bytes = disk_bytes
        self.disk_dir = disk_dir
        self.max_entries = max_entries
        self.stats = TierStats()
        self._mirror = mirror
        self._mem: OrderedDict[tuple, bytes] = OrderedDict()
        self._mem_bytes = 0
        #: key -> spill-file payload size (LRU order, oldest first)
        self._disk: OrderedDict[tuple, int] = OrderedDict()
        self._disk_bytes = 0
        self._flights: dict[tuple, _Flight] = {}
        self._lock = threading.Lock()
        if disk_bytes > 0:
            os.makedirs(disk_dir, exist_ok=True)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    @property
    def memory_used(self) -> int:
        return self._mem_bytes

    @property
    def disk_used(self) -> int:
        return self._disk_bytes

    def tier_sizes(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                "memory": {
                    "entries": len(self._mem),
                    "bytes": self._mem_bytes,
                    "budget_bytes": self.memory_bytes,
                },
                "disk": {
                    "entries": len(self._disk),
                    "bytes": self._disk_bytes,
                    "budget_bytes": self.disk_bytes,
                },
            }

    def _publish_gauges(self) -> None:
        # called under self._lock
        if not (self._mirror and obs_metrics.enabled()):
            return
        from repro.obs import families as _fam

        _fam.CACHE_TIER_BYTES.labels(cache=self.name, tier="memory").set(
            self._mem_bytes
        )
        if self.disk_bytes > 0:
            _fam.CACHE_TIER_BYTES.labels(cache=self.name, tier="disk").set(
                self._disk_bytes
            )

    # -- lookup ---------------------------------------------------------
    def get(self, key: tuple) -> bytes | None:
        """Memory tier, then disk tier, else ``None`` (a miss)."""
        with self._lock:
            raw = self._lookup_locked(key)
            if raw is None:
                self.stats.misses += 1
                self._count("miss")
            return raw

    def _lookup_locked(self, key: tuple) -> bytes | None:
        raw = self._mem.get(key)
        if raw is not None:
            self._mem.move_to_end(key)
            self.stats.memory_hits += 1
            self._count("hit", tier="memory")
            return raw
        if key in self._disk:
            raw = self._disk_read_locked(key)
            if raw is not None:
                # promote back into memory (it is hot again)
                self.stats.disk_hits += 1
                self._count("hit", tier="disk")
                self._put_memory_locked(key, raw)
                return raw
        return None

    # -- insert ---------------------------------------------------------
    def put(self, key: tuple, raw: bytes) -> None:
        with self._lock:
            self._put_memory_locked(key, raw)

    def _put_memory_locked(self, key: tuple, raw: bytes) -> None:
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= len(old)
        self._mem[key] = raw
        self._mem_bytes += len(raw)
        while self._mem and (
            self._mem_bytes > self.memory_bytes
            or (
                self.max_entries is not None
                and len(self._mem) > self.max_entries
            )
        ):
            victim_key, victim = self._mem.popitem(last=False)
            self._mem_bytes -= len(victim)
            self.stats.memory_evictions += 1
            self._count("eviction", tier="memory")
            if self.disk_bytes > 0 and len(victim) <= self.disk_bytes:
                self._spill_locked(victim_key, victim)
        self._publish_gauges()

    # -- disk tier ------------------------------------------------------
    def _spill_path(self, key: tuple) -> str:
        assert self.disk_dir is not None
        return os.path.join(
            self.disk_dir, f"{hash_bytes(repr(key).encode()):016x}.chunk"
        )

    def _spill_locked(self, key: tuple, raw: bytes) -> None:
        key_bytes = repr(key).encode()
        header = _SPILL_HEADER.pack(
            _SPILL_MAGIC, hash_bytes(raw), len(key_bytes)
        )
        try:
            with open(self._spill_path(key), "wb") as f:
                f.write(header + key_bytes + raw)
        except OSError:
            return  # disk tier is best-effort; a failed spill is a miss
        old = self._disk.pop(key, None)
        if old is not None:
            self._disk_bytes -= old
        self._disk[key] = len(raw)
        self._disk_bytes += len(raw)
        self.stats.spills += 1
        self.stats.spill_bytes += len(raw)
        self._count("spill", nbytes=len(raw))
        while self._disk and self._disk_bytes > self.disk_bytes:
            victim_key, nbytes = self._disk.popitem(last=False)
            self._disk_bytes -= nbytes
            self.stats.disk_evictions += 1
            self._count("eviction", tier="disk")
            self._unlink_quiet(victim_key)

    def _disk_read_locked(self, key: tuple) -> bytes | None:
        """Read + verify a spill entry; corrupt/truncated → drop, miss."""
        expected = self._disk.get(key)
        key_bytes = repr(key).encode()
        try:
            with open(self._spill_path(key), "rb") as f:
                blob = f.read()
        except OSError:
            blob = b""
        ok = len(blob) >= _SPILL_HEADER.size
        if ok:
            magic, checksum, key_len = _SPILL_HEADER.unpack_from(blob)
            body = blob[_SPILL_HEADER.size :]
            ok = (
                magic == _SPILL_MAGIC
                and key_len == len(key_bytes)
                and body[:key_len] == key_bytes
            )
            if ok:
                raw = body[key_len:]
                ok = len(raw) == expected and hash_bytes(raw) == checksum
        if not ok:
            self._disk.pop(key, None)
            if expected is not None:
                self._disk_bytes -= expected
            self._unlink_quiet(key)
            self.stats.checksum_failures += 1
            self._count("checksum_failure")
            return None
        self._disk.move_to_end(key)
        return raw

    def _unlink_quiet(self, key: tuple) -> None:
        try:
            os.unlink(self._spill_path(key))
        except OSError:
            pass

    # -- single-flight ---------------------------------------------------
    def claim(self, key: tuple) -> tuple[str, object]:
        """Atomically resolve a key to one of three outcomes.

        ``("hit", raw)``    — cached (either tier); no fetch needed.
        ``("mine", None)``  — the caller is now the flight leader and
                              MUST later :meth:`fulfill` or
                              :meth:`abandon` the key.
        ``("wait", flight)``— another thread is fetching; block on
                              ``flight.event`` and re-claim if its
                              ``error`` is set.
        """
        with self._lock:
            raw = self._lookup_locked(key)
            if raw is not None:
                return ("hit", raw)
            flight = self._flights.get(key)
            if flight is not None:
                self.stats.singleflight_waits += 1
                self._count("singleflight_wait")
                return ("wait", flight)
            self.stats.misses += 1
            self._count("miss")
            self._flights[key] = _Flight()
            return ("mine", None)

    def fulfill(self, key: tuple, raw: bytes) -> None:
        """Leader path: publish fetched bytes and wake all waiters."""
        with self._lock:
            self._put_memory_locked(key, raw)
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.value = raw
            flight.event.set()

    def abandon(self, key: tuple, error: BaseException | None = None) -> None:
        """Leader path on failure: wake waiters so one can retry."""
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.error = error or RuntimeError("fetch abandoned")
            flight.event.set()

    def get_or_fetch(self, key: tuple, fetch) -> bytes:
        """Single-flight convenience wrapper: at most one live fetch."""
        while True:
            kind, val = self.claim(key)
            if kind == "hit":
                return val  # type: ignore[return-value]
            if kind == "mine":
                try:
                    raw = fetch()
                except BaseException as exc:
                    self.abandon(key, exc)
                    raise
                self.fulfill(key, raw)
                return raw
            val.event.wait()  # type: ignore[union-attr]
            if val.error is None:  # type: ignore[union-attr]
                return val.value  # type: ignore[union-attr]
            # leader failed: loop, re-claim, possibly become the leader

    # -- invalidation ----------------------------------------------------
    def invalidate_prefix(self, prefix: tuple) -> int:
        """Drop every entry whose key starts with ``prefix``.

        Fingerprinted keys make stale entries unreachable anyway; this
        reclaims their budget promptly after a known mutation.
        """
        n = len(prefix)
        dropped = 0
        with self._lock:
            for key in [k for k in self._mem if k[:n] == prefix]:
                self._mem_bytes -= len(self._mem.pop(key))
                dropped += 1
            for key in [k for k in self._disk if k[:n] == prefix]:
                self._disk_bytes -= self._disk.pop(key)
                self._unlink_quiet(key)
                dropped += 1
            self._publish_gauges()
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            self._mem_bytes = 0
            for key in list(self._disk):
                self._unlink_quiet(key)
            self._disk.clear()
            self._disk_bytes = 0
            self._publish_gauges()

    # -- metrics ---------------------------------------------------------
    def _count(
        self, what: str, tier: str = "", nbytes: int = 0
    ) -> None:
        # called under self._lock
        if not (self._mirror and obs_metrics.enabled()):
            return
        from repro.obs import families as _fam

        if what == "hit":
            _fam.CACHE_TIER_HITS.labels(tier=tier).inc()
        elif what == "miss":
            _fam.CACHE_TIER_MISSES.inc()
        elif what == "eviction":
            _fam.CACHE_TIER_EVICTIONS.labels(tier=tier).inc()
        elif what == "spill":
            _fam.CACHE_SPILLS.inc()
            _fam.CACHE_SPILL_BYTES.inc(nbytes)
        elif what == "singleflight_wait":
            _fam.CACHE_SINGLEFLIGHT_WAITS.inc()
        elif what == "checksum_failure":
            _fam.CACHE_CHECKSUM_FAILURES.inc()


# ---------------------------------------------------------------------------
# cache keys: storage identity + file fingerprint
# ---------------------------------------------------------------------------

def storage_identity(storage) -> str:
    """A stable identity for the device underneath any wrapper stack.

    File-backed devices identify by absolute path (every fresh
    ``FileStorage`` over one file shares entries); in-memory devices by
    object identity (the catalog's memory store hands out the *same*
    ``SimulatedStorage`` per file id, so identity is stable exactly as
    long as the bytes are reachable).
    """
    base = storage
    while hasattr(base, "inner"):
        base = base.inner
    path = getattr(base, "path", None)
    if path is not None:
        return f"file:{os.path.abspath(path)}"
    return f"mem:{id(base):x}"


# ---------------------------------------------------------------------------
# the process-wide singleton (opt-in: nothing is created until asked for)
# ---------------------------------------------------------------------------

_process_cache: TieredChunkCache | None = None
_process_lock = threading.Lock()


def process_cache() -> TieredChunkCache:
    """The lazily-created process-wide shared cache."""
    global _process_cache
    with _process_lock:
        if _process_cache is None:
            _process_cache = TieredChunkCache(name="process")
        return _process_cache


def configure_process_cache(
    memory_bytes: int = _DEFAULT_MEMORY_BYTES,
    *,
    disk_bytes: int = 0,
    disk_dir: str | None = None,
) -> TieredChunkCache:
    """(Re)build the process-wide cache with explicit budgets."""
    global _process_cache
    with _process_lock:
        if _process_cache is not None:
            _process_cache.clear()
        _process_cache = TieredChunkCache(
            memory_bytes,
            disk_bytes=disk_bytes,
            disk_dir=disk_dir,
            name="process",
        )
        return _process_cache


#: External caches (e.g. the serving layer's reader pool and result
#: caches) that want to hear about in-place mutations alongside the
#: process chunk cache.  Listeners receive the mutated storage object.
_mutation_listeners: list = []


def add_mutation_listener(fn) -> None:
    """Register ``fn(storage)`` to run on every :func:`notify_mutation`.

    Listeners must be fast and must not raise; they run inline on the
    mutating thread (writer finish, deletion scrub).
    """
    with _process_lock:
        if fn not in _mutation_listeners:
            _mutation_listeners.append(fn)


def remove_mutation_listener(fn) -> None:
    with _process_lock:
        try:
            _mutation_listeners.remove(fn)
        except ValueError:
            pass


def notify_mutation(storage) -> None:
    """Drop process-cache entries for a device that just changed.

    Called by the writer and the deletion path.  Cheap no-op unless a
    process cache exists; fingerprinted keys already guarantee stale
    entries can never be *served*, this merely frees their budget.
    Registered mutation listeners (see :func:`add_mutation_listener`)
    are invoked afterwards so higher-level caches — pooled readers,
    plan/result caches in the serving layer — can drop exactly the
    entries the mutated device backs.
    """
    with _process_lock:
        cache = _process_cache
        listeners = list(_mutation_listeners)
    if cache is not None:
        cache.invalidate_prefix((storage_identity(storage),))
    for fn in listeners:
        fn(storage)
