"""Merkle-tree checksum maintenance (paper §2.1, Fig 2).

"Bullion assigns distinctive hash values to each page within the
columnar file ... These granular hash values form the foundation for
the computation of higher-level checksums at the row group tier.
Subsequently, these checksums coalesce to formulate the overall file
checksum, akin to a Merkle tree."

Tree shape (matching Fig 2): page hashes are the leaves, grouped by row
group; each row group node hashes its pages' hashes; the root hashes
the row-group nodes. An in-place page update therefore recomputes one
leaf, one row-group node and the root — reading only that row group's
leaf hashes plus the row-group hash array, instead of rehashing the
whole file ("only file segments affected by the change are read").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.hashing import combine_hashes, hash_bytes


@dataclass
class MerkleTree:
    """Page-leaf / row-group-node / root checksum tree."""

    page_hashes: list[int]
    group_hashes: list[int]
    root: int
    pages_per_group: list[int]  # page count per row group, in page order

    @staticmethod
    def build(page_payloads: list[bytes], pages_per_group: list[int]) -> "MerkleTree":
        """Hash every page and fold upward (full build at write time)."""
        if sum(pages_per_group) != len(page_payloads):
            raise ValueError(
                f"pages_per_group sums to {sum(pages_per_group)}, "
                f"have {len(page_payloads)} pages"
            )
        page_hashes = [hash_bytes(p) for p in page_payloads]
        return MerkleTree.from_leaves(page_hashes, pages_per_group)

    @staticmethod
    def from_leaves(page_hashes: list[int], pages_per_group: list[int]) -> "MerkleTree":
        group_hashes = []
        pos = 0
        for count in pages_per_group:
            group_hashes.append(combine_hashes(page_hashes[pos : pos + count]))
            pos += count
        root = combine_hashes(group_hashes)
        return MerkleTree(page_hashes, group_hashes, root, list(pages_per_group))

    def group_of_page(self, page_id: int) -> int:
        pos = 0
        for g, count in enumerate(self.pages_per_group):
            if page_id < pos + count:
                return g
            pos += count
        raise IndexError(f"page {page_id} out of range")

    def group_page_range(self, group: int) -> tuple[int, int]:
        start = sum(self.pages_per_group[:group])
        return start, start + self.pages_per_group[group]

    def update_page(self, page_id: int, new_payload: bytes) -> "MerkleUpdate":
        """Incremental update after an in-place page rewrite.

        Returns the bookkeeping of which nodes changed and how many
        hash-bytes were read — the quantity Fig 2's red arrows depict
        and the Fig 2 benchmark measures against a full rehash.
        """
        group = self.group_of_page(page_id)
        start, end = self.group_page_range(group)
        self.page_hashes[page_id] = hash_bytes(new_payload)
        self.group_hashes[group] = combine_hashes(self.page_hashes[start:end])
        self.root = combine_hashes(self.group_hashes)
        hashes_read = (end - start) + len(self.group_hashes)
        return MerkleUpdate(
            page_id=page_id,
            group=group,
            nodes_recomputed=3,  # leaf + group node + root
            hash_entries_read=hashes_read,
            payload_bytes_hashed=len(new_payload),
        )

    def verify_page(self, page_id: int, payload: bytes) -> bool:
        return hash_bytes(payload) == self.page_hashes[page_id]

    def verify_structure(self) -> bool:
        """Recompute the upper levels from the leaves and compare."""
        rebuilt = MerkleTree.from_leaves(self.page_hashes, self.pages_per_group)
        return (
            rebuilt.group_hashes == self.group_hashes
            and rebuilt.root == self.root
        )


@dataclass(frozen=True)
class MerkleUpdate:
    """Cost record of one incremental checksum maintenance step."""

    page_id: int
    group: int
    nodes_recomputed: int
    hash_entries_read: int
    payload_bytes_hashed: int


def full_file_checksum(page_payloads: list[bytes]) -> tuple[int, int]:
    """The monolithic alternative: rehash every payload byte.

    Returns (checksum, bytes_hashed) — the baseline "traditional,
    monolithic approach (typically used by the open columnar formats
    used today) of recalculating checksums for the entire file".
    """
    total = 0
    acc = []
    for payload in page_payloads:
        acc.append(hash_bytes(payload))
        total += len(payload)
    return combine_hashes(acc), total
