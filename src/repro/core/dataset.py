"""Batch-oriented training reads over Bullion files and shard sets.

The access pattern §2.3 describes — "reading all training data within a
specific time period in a batch-oriented manner, without requiring
complex indexing or filtering" — as a data-loader:

* a feature projection (the ~10% of columns a job trains on),
* row-group-granular iteration so memory stays bounded on wide files,
* optional row-group shuffling per epoch (the standard approximation of
  global shuffling for columnar training data),
* optional §2.4 widening of quantized features,
* deleted rows filtered via the deletion vector, like every read path.

Datasets larger than one file live in a :class:`ShardedDataset` — N
Bullion shard files behind one scan/loader surface. The loader walks
shards in sequence (each shard's chunks fetched in parallel by the
scan layer) and can prefetch decoded batches on a background thread so
the trainer never waits on I/O.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.reader import BullionReader
from repro.core.table import Table, concat_tables
from repro.core.writer import BullionWriter, WriterOptions
from repro.core.schema import Schema
from repro.iosim import SimulatedStorage, Storage


@dataclass
class LoaderOptions:
    batch_size: int = 256
    shuffle_row_groups: bool = False
    widen_quantized: bool = False
    drop_last: bool = False
    seed: int = 0
    #: batches decoded ahead by a background thread (0 = synchronous)
    prefetch_batches: int = 0
    #: concurrent chunk fetches within each shard's scan
    scan_workers: int = 4
    #: optional row filter (:class:`repro.expr.Expr`) applied with the
    #: full pushdown: zone-map group pruning + exact decode-time
    #: filtering, so a curriculum/quality filter skips I/O, not just
    #: rows (batches still come out exactly ``batch_size`` long)
    where: "object | None" = None


class ShardedDataset:
    """A logical dataset stored as N Bullion shard files.

    One table too big for a single file is written as consecutive row
    slices, one Bullion file per shard. Reads present the shard set as
    a single stream: :meth:`scan` chains per-shard scans (each with
    parallel chunk fetch), and :class:`TrainingDataLoader` accepts the
    dataset wherever a single storage is accepted.
    """

    def __init__(self, shards: list[Storage]) -> None:
        if not shards:
            raise ValueError("a sharded dataset needs at least one shard")
        self.shards = list(shards)
        self._readers: list[BullionReader] | None = None

    @classmethod
    def write(
        cls,
        table: Table,
        num_shards: int | None = None,
        rows_per_shard: int | None = None,
        storage_factory=None,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> "ShardedDataset":
        """Split ``table`` row-wise into shard files.

        Exactly one of ``num_shards`` / ``rows_per_shard`` selects the
        split; ``storage_factory(i)`` supplies each shard's backend
        (default: in-memory ``SimulatedStorage``). Each shard goes
        through the incremental writer, so peak memory per shard stays
        at one row group of encoded pages.
        """
        if (num_shards is None) == (rows_per_shard is None):
            raise ValueError("specify exactly one of num_shards/rows_per_shard")
        n = table.num_rows
        if num_shards is not None:
            if num_shards <= 0:
                raise ValueError("num_shards must be positive")
            rows_per_shard = max(1, -(-n // num_shards))
        elif rows_per_shard is not None and rows_per_shard <= 0:
            raise ValueError("rows_per_shard must be positive")
        if storage_factory is None:
            storage_factory = lambda i: SimulatedStorage(f"shard{i}")
        starts = list(range(0, max(n, 1), rows_per_shard))
        if num_shards is not None:
            # a fixed shard count is honoured even when rounding would
            # produce fewer non-empty slices
            starts = starts[:num_shards]
            while len(starts) < num_shards:
                starts.append(n)
        shards: list[Storage] = []
        for i, start in enumerate(starts):
            storage = storage_factory(i)
            writer = BullionWriter(storage, schema=schema, options=options)
            writer.open()
            writer.write_batch(table.slice(start, min(start + rows_per_shard, n)))
            writer.finish()
            shards.append(storage)
        return cls(shards)

    # -- metadata -------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def readers(self) -> list[BullionReader]:
        if self._readers is None:
            self._readers = [BullionReader(s) for s in self.shards]
        return self._readers

    @property
    def num_rows(self) -> int:
        return sum(r.num_rows for r in self.readers())

    def column_names(self) -> list[str]:
        return self.readers()[0].column_names()

    # -- data -----------------------------------------------------------
    def scan(self, columns: list[str], **scan_kwargs):
        """Chained lazy scan across all shards (one batch stream).

        ``batch_size`` is honoured across shard boundaries: batches are
        exactly that size with only the final one short, the same
        contract a single-file scan gives.
        """
        batch_size = scan_kwargs.pop("batch_size", None)
        chunks = (
            batch
            for reader in self.readers()
            for batch in reader.scan(columns, **scan_kwargs)
        )
        if batch_size is None:
            yield from chunks
            return
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        yield from rebatch(chunks, batch_size)


class TrainingDataLoader:
    """Iterate mini-batches of a feature projection over a Bullion
    file, a list of shard storages, a :class:`ShardedDataset`, or any
    snapshot-like source exposing ``readers()`` (e.g. a pinned catalog
    snapshot, so epochs stay reproducible while ingest continues)."""

    def __init__(
        self,
        source: "Storage | ShardedDataset | list[Storage] | object",
        columns: list[str],
        options: LoaderOptions | None = None,
    ) -> None:
        if isinstance(source, (list, tuple)):
            self._readers = [BullionReader(s) for s in source]
        elif hasattr(source, "readers"):
            # ShardedDataset or a pinned catalog snapshot: a fixed,
            # immutable reader set
            self._readers = list(source.readers())
        else:
            self._readers = [BullionReader(source)]
        for reader in self._readers:
            missing = [
                c for c in columns if not _column_exists(reader, c)
            ]
            if missing:
                raise KeyError(f"columns not in file: {missing}")
        self._columns = list(columns)
        self._options = options or LoaderOptions()
        self._epoch = 0

    @property
    def num_rows(self) -> int:
        return sum(r.num_rows for r in self._readers)

    @property
    def num_shards(self) -> int:
        return len(self._readers)

    def __iter__(self):
        opts = self._options
        rng = (
            np.random.default_rng(opts.seed + self._epoch)
            if opts.shuffle_row_groups
            else None
        )
        self._epoch += 1
        batches = self._batches(rng)
        if opts.prefetch_batches > 0:
            batches = _prefetch(batches, opts.prefetch_batches)
        return batches

    def _batches(self, rng):
        """Group-tables across shards, re-sliced into exact batches."""
        opts = self._options

        def chunks():
            shard_order = list(range(len(self._readers)))
            if rng is not None and len(shard_order) > 1:
                rng.shuffle(shard_order)
            for s in shard_order:
                reader = self._readers[s]
                groups = list(range(reader.footer.num_row_groups))
                if rng is not None:
                    rng.shuffle(groups)
                yield from reader.scan(
                    self._columns,
                    row_groups=groups,
                    where=opts.where,
                    widen_quantized=opts.widen_quantized,
                    max_workers=opts.scan_workers,
                )

        yield from rebatch(
            chunks(), opts.batch_size, drop_last=opts.drop_last
        )


def rebatch(chunks, batch_size: int, drop_last: bool = False):
    """Re-slice a stream of tables into exact ``batch_size`` batches.

    The carry flows across whatever boundaries the input stream has
    (row groups, shards); only the final batch may be short, and
    ``drop_last`` discards it.
    """
    carry: Table | None = None
    for chunk in chunks:
        if carry is not None:
            chunk = concat_tables([carry, chunk])
            carry = None
        pos = 0
        while pos + batch_size <= chunk.num_rows:
            yield chunk.slice(pos, pos + batch_size)
            pos += batch_size
        if pos < chunk.num_rows:
            carry = chunk.slice(pos, chunk.num_rows)
    if carry is not None and carry.num_rows and not drop_last:
        yield carry


_SENTINEL = object()


def _prefetch(gen, depth: int):
    """Run ``gen`` on a daemon thread, buffering up to ``depth`` items.

    Exceptions raised by the producer re-raise at the consumer's next
    pull, so error behaviour matches synchronous iteration. When the
    consumer stops early (break, exception), the producer is signalled
    to stop instead of blocking forever on the bounded queue.
    """
    q: queue.Queue = queue.Queue(maxsize=depth)
    stop = threading.Event()

    def _put(item) -> bool:
        while not stop.is_set():
            try:
                q.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def produce() -> None:
        try:
            for item in gen:
                if not _put(item):
                    return
            _put(_SENTINEL)
        except BaseException as exc:  # relayed, not swallowed
            _put(exc)

    thread = threading.Thread(
        target=produce, name="loader-prefetch", daemon=True
    )
    thread.start()
    try:
        while True:
            item = q.get()
            if item is _SENTINEL:
                break
            if isinstance(item, BaseException):
                raise item
            yield item
    finally:
        stop.set()


def _column_exists(reader: BullionReader, name: str) -> bool:
    try:
        reader.footer.find_column(name)
        return True
    except KeyError:
        return False
