"""Batch-oriented training reads over Bullion files.

The access pattern §2.3 describes — "reading all training data within a
specific time period in a batch-oriented manner, without requiring
complex indexing or filtering" — as a data-loader:

* a feature projection (the ~10% of columns a job trains on),
* row-group-granular iteration so memory stays bounded on wide files,
* optional row-group shuffling per epoch (the standard approximation of
  global shuffling for columnar training data),
* optional §2.4 widening of quantized features,
* deleted rows filtered via the deletion vector, like every read path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reader import BullionReader
from repro.core.table import Table
from repro.iosim import SimulatedStorage


@dataclass
class LoaderOptions:
    batch_size: int = 256
    shuffle_row_groups: bool = False
    widen_quantized: bool = False
    drop_last: bool = False
    seed: int = 0


class TrainingDataLoader:
    """Iterate mini-batches of a feature projection over a Bullion file."""

    def __init__(
        self,
        storage: SimulatedStorage,
        columns: list[str],
        options: LoaderOptions | None = None,
    ) -> None:
        self._reader = BullionReader(storage)
        missing = [
            c for c in columns
            if not _column_exists(self._reader, c)
        ]
        if missing:
            raise KeyError(f"columns not in file: {missing}")
        self._columns = list(columns)
        self._options = options or LoaderOptions()
        self._epoch = 0

    @property
    def num_rows(self) -> int:
        return self._reader.num_rows

    def __iter__(self):
        opts = self._options
        groups = list(range(self._reader.footer.num_row_groups))
        if opts.shuffle_row_groups:
            rng = np.random.default_rng(opts.seed + self._epoch)
            rng.shuffle(groups)
        self._epoch += 1
        carry: Table | None = None
        for g in groups:
            chunk = self._reader.project(
                self._columns,
                row_groups=[g],
                widen_quantized=opts.widen_quantized,
            )
            if carry is not None:
                chunk = _concat_tables([carry, chunk])
                carry = None
            pos = 0
            while pos + opts.batch_size <= chunk.num_rows:
                yield chunk.slice(pos, pos + opts.batch_size)
                pos += opts.batch_size
            if pos < chunk.num_rows:
                carry = chunk.slice(pos, chunk.num_rows)
        if carry is not None and carry.num_rows and not opts.drop_last:
            yield carry


def _column_exists(reader: BullionReader, name: str) -> bool:
    try:
        reader.footer.find_column(name)
        return True
    except KeyError:
        return False


def _concat_tables(tables: list[Table]) -> Table:
    out: dict[str, object] = {}
    for name in tables[0].columns:
        parts = [t.columns[name] for t in tables]
        if isinstance(parts[0], np.ndarray):
            out[name] = np.concatenate(parts)
        else:
            merged: list = []
            for p in parts:
                merged.extend(p)
            out[name] = merged
    return Table(out)
