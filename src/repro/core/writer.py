"""BullionWriter: serialize tables into the Bullion file layout.

File layout::

    magic "BULN"
    row group 0: column 0 pages, column 1 pages, ...   (column-contiguous
    row group 1: ...                                    within each group)
    footer (see repro.core.footer)
    u32 footer_len | magic "BULN"

Column-contiguous layout inside a row group means a projection reads
each requested column's chunk with one coalesced ``pread`` (the paper's
§2.3 access path, and the same rationale as Meta Alpha's "coalesced
reads").

The writer is *incremental*: ``open()`` stamps the magic,
``write_batch(table)`` buffers rows and flushes one fully-encoded row
group at a time, and ``finish()`` assembles the footer from the
:class:`~repro.core.footer.FooterBuilder`'s accumulated metadata. At
no point does more than one row group's raw rows — and at most one
encoded page payload — live in writer memory; :class:`WriterStats`
instruments exactly that. ``write()``/``write_table()`` are thin
one-shot wrappers and produce byte-identical files to any sequence of
``write_batch`` calls carrying the same rows.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.core.chunk_cache import notify_mutation
from repro.core.footer import (
    MAGIC,
    ChunkMeta,
    ChunkStats,
    FooterBuilder,
    FooterView,
    PageMeta,
)
from repro.core.page import frame_page
from repro.core.schema import (
    Field,
    PhysicalColumn,
    PhysicalType,
    Primitive,
    STORAGE_DTYPES,
    Schema,
)
from repro.core.table import (
    Table,
    physical_schema_for_table,
    validate_against_schema,
)
from repro.encodings import (
    Encoding,
    ListEncoding,
    SparseBool,
    Trivial,
    encode_blob,
)
from repro.encodings.bitpack import FixedBitWidth
from repro.iosim import Storage
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import (
    WRITER_ENCODE_SECONDS,
    WRITER_FLUSH_SECONDS,
    WRITER_MIRROR,
)
from repro.util.hashing import hash_bytes

#: compliance levels of §2.1
LEVEL_PLAIN = 0  # standard format, no upgraded deletion support
LEVEL_DELETION_VECTOR = 1  # query-time filtering only
LEVEL_IN_PLACE = 2  # deletion vectors + in-place scrubbing


@dataclass
class WriterOptions:
    """Knobs for file layout and encoding selection."""

    rows_per_page: int = 4096
    rows_per_group: int = 65536
    compliance_level: int = LEVEL_IN_PLACE
    #: per-column encoding overrides (physical column name -> Encoding)
    encodings: dict[str, Encoding] = dc_field(default_factory=dict)
    #: fallback policy: "auto" (type-driven defaults), "trivial", or
    #: "cascade" (run the §2.6 selector per column chunk)
    encoding_policy: str = "auto"
    #: slack appended to each page so in-place updates have headroom
    page_padding: int = 0
    #: record per-(column, row-group) min/max for predicate pruning
    collect_statistics: bool = True
    #: §2.4 storage quantization applied at write time: float columns
    #: are narrowed per the policy and their physical type recorded in
    #: the footer, so readers can widen transparently
    quantization: "object | None" = None  # QuantizationPolicy

    def __post_init__(self) -> None:
        if self.rows_per_page <= 0 or self.rows_per_group <= 0:
            raise ValueError("page/group sizes must be positive")
        if self.rows_per_group % self.rows_per_page:
            raise ValueError("rows_per_group must be a multiple of rows_per_page")
        if self.compliance_level not in (0, 1, 2):
            raise ValueError("compliance level must be 0, 1 or 2")


@dataclass
class WriterStats:
    """Streaming-writer instrumentation (the bounded-memory evidence).

    ``peak_encoded_pages_held`` / ``peak_encoded_payload_bytes`` track
    the most encoded-page state alive at once — the streaming writer
    encodes, hashes and flushes each page before touching the next, so
    the peak stays at one page (< one row group) regardless of file
    size. ``peak_buffered_rows`` bounds the raw-row staging buffer.
    """

    groups_flushed: int = 0
    pages_written: int = 0
    peak_buffered_rows: int = 0
    encoded_pages_held: int = 0
    encoded_payload_bytes_held: int = 0
    peak_encoded_pages_held: int = 0
    peak_encoded_payload_bytes: int = 0


_INT_PRIMS = {
    Primitive.INT64,
    Primitive.INT32,
    Primitive.INT16,
    Primitive.INT8,
    Primitive.BFLOAT16,  # stored as uint16 payloads
    Primitive.FLOAT8_E4M3,
    Primitive.FLOAT8_E5M2,
}


def default_encoding(column: PhysicalColumn) -> Encoding:
    """Type-driven default scheme (the "auto" policy)."""
    ptype = column.type
    if ptype.list_depth > 0:
        return ListEncoding()
    if ptype.primitive == Primitive.BOOL:
        return SparseBool()
    if ptype.primitive in _INT_PRIMS:
        return FixedBitWidth()
    return Trivial()  # floats, strings, binary


def _to_encodable(values, column: PhysicalColumn):
    """Coerce storage values to what the encoding layer accepts."""
    prim = column.type.primitive
    if column.type.list_depth > 0:
        return values
    if isinstance(values, np.ndarray):
        if prim in _INT_PRIMS and values.dtype != np.int64:
            if values.dtype == np.bool_:
                raise ValueError(f"bool array for int column {column.name}")
            return values.astype(np.int64)
        return values
    return values


class BullionWriter:
    """Incremental writer: ``open() -> write_batch(table)* -> finish()``.

    ``write(table)`` remains the one-shot convenience path.
    """

    def __init__(
        self,
        storage: Storage,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> None:
        self._storage = storage
        self._schema = schema
        self._options = options or WriterOptions()
        self.stats = WriterStats()
        self._state = "new"  # new -> open -> finished
        self._builder: FooterBuilder | None = None
        self._columns: list[PhysicalColumn] | None = None
        self._source_columns: list[PhysicalColumn] | None = None
        self._logical_fields: list[Field] | None = None
        #: staged raw fragments per physical column name (quantization
        #: and encoding happen at flush time)
        self._buffer: dict[str, list] = {}
        self._buffered_rows = 0
        self._column_order: list[str] | None = None
        #: per-column value kind from the first batch (np dtype or None
        #: for list-kind columns) — later batches must match exactly
        self._batch_kinds: dict[str, object] = {}

    # -- incremental API -----------------------------------------------
    def open(self) -> "BullionWriter":
        """Stamp the file magic and ready the footer builder."""
        if self._state != "new":
            raise RuntimeError(f"open() on a writer in state {self._state!r}")
        self._state = "open"
        self._builder = FooterBuilder(self._options.compliance_level)
        self._storage.append(MAGIC)
        return self

    def write_batch(self, table: Table) -> None:
        """Stage a batch of rows; flush every completed row group.

        Batches need not align to row-group boundaries — rows are cut
        into exact ``rows_per_group`` groups internally, so the file
        bytes depend only on the concatenated row stream, never on how
        it was batched.
        """
        if self._state == "new":
            self.open()
        if self._state != "open":
            raise RuntimeError("write_batch() after finish()")
        self._ingest_batch(table)
        while self._buffered_rows >= self._options.rows_per_group:
            self._resolve_columns_once()
            self._flush_group(self._take_rows(self._options.rows_per_group))

    def finish(self) -> FooterView:
        """Flush the trailing partial group and write the footer."""
        if self._state == "new":
            self.open()
        if self._state != "open":
            raise RuntimeError("finish() called twice")
        builder = self._builder
        assert builder is not None
        self._resolve_columns_once()
        if self._buffered_rows > 0 or builder.num_groups == 0:
            self._flush_group(self._take_rows(self._buffered_rows))
        assert self._columns is not None and self._logical_fields is not None
        footer_data = builder.finish(self._columns, self._logical_fields)
        footer_bytes = footer_data.serialize()
        footer_offset = self._storage.append(footer_bytes)
        self._storage.append(struct.pack("<I", len(footer_bytes)) + MAGIC)
        self._state = "finished"
        # the device's contents changed: drop any process-cache entries
        # keyed to its previous life (e.g. a recycled storage object)
        notify_mutation(self._storage)
        return FooterView(footer_bytes, file_offset=footer_offset)

    # -- one-shot wrapper ----------------------------------------------
    def write(self, table: Table) -> FooterView:
        self.open()
        self.write_batch(table)
        return self.finish()

    # -- batch staging / column resolution ------------------------------
    def _ingest_batch(self, table: Table) -> None:
        if self._schema is not None:
            validate_against_schema(table, self._schema)
        if self._column_order is None:
            self._column_order = list(table.columns)
            self._buffer = {name: [] for name in self._column_order}
            self._batch_kinds = {
                name: _value_kind(v) for name, v in table.columns.items()
            }
        elif set(table.columns) != set(self._column_order):
            raise ValueError(
                f"batch columns {sorted(table.columns)} do not match "
                f"first batch {sorted(self._column_order)}"
            )
        else:
            # dtype drift between batches would otherwise be silently
            # coerced into the first batch's storage type
            for name in self._column_order:
                kind = _value_kind(table.columns[name])
                if kind != self._batch_kinds[name]:
                    raise ValueError(
                        f"column {name!r}: batch value kind {kind} does "
                        f"not match first batch {self._batch_kinds[name]}"
                    )
        for name in self._column_order:
            self._buffer[name].append(table.columns[name])
        self._buffered_rows += table.num_rows
        self.stats.peak_buffered_rows = max(
            self.stats.peak_buffered_rows, self._buffered_rows
        )

    def _resolve_columns_once(self) -> None:
        """Lock in the physical column set just before the first flush.

        Deferring resolution to the first flush lets schema-less type
        inference probe every fragment staged so far — a first batch
        whose list column happens to be empty no longer mis-infers the
        column as binary.
        """
        if self._columns is not None:
            return
        if self._schema is not None:
            columns = self._schema.physical_columns()
            logical_fields = list(self._schema.fields)
        elif self._column_order is not None:
            columns = [
                PhysicalColumn(
                    name, _infer_from_fragments(self._buffer[name]), name
                )
                for name in self._column_order
            ]
            logical_fields = [Field(c.name, _logical_for(c)) for c in columns]
        else:
            columns, logical_fields = [], []
        self._source_columns = columns
        if self._options.quantization is not None:
            columns = [
                _quantized_column(c, self._options.quantization)
                for c in columns
            ]
        self._columns = columns
        self._logical_fields = logical_fields
        self._buffer = {c.name: self._buffer.get(c.name, []) for c in columns}

    def _quantize_group(self, values: dict[str, object]) -> dict[str, object]:
        """Narrow float columns per the §2.4 policy (no-op without one).

        Decided against the *source* column types: a natively-f16
        column is stored as-is, while an f32/f64 feature the policy
        maps to a narrower format is converted element-wise (so the
        result is independent of how rows were batched).
        """
        policy = self._options.quantization
        if policy is None:
            return values
        from repro.quantization import quantize

        assert self._source_columns is not None and self._columns is not None
        out: dict[str, object] = {}
        for src, col in zip(self._source_columns, self._columns):
            v = values[src.name]
            if _is_plain_float(src):
                fmt = policy.format_for(src.name)
                if col.type.primitive != src.type.primitive or _is_tf32(fmt):
                    v = quantize(np.asarray(v), fmt)
            out[src.name] = v
        return out

    # -- row staging ----------------------------------------------------
    def _take_rows(self, n: int) -> dict[str, object]:
        """Remove and return exactly ``n`` rows from the staging buffer."""
        assert self._columns is not None
        out: dict[str, object] = {}
        for col in self._columns:
            fragments = self._buffer[col.name]
            taken: list = []
            need = n
            while need > 0:
                frag = fragments[0]
                if len(frag) <= need:
                    taken.append(fragments.pop(0))
                    need -= len(frag)
                else:
                    taken.append(frag[:need])
                    fragments[0] = frag[need:]
                    need = 0
            if not taken:
                out[col.name] = _empty_values(col)
            elif len(taken) == 1:
                out[col.name] = taken[0]
            elif isinstance(taken[0], np.ndarray):
                out[col.name] = np.concatenate(taken)
            else:
                merged: list = []
                for part in taken:
                    merged.extend(part)
                out[col.name] = merged
        self._buffered_rows -= n
        return out

    # -- group flush -----------------------------------------------------
    def _flush_group(self, values: dict[str, object]) -> None:
        obs_on = obs_metrics.enabled()
        flush_t0 = time.perf_counter() if obs_on else 0.0
        with obs_trace.span("writer.flush_group"):
            self._flush_group_inner(values, obs_on)
        if obs_on:
            WRITER_FLUSH_SECONDS.observe(time.perf_counter() - flush_t0)

    def _flush_group_inner(
        self, values: dict[str, object], obs_on: bool
    ) -> None:
        opts = self._options
        storage = self._storage
        builder = self._builder
        stats = self.stats
        assert builder is not None and self._columns is not None
        values = self._quantize_group(values)
        n_rows = len(next(iter(values.values()))) if values else 0
        builder.begin_row_group()
        for c, column in enumerate(self._columns):
            col_values = values[column.name]
            chunk_offset = storage.size
            first_page = builder.next_page_index
            if n_rows == 0:
                # explicit empty-group path: one empty page per column
                # keeps chunk/page indices well-formed for readers
                page_slices = [(0, 0)]
            else:
                page_slices = [
                    (pos, min(pos + opts.rows_per_page, n_rows))
                    for pos in range(0, n_rows, opts.rows_per_page)
                ]
            for lo, hi in page_slices:
                page_values = _to_encodable(col_values[lo:hi], column)
                encoding = self._resolve_encoding(column, page_values)
                if obs_on:
                    t0 = time.perf_counter()
                    payload = encode_blob(page_values, encoding)
                    WRITER_ENCODE_SECONDS.observe(time.perf_counter() - t0)
                else:
                    payload = encode_blob(page_values, encoding)
                stats.encoded_pages_held += 1
                stats.encoded_payload_bytes_held += len(payload)
                stats.peak_encoded_pages_held = max(
                    stats.peak_encoded_pages_held, stats.encoded_pages_held
                )
                stats.peak_encoded_payload_bytes = max(
                    stats.peak_encoded_payload_bytes,
                    stats.encoded_payload_bytes_held,
                )
                framed = frame_page(payload, hi - lo, opts.page_padding)
                offset = storage.append(framed)
                builder.add_page(
                    PageMeta(
                        offset=offset,
                        alloc_len=len(payload) + opts.page_padding,
                        n_values=hi - lo,
                    ),
                    hash_bytes(payload),
                )
                stats.pages_written += 1
                if obs_on:
                    WRITER_MIRROR.bump({"pages_written": 1})
                stats.encoded_pages_held -= 1
                stats.encoded_payload_bytes_held -= len(payload)
                del payload, framed  # nothing encoded survives the page
            chunk_stats = (
                _numeric_chunk_stats(_stats_domain(col_values, column))
                if opts.collect_statistics
                else None
            )
            builder.add_chunk(
                c,
                ChunkMeta(
                    offset=chunk_offset,
                    size=storage.size - chunk_offset,
                    first_page=first_page,
                    n_pages=builder.next_page_index - first_page,
                ),
                chunk_stats,
            )
        builder.end_row_group(n_rows)
        stats.groups_flushed += 1
        if obs_on:
            WRITER_MIRROR.bump({"groups_flushed": 1})

    def _resolve_encoding(self, column: PhysicalColumn, values) -> Encoding:
        opts = self._options
        if column.name in opts.encodings:
            return opts.encodings[column.name]
        if opts.encoding_policy == "trivial":
            if column.type.list_depth > 0:
                return ListEncoding()
            return Trivial()
        if opts.encoding_policy == "cascade":
            from repro.cascading import choose_encoding

            return choose_encoding(values).encoding
        return default_encoding(column)


def _value_kind(values):
    """Comparable batch-consistency key: np dtype, or None for lists."""
    return values.dtype if isinstance(values, np.ndarray) else None


def _infer_from_fragments(fragments: list) -> PhysicalType:
    """Infer a column's physical type from its staged fragments.

    Array fragments are determined by dtype alone; list-kind fragments
    are ambiguous until one holds a non-empty probe value, so keep
    scanning and fall back to the last (empty-driven) guess only when
    no fragment resolves — the same answer the one-shot writer gives
    for an all-empty column.
    """
    from repro.core.table import infer_physical_type

    guess: PhysicalType | None = None
    for frag in fragments:
        if isinstance(frag, np.ndarray):
            return infer_physical_type(frag)
        if len(frag) == 0:
            continue
        guess = infer_physical_type(frag)
        if any(v is not None and len(v) for v in frag):
            return guess
    if guess is not None:
        return guess
    # nothing but empty fragments: match one-shot inference on empties
    probe = next((f for f in fragments if not isinstance(f, np.ndarray)), None)
    if probe is not None:
        return infer_physical_type(probe)
    return infer_physical_type(np.zeros(0, dtype=np.int64))


def _is_tf32(fmt) -> bool:
    from repro.quantization import FloatFormat

    return fmt == FloatFormat.TF32


def _quantized_column(column: PhysicalColumn, policy) -> PhysicalColumn:
    """Physical column after §2.4 narrowing (pure type mapping)."""
    if not _is_plain_float(column):
        return column
    from repro.quantization import FloatFormat

    fmt = policy.format_for(column.name)
    fmt_to_primitive = {
        FloatFormat.FP64: Primitive.FLOAT64,
        FloatFormat.FP32: Primitive.FLOAT32,
        FloatFormat.TF32: Primitive.FLOAT32,  # stored in 32 bits
        FloatFormat.FP16: Primitive.FLOAT16,
        FloatFormat.BF16: Primitive.BFLOAT16,
        FloatFormat.FP8_E4M3: Primitive.FLOAT8_E4M3,
        FloatFormat.FP8_E5M2: Primitive.FLOAT8_E5M2,
    }
    prim = fmt_to_primitive[fmt]
    if prim == column.type.primitive and fmt != FloatFormat.TF32:
        return column
    return PhysicalColumn(
        column.name, PhysicalType(prim, 0), column.source_field
    )


def _is_plain_float(column: PhysicalColumn) -> bool:
    return column.type.list_depth == 0 and column.type.primitive in (
        Primitive.FLOAT32,
        Primitive.FLOAT64,
    )


def _empty_values(column: PhysicalColumn):
    """A zero-row container of the column's storage kind."""
    if column.type.list_depth > 0 or column.type.primitive in (
        Primitive.STRING,
        Primitive.BINARY,
    ):
        return []
    return np.zeros(0, dtype=STORAGE_DTYPES[column.type.primitive])


def _numeric_chunk_stats(values) -> ChunkStats | None:
    """min/max of a numeric depth-0 slice (None for other kinds).

    Only NaN is excluded from float stats — ±inf values are ordered
    and must widen the bounds, or a ``col >= t`` filter could prune a
    group whose only match is ``inf`` (a wrong result, not a missed
    skip). All-NaN and empty slices carry no stats; the interval
    evaluator conservatively keeps such chunks, and treats every float
    interval as possibly-NaN (stats never see NaN rows).
    """
    if not isinstance(values, np.ndarray) or len(values) == 0:
        return None
    if values.dtype == np.bool_ or not (
        np.issubdtype(values.dtype, np.integer)
        or np.issubdtype(values.dtype, np.floating)
    ):
        return None
    if np.issubdtype(values.dtype, np.floating):
        comparable = values[~np.isnan(values)]
        if len(comparable) == 0:
            return None
        return ChunkStats(float(comparable.min()), float(comparable.max()))
    return ChunkStats(float(values.min()), float(values.max()))


#: §2.4 quantized primitives whose storage payload is NOT ordered like
#: the values it encodes (uint16 bf16 bits, uint8 fp8 codes)
_QUANTIZED_STATS_PRIMS = {
    Primitive.FLOAT16: "FP16",
    Primitive.BFLOAT16: "BF16",
    Primitive.FLOAT8_E4M3: "FP8_E4M3",
    Primitive.FLOAT8_E5M2: "FP8_E5M2",
}


def _stats_domain(values, column: PhysicalColumn):
    """Values in the domain predicates compare in.

    Quantized columns store bit payloads whose integer order disagrees
    with float order (negative bf16 values sort above positive ones as
    uint16), so zone maps over raw payloads would mis-prune. Stats are
    therefore collected over the *widened* float values — exactly what
    the decode-time vector evaluator sees.
    """
    prim = column.type.primitive
    if (
        column.type.list_depth != 0
        or prim not in _QUANTIZED_STATS_PRIMS
        or not isinstance(values, np.ndarray)
        or len(values) == 0
    ):
        return values
    from repro.quantization import FloatFormat, dequantize

    return dequantize(values, FloatFormat[_QUANTIZED_STATS_PRIMS[prim]])


def _logical_for(column: PhysicalColumn):
    from repro.core.schema import LogicalType

    t = LogicalType.of(column.type.primitive)
    for _ in range(column.type.list_depth):
        t = LogicalType.list_(t)
    return t


def write_table(
    storage: Storage,
    table: Table,
    schema: Schema | None = None,
    **option_kwargs,
) -> FooterView:
    """Convenience wrapper: one-shot write with keyword options."""
    return BullionWriter(
        storage, schema, WriterOptions(**option_kwargs)
    ).write(table)
