"""BullionWriter: serialize a table into the Bullion file layout.

File layout::

    magic "BULN"
    row group 0: column 0 pages, column 1 pages, ...   (column-contiguous
    row group 1: ...                                    within each group)
    footer (see repro.core.footer)
    u32 footer_len | magic "BULN"

Column-contiguous layout inside a row group means a projection reads
each requested column's chunk with one coalesced ``pread`` (the paper's
§2.3 access path, and the same rationale as Meta Alpha's "coalesced
reads").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.core.checksum import MerkleTree
from repro.core.footer import (
    MAGIC,
    ChunkMeta,
    ChunkStats,
    FooterData,
    FooterView,
    PageMeta,
    RowGroupMeta,
)
from repro.core.page import frame_page
from repro.core.schema import (
    Field,
    PhysicalColumn,
    PhysicalType,
    Primitive,
    Schema,
)
from repro.core.table import (
    Table,
    physical_schema_for_table,
    validate_against_schema,
)
from repro.encodings import (
    Encoding,
    ListEncoding,
    SparseBool,
    Trivial,
    encode_blob,
)
from repro.encodings.bitpack import FixedBitWidth
from repro.iosim import SimulatedStorage

#: compliance levels of §2.1
LEVEL_PLAIN = 0  # standard format, no upgraded deletion support
LEVEL_DELETION_VECTOR = 1  # query-time filtering only
LEVEL_IN_PLACE = 2  # deletion vectors + in-place scrubbing


@dataclass
class WriterOptions:
    """Knobs for file layout and encoding selection."""

    rows_per_page: int = 4096
    rows_per_group: int = 65536
    compliance_level: int = LEVEL_IN_PLACE
    #: per-column encoding overrides (physical column name -> Encoding)
    encodings: dict[str, Encoding] = dc_field(default_factory=dict)
    #: fallback policy: "auto" (type-driven defaults), "trivial", or
    #: "cascade" (run the §2.6 selector per column chunk)
    encoding_policy: str = "auto"
    #: slack appended to each page so in-place updates have headroom
    page_padding: int = 0
    #: record per-(column, row-group) min/max for predicate pruning
    collect_statistics: bool = True
    #: §2.4 storage quantization applied at write time: float columns
    #: are narrowed per the policy and their physical type recorded in
    #: the footer, so readers can widen transparently
    quantization: "object | None" = None  # QuantizationPolicy

    def __post_init__(self) -> None:
        if self.rows_per_page <= 0 or self.rows_per_group <= 0:
            raise ValueError("page/group sizes must be positive")
        if self.rows_per_group % self.rows_per_page:
            raise ValueError("rows_per_group must be a multiple of rows_per_page")
        if self.compliance_level not in (0, 1, 2):
            raise ValueError("compliance level must be 0, 1 or 2")


_INT_PRIMS = {
    Primitive.INT64,
    Primitive.INT32,
    Primitive.INT16,
    Primitive.INT8,
    Primitive.BFLOAT16,  # stored as uint16 payloads
    Primitive.FLOAT8_E4M3,
    Primitive.FLOAT8_E5M2,
}


def default_encoding(column: PhysicalColumn) -> Encoding:
    """Type-driven default scheme (the "auto" policy)."""
    ptype = column.type
    if ptype.list_depth > 0:
        return ListEncoding()
    if ptype.primitive == Primitive.BOOL:
        return SparseBool()
    if ptype.primitive in _INT_PRIMS:
        return FixedBitWidth()
    return Trivial()  # floats, strings, binary


def _to_encodable(values, column: PhysicalColumn):
    """Coerce storage values to what the encoding layer accepts."""
    prim = column.type.primitive
    if column.type.list_depth > 0:
        return values
    if isinstance(values, np.ndarray):
        if prim in _INT_PRIMS and values.dtype != np.int64:
            if values.dtype == np.bool_:
                raise ValueError(f"bool array for int column {column.name}")
            return values.astype(np.int64)
        return values
    return values


class BullionWriter:
    """One-shot writer: ``BullionWriter(storage).write(table)``."""

    def __init__(
        self,
        storage: SimulatedStorage,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> None:
        self._storage = storage
        self._schema = schema
        self._options = options or WriterOptions()

    def _resolve_encoding(self, column: PhysicalColumn, values) -> Encoding:
        opts = self._options
        if column.name in opts.encodings:
            return opts.encodings[column.name]
        if opts.encoding_policy == "trivial":
            if column.type.list_depth > 0:
                return ListEncoding()
            return Trivial()
        if opts.encoding_policy == "cascade":
            from repro.cascading import choose_encoding

            return choose_encoding(values).encoding
        return default_encoding(column)

    def write(self, table: Table) -> FooterView:
        opts = self._options
        if self._schema is not None:
            columns = validate_against_schema(table, self._schema)
            logical_fields = list(self._schema.fields)
        else:
            columns = physical_schema_for_table(table)
            logical_fields = [
                Field(c.name, _logical_for(c)) for c in columns
            ]
        if opts.quantization is not None:
            table, columns = _apply_quantization(
                table, columns, opts.quantization
            )
        num_rows = table.num_rows
        storage = self._storage
        storage.append(MAGIC)

        n_groups = max(1, (num_rows + opts.rows_per_group - 1) // opts.rows_per_group)
        pages: list[PageMeta] = []
        page_payloads: list[bytes] = []
        chunks: dict[tuple[int, int], ChunkMeta] = {}
        chunk_stats: dict[tuple[int, int], ChunkStats] = {}
        row_groups: list[RowGroupMeta] = []
        pages_per_group: list[int] = []

        for g in range(n_groups):
            row_start = g * opts.rows_per_group
            row_end = min(row_start + opts.rows_per_group, num_rows)
            rg_first_page = len(pages)
            for c, column in enumerate(columns):
                col_values = table.columns[column.name]
                chunk_offset = storage.size
                first_page = len(pages)
                pos = row_start
                while pos < row_end or (pos == row_start == row_end):
                    page_end = min(pos + opts.rows_per_page, row_end)
                    page_values = _to_encodable(
                        col_values[pos:page_end], column
                    )
                    encoding = self._resolve_encoding(column, page_values)
                    payload = encode_blob(page_values, encoding)
                    framed = frame_page(
                        payload, page_end - pos, opts.page_padding
                    )
                    offset = storage.append(framed)
                    pages.append(
                        PageMeta(
                            offset=offset,
                            alloc_len=len(payload) + opts.page_padding,
                            n_values=page_end - pos,
                        )
                    )
                    page_payloads.append(payload)
                    pos = page_end
                    if page_end == row_end:
                        break
                chunks[(c, g)] = ChunkMeta(
                    offset=chunk_offset,
                    size=storage.size - chunk_offset,
                    first_page=first_page,
                    n_pages=len(pages) - first_page,
                )
                if opts.collect_statistics:
                    stats = _numeric_chunk_stats(
                        col_values[row_start:row_end]
                    )
                    if stats is not None:
                        chunk_stats[(c, g)] = stats
            row_groups.append(
                RowGroupMeta(
                    row_start=row_start,
                    n_rows=row_end - row_start,
                    first_page=rg_first_page,
                )
            )
            pages_per_group.append(len(pages) - rg_first_page)

        tree = MerkleTree.build(page_payloads, pages_per_group)
        footer_data = FooterData(
            num_rows=num_rows,
            compliance_level=opts.compliance_level,
            columns=columns,
            logical_fields=logical_fields,
            chunks=chunks,
            pages=pages,
            row_groups=row_groups,
            page_hashes=tree.page_hashes,
            group_hashes=tree.group_hashes,
            root_hash=tree.root,
            chunk_stats=chunk_stats,
        )
        footer_bytes = footer_data.serialize()
        footer_offset = storage.append(footer_bytes)
        storage.append(struct.pack("<I", len(footer_bytes)) + MAGIC)
        return FooterView(footer_bytes, file_offset=footer_offset)


def _apply_quantization(table: Table, columns: list[PhysicalColumn], policy):
    """Narrow float columns per the §2.4 policy before encoding."""
    from repro.quantization import FloatFormat, quantize

    fmt_to_primitive = {
        FloatFormat.FP64: Primitive.FLOAT64,
        FloatFormat.FP32: Primitive.FLOAT32,
        FloatFormat.TF32: Primitive.FLOAT32,  # stored in 32 bits
        FloatFormat.FP16: Primitive.FLOAT16,
        FloatFormat.BF16: Primitive.BFLOAT16,
        FloatFormat.FP8_E4M3: Primitive.FLOAT8_E4M3,
        FloatFormat.FP8_E5M2: Primitive.FLOAT8_E5M2,
    }
    new_values: dict[str, object] = {}
    new_columns: list[PhysicalColumn] = []
    for col in columns:
        values = table.columns[col.name]
        is_plain_float = col.type.list_depth == 0 and col.type.primitive in (
            Primitive.FLOAT32,
            Primitive.FLOAT64,
        )
        if is_plain_float:
            fmt = policy.format_for(col.name)
            prim = fmt_to_primitive[fmt]
            if prim != col.type.primitive or fmt == FloatFormat.TF32:
                values = quantize(np.asarray(values), fmt)
                col = PhysicalColumn(
                    col.name, PhysicalType(prim, 0), col.source_field
                )
        new_values[col.name] = values
        new_columns.append(col)
    return Table(new_values), new_columns


def _numeric_chunk_stats(values) -> ChunkStats | None:
    """min/max of a numeric depth-0 slice (None for other kinds)."""
    if not isinstance(values, np.ndarray) or len(values) == 0:
        return None
    if values.dtype == np.bool_ or not (
        np.issubdtype(values.dtype, np.integer)
        or np.issubdtype(values.dtype, np.floating)
    ):
        return None
    if np.issubdtype(values.dtype, np.floating):
        finite = values[np.isfinite(values)]
        if len(finite) == 0:
            return None
        return ChunkStats(float(finite.min()), float(finite.max()))
    return ChunkStats(float(values.min()), float(values.max()))


def _logical_for(column: PhysicalColumn):
    from repro.core.schema import LogicalType

    t = LogicalType.of(column.type.primitive)
    for _ in range(column.type.list_depth):
        t = LogicalType.list_(t)
    return t


def write_table(
    storage: SimulatedStorage,
    table: Table,
    schema: Schema | None = None,
    **option_kwargs,
) -> FooterView:
    """Convenience wrapper: write with keyword options."""
    return BullionWriter(
        storage, schema, WriterOptions(**option_kwargs)
    ).write(table)
