"""Bullion core: the columnar file format itself.

Schema/type system, page framing, the flat binary footer, writer,
reader, Merkle checksums and deletion compliance — the paper's primary
contribution (§2.1, §2.3) plus its substrate.
"""

from repro.core.checksum import MerkleTree, full_file_checksum
from repro.core.chunk_cache import (
    TieredChunkCache,
    TierStats,
    add_mutation_listener,
    configure_process_cache,
    notify_mutation,
    process_cache,
    remove_mutation_listener,
    storage_identity,
)
from repro.core.compact import CompactionReport, compact, merge
from repro.core.dataset import LoaderOptions, ShardedDataset, TrainingDataLoader
from repro.core.deletion import (
    DeletionReport,
    MaskError,
    delete_rows,
    mask_page_payload,
    rewrite_without_rows,
)
from repro.core.footer import FooterBuilder, FooterView
from repro.core.reader import (
    BullionFormatError,
    BullionReader,
    ChunkCache,
    Predicate,
    Scan,
    ScanStats,
)
from repro.core.schema import (
    BINARY,
    BOOL,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    Field,
    LogicalType,
    PhysicalColumn,
    PhysicalType,
    Primitive,
    Schema,
)
from repro.core.table import Table
from repro.core.writer import (
    LEVEL_DELETION_VECTOR,
    LEVEL_IN_PLACE,
    LEVEL_PLAIN,
    BullionWriter,
    WriterOptions,
    WriterStats,
    write_table,
)

__all__ = [
    "MerkleTree",
    "full_file_checksum",
    "TieredChunkCache",
    "TierStats",
    "configure_process_cache",
    "notify_mutation",
    "add_mutation_listener",
    "remove_mutation_listener",
    "process_cache",
    "storage_identity",
    "CompactionReport",
    "compact",
    "merge",
    "TrainingDataLoader",
    "LoaderOptions",
    "ShardedDataset",
    "DeletionReport",
    "MaskError",
    "delete_rows",
    "mask_page_payload",
    "rewrite_without_rows",
    "FooterBuilder",
    "FooterView",
    "BullionFormatError",
    "BullionReader",
    "Scan",
    "ScanStats",
    "Predicate",
    "ChunkCache",
    "Field",
    "LogicalType",
    "PhysicalColumn",
    "PhysicalType",
    "Primitive",
    "Schema",
    "Table",
    "BullionWriter",
    "WriterOptions",
    "WriterStats",
    "write_table",
    "LEVEL_PLAIN",
    "LEVEL_DELETION_VECTOR",
    "LEVEL_IN_PLACE",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "STRING",
    "BINARY",
    "BOOL",
]
