"""Deletion compliance: the paper's hybrid in-place + vector scheme.

§2.1: "Bullion introduces a hybrid approach ... It performs in-place
updates to physically remove data, yet also uses deletion vectors to
efficiently indicate which rows have had this update performed to them
... This process must adhere to a key criterion: the post-update page
dimensions do not exceed their initial size."

Per-encoding maskers (exactly the paper's five cases):

* **Bit-packed / fixed width** — "Since the encoded values have a fixed
  size, it is straightforward to map bits in a bitmap to the encoded
  data elements, in order to mask deleted data": the slot's bits are
  zeroed in place, no decode.
* **Varint** — "it suffices to retain the MSB (continuation bit) of
  each byte unchanged, while masking out the remaining 7 bits": byte
  stream length and alignment preserved.
* **RLE** — "directly masking deleted elements is insufficient as it
  may lead to enlarged data post-re-encoding ... Instead, a deletion
  vector can be used": survivors are re-encoded compactly (provably no
  larger) and the vector restores alignment at read time.
* **Dictionary** — "a default mask value entry within the dictionary,
  enabling efficient deletion by simply updating the integer code in
  the data pages to reference this mask entry": codes are rewritten to
  the reserved ``MASK_CODE`` slot.
* **FOR-delta and nested schemes** — generic decode/mask/re-encode that
  replaces deleted values with a neighbour (delta 0 / offset base), so
  the re-encoded page cannot grow; falls back to vector-only if an
  exotic cascade would.

Compliance levels (§2.1): 0 = plain rewrite-the-file; 1 = deletion
vector only; 2 = vector + in-place scrub + incremental Merkle update.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.core.chunk_cache import notify_mutation
from repro.core.footer import FooterView
from repro.core.page import FLAG_COMPACTED, PAGE_HEADER_SIZE, PageHeader
from repro.core.reader import BullionReader
from repro.core.writer import LEVEL_DELETION_VECTOR, LEVEL_IN_PLACE, LEVEL_PLAIN
from repro.encodings import decode_blob, encoding_by_id
from repro.encodings.base import ByteReader
from repro.encodings.bitpack import FixedBitWidth
from repro.encodings.dictionary import MASK_CODE, Dictionary
from repro.encodings.nullable import SparseBool
from repro.encodings.rle import RLE
from repro.encodings.roaring import Roaring
from repro.encodings.trivial import Trivial
from repro.encodings.varint_enc import Varint
from repro.iosim import Storage
from repro.util.bitio import set_packed_values
from repro.util.hashing import combine_hashes, hash_bytes

_TRIVIAL_TAG_INT = 0
_TRIVIAL_TAG_FLOAT = 1
_TRIVIAL_TAG_BYTES = 2
_TRIVIAL_TAG_BOOL = 3


@dataclass
class MaskResult:
    """Outcome of masking one page."""

    payload: bytes
    n_values: int  # values now stored in the page
    compacted: bool = False


class MaskError(Exception):
    """In-place masking impossible; caller falls back to vector-only."""


# ---------------------------------------------------------------------------
# per-encoding maskers: (payload, positions, prev_deleted_mask) -> MaskResult
# `positions` are indices among the *stored* slots of the page.
# ---------------------------------------------------------------------------

def _mask_trivial(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    buf = bytearray(payload)
    tag = buf[1]
    if tag == _TRIVIAL_TAG_INT:
        base = 1 + 1 + 8
        (count,) = struct.unpack_from("<Q", buf, 2)
        for idx in positions:
            buf[base + idx * 8 : base + (idx + 1) * 8] = b"\x00" * 8
    elif tag == _TRIVIAL_TAG_FLOAT:
        dtype_code = buf[2]
        itemsize = {0: 8, 1: 4, 2: 2}[dtype_code]
        base = 1 + 1 + 1 + 8
        (count,) = struct.unpack_from("<Q", buf, 3)
        for idx in positions:
            start = base + idx * itemsize
            buf[start : start + itemsize] = b"\x00" * itemsize
    elif tag == _TRIVIAL_TAG_BOOL:
        base = 1 + 1 + 8
        for idx in positions:
            buf[base + idx] = 0
    elif tag == _TRIVIAL_TAG_BYTES:
        (count,) = struct.unpack_from("<Q", buf, 2)
        lengths_base = 1 + 1 + 8
        lengths = np.frombuffer(
            bytes(buf[lengths_base : lengths_base + 4 * count]), dtype=np.uint32
        )
        data_base = lengths_base + 4 * count
        starts = data_base + np.concatenate(
            ([0], np.cumsum(lengths.astype(np.int64))[:-1])
        )
        for idx in positions:
            s = int(starts[idx])
            buf[s : s + int(lengths[idx])] = b"\x00" * int(lengths[idx])
    else:
        raise MaskError(f"unknown trivial tag {tag}")
    count_off = 3 if tag == _TRIVIAL_TAG_FLOAT else 2
    hdr_count = struct.unpack_from("<Q", buf, count_off)[0]
    return MaskResult(bytes(buf), hdr_count)


def _mask_fixed_bit_width(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    buf = bytearray(payload)
    # layout: id u8 | base i64 | width u8 | count u64 | packed bits
    width = buf[9]
    (count,) = struct.unpack_from("<Q", buf, 10)
    packed_off = 1 + 8 + 1 + 8
    packed = buf[packed_off:]
    set_packed_values(packed, positions, width, 0)
    buf[packed_off:] = packed
    return MaskResult(bytes(buf), count)


def _mask_varint(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    buf = bytearray(payload)
    (count,) = struct.unpack_from("<Q", buf, 1)
    stream_off = 1 + 8
    raw = np.frombuffer(bytes(buf[stream_off:]), dtype=np.uint8)
    term = np.flatnonzero((raw & 0x80) == 0)
    if len(term) < count:
        raise MaskError("corrupt varint stream")
    ends = term[:count] + 1
    starts = np.concatenate(([0], ends[:-1]))
    for idx in positions:
        s, e = int(starts[idx]), int(ends[idx])
        for b in range(s, e):
            buf[stream_off + b] &= 0x80  # keep MSB, zero 7-bit payload
    return MaskResult(bytes(buf), count)


def _mask_dictionary(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    # layout: id u8 | tag u8 | dict blob (u32 len) | codes blob (u32 len)
    reader = ByteReader(payload, offset=2)
    dict_len = reader.read_u32()
    reader.read(dict_len)
    codes_len_off = reader.pos
    codes_len = reader.read_u32()
    codes_off = reader.pos
    codes_blob = payload[codes_off : codes_off + codes_len]
    if codes_blob[0] != FixedBitWidth.id:
        raise MaskError("dictionary codes not bit-packed; cannot mask in place")
    buf = bytearray(codes_blob)
    base = struct.unpack_from("<q", buf, 1)[0]
    width = buf[9]
    (count,) = struct.unpack_from("<Q", buf, 10)
    target = MASK_CODE - base
    if target < 0 or (width and target >= (1 << width)) or (width == 0 and target != 0):
        raise MaskError("mask code not representable at this bit width")
    packed_off = 1 + 8 + 1 + 8
    packed = buf[packed_off:]
    set_packed_values(packed, positions, width, target)
    buf[packed_off:] = packed
    out = bytearray(payload)
    out[codes_off : codes_off + codes_len] = buf
    return MaskResult(bytes(out), count)


def _mask_rle(payload: bytes, positions: np.ndarray, prev_deleted) -> MaskResult:
    values = decode_blob(payload)
    keep = np.ones(len(values), dtype=np.bool_)
    keep[positions] = False
    survivors = values[keep]
    new_payload = _reencode_same(payload, survivors)
    if len(new_payload) > len(payload):
        raise MaskError("re-encoded RLE page grew (pathological)")
    return MaskResult(new_payload, len(survivors), compacted=True)


def _mask_generic(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    """Decode, overwrite deleted slots with a neighbour value, re-encode.

    Using the previous surviving value keeps deltas at zero and FOR
    offsets within the block's existing range, so the page cannot grow
    for the delta-family encodings.
    """
    values = decode_blob(payload)
    if isinstance(values, list):
        # list column page: scrub by replacing deleted rows with empties
        out_rows = list(values)
        for p in positions:
            item = out_rows[int(p)]
            if isinstance(item, (bytes, bytearray)):
                out_rows[int(p)] = b""
            elif isinstance(item, np.ndarray):
                out_rows[int(p)] = item[:0]
            else:
                out_rows[int(p)] = []
        new_payload = _reencode_same(payload, out_rows)
        if len(new_payload) > len(payload):
            raise MaskError("list page re-encode grew the page")
        return MaskResult(new_payload, len(out_rows))
    if not isinstance(values, np.ndarray):
        raise MaskError("generic masking requires array or list values")
    out = values.copy()
    pos_set = set(int(p) for p in positions)
    n = len(out)
    for p in sorted(pos_set):
        donor = None
        for q in range(p - 1, -1, -1):
            if q not in pos_set:
                donor = out[q]
                break
        if donor is None:
            for q in range(p + 1, n):
                if q not in pos_set:
                    donor = values[q]
                    break
        out[p] = donor if donor is not None else 0
    new_payload = _reencode_same(payload, out)
    if len(new_payload) > len(payload):
        raise MaskError("generic re-encode grew the page")
    return MaskResult(new_payload, len(out))


def _reencode_same(payload: bytes, values) -> bytes:
    """Re-encode with the same top-level scheme (default parameters)."""
    cls = encoding_by_id(payload[0])
    return bytes([cls.id]) + cls().encode(values)


def _mask_bool(payload: bytes, positions: np.ndarray, _prev) -> MaskResult:
    """Mask boolean pages by clearing bits — provably never grows.

    In positions mode, removing set bits shortens the delta-varint
    stream (varint(a+b) <= varint(a) + varint(b)); in bitmap mode the
    size is fixed.
    """
    values = decode_blob(payload)
    out = values.copy()
    out[positions] = False
    new_payload = _reencode_same(payload, out)
    if len(new_payload) > len(payload):
        raise MaskError("bool page re-encode grew (unexpected)")
    return MaskResult(new_payload, len(out))


_MASKERS = {
    Trivial.id: _mask_trivial,
    FixedBitWidth.id: _mask_fixed_bit_width,
    Varint.id: _mask_varint,
    Dictionary.id: _mask_dictionary,
    RLE.id: _mask_rle,
    SparseBool.id: _mask_bool,
    Roaring.id: _mask_bool,
}


def mask_page_payload(
    payload: bytes, positions: np.ndarray, prev_deleted: np.ndarray | None = None
) -> MaskResult:
    """Scrub ``positions`` (stored-slot indices) from an encoded page."""
    masker = _MASKERS.get(payload[0], _mask_generic)
    return masker(payload, np.asarray(positions, dtype=np.int64), prev_deleted)


# ---------------------------------------------------------------------------
# file-level deletion
# ---------------------------------------------------------------------------

@dataclass
class DeletionReport:
    """What one delete_rows call touched (the §2.1 cost accounting)."""

    rows_deleted: int
    pages_rewritten: int = 0
    pages_vector_only: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    merkle_nodes_recomputed: int = 0
    fallbacks: list[str] = field(default_factory=list)


def delete_rows(
    storage: Storage,
    rows,
    level: int | None = None,
) -> DeletionReport:
    """Compliantly delete global row ids from a Bullion file in place.

    Level 2 reads and rewrites only the affected pages plus the footer's
    deletion-vector and checksum words — never the whole file.
    """
    rows = np.unique(np.asarray(list(rows), dtype=np.int64))
    read0 = storage.stats.bytes_read
    written0 = storage.stats.bytes_written
    reader = BullionReader(storage)
    footer = reader.footer
    if level is None:
        level = footer.compliance_level
    if len(rows) and (rows[0] < 0 or rows[-1] >= footer.num_rows):
        raise ValueError("row id out of range")
    if level == LEVEL_PLAIN:
        raise ValueError(
            "compliance level 0 files have no deletion support; "
            "use rewrite_without_rows() (full rewrite) instead"
        )
    report = DeletionReport(rows_deleted=len(rows))

    prev_bitmap = footer.deletion_bitmap()
    new_bitmap = prev_bitmap.copy()
    new_bitmap[rows] = True

    # 1. persist the deletion vector (levels 1 and 2)
    delvec_off, delvec_len = footer.delvec_file_range()
    packed = np.packbits(new_bitmap, bitorder="little").tobytes()
    payload = struct.pack("<I", int(new_bitmap.sum())) + packed
    payload = payload.ljust(delvec_len, b"\x00")[:delvec_len]
    storage.pwrite(delvec_off, payload)

    if level == LEVEL_DELETION_VECTOR:
        report.bytes_read = storage.stats.bytes_read - read0
        report.bytes_written = storage.stats.bytes_written - written0
        notify_mutation(storage)
        return report

    # 2. in-place scrub of every affected page (all columns of the rows)
    changed_leaves: dict[int, int] = {}
    for g in range(footer.num_row_groups):
        rg = footer.row_group(g)
        in_rg = rows[(rows >= rg.row_start) & (rows < rg.row_start + rg.n_rows)]
        if len(in_rg) == 0:
            continue
        local_rows = in_rg - rg.row_start
        for col_idx in range(footer.num_columns):
            chunk = footer.chunk(col_idx, g)
            page_row = 0
            for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
                meta = footer.page(pid)
                page_rows = local_rows[
                    (local_rows >= page_row)
                    & (local_rows < page_row + meta.n_values)
                ]
                if len(page_rows) == 0:
                    page_row += meta.n_values
                    continue
                local = page_rows - page_row
                global_start = rg.row_start + page_row
                prev_local = prev_bitmap[
                    global_start : global_start + meta.n_values
                ]
                # translate row index -> stored slot index (compacted pages)
                raw = storage.pread(meta.offset, PAGE_HEADER_SIZE + meta.alloc_len)
                header = PageHeader.unpack(raw)
                page_payload = raw[
                    PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + header.payload_len
                ]
                if header.n_values != meta.n_values:
                    kept_rows = np.flatnonzero(~prev_local)
                    slot_of = {int(r): s for s, r in enumerate(kept_rows)}
                    slots = np.array(
                        [slot_of[int(r)] for r in local if int(r) in slot_of],
                        dtype=np.int64,
                    )
                else:
                    fresh = ~prev_local[local]
                    slots = local[fresh]
                if len(slots) == 0:
                    page_row += meta.n_values
                    continue
                try:
                    result = mask_page_payload(page_payload, slots, prev_local)
                except MaskError as exc:
                    report.pages_vector_only += 1
                    report.fallbacks.append(f"page {pid}: {exc}")
                    page_row += meta.n_values
                    continue
                if len(result.payload) > meta.alloc_len:
                    report.pages_vector_only += 1
                    report.fallbacks.append(
                        f"page {pid}: masked payload exceeds allocation"
                    )
                    page_row += meta.n_values
                    continue
                new_header = PageHeader(
                    alloc_len=meta.alloc_len,
                    payload_len=len(result.payload),
                    n_values=result.n_values,
                    flags=header.flags
                    | (FLAG_COMPACTED if result.compacted else 0),
                )
                framed = (
                    new_header.pack()
                    + result.payload
                    + b"\x00" * (meta.alloc_len - len(result.payload))
                )
                storage.pwrite(meta.offset, framed)
                changed_leaves[pid] = hash_bytes(result.payload)
                report.pages_rewritten += 1
                page_row += meta.n_values

    # 3. incremental Merkle maintenance (Fig 2)
    if changed_leaves:
        pages_base, groups_base, root_off = footer.checksum_file_offsets()
        leaf = {
            pid: footer.page_hash(pid) for pid in range(footer.num_pages)
        }
        leaf.update(changed_leaves)
        for pid, h in changed_leaves.items():
            storage.pwrite(pages_base + pid * 8, struct.pack("<Q", h))
        ppg = footer.pages_per_group()
        group_hashes = []
        start = 0
        touched_groups = set()
        for pid in changed_leaves:
            pos = 0
            for g, count in enumerate(ppg):
                if pid < pos + count:
                    touched_groups.add(g)
                    break
                pos += count
        for g, count in enumerate(ppg):
            if g in touched_groups:
                h = combine_hashes([leaf[p] for p in range(start, start + count)])
            else:
                h = footer.group_hash(g)
            group_hashes.append(h)
            start += count
        for g in touched_groups:
            storage.pwrite(groups_base + g * 8, struct.pack("<Q", group_hashes[g]))
        root = combine_hashes(group_hashes)
        storage.pwrite(root_off, struct.pack("<Q", root))
        report.merkle_nodes_recomputed = (
            len(changed_leaves) + len(touched_groups) + 1
        )

    report.bytes_read = storage.stats.bytes_read - read0
    report.bytes_written = storage.stats.bytes_written - written0
    # the file's bytes (and footer fingerprint) just changed under any
    # process-wide chunk cache: reclaim the orphaned entries promptly
    notify_mutation(storage)
    return report


def rewrite_without_rows(
    storage: Storage, rows, target: Storage
) -> DeletionReport:
    """Level-0 baseline: read everything, rewrite the whole file.

    This is the "delete requests causing rewriting of hundreds of
    petabytes per month" path the paper's hybrid scheme displaces; the
    deletion-compliance benchmark compares its I/O against
    :func:`delete_rows`.
    """
    rows = np.unique(np.asarray(list(rows), dtype=np.int64))
    read0 = storage.stats.bytes_read
    reader = BullionReader(storage)
    names = reader.column_names()
    table = reader.project(names, drop_deleted=False)
    keep = np.ones(reader.num_rows, dtype=np.bool_)
    keep[rows] = False
    survivor = table.take_mask(keep)
    from repro.core.writer import BullionWriter, WriterOptions

    BullionWriter(target, options=WriterOptions(compliance_level=0)).write(
        survivor
    )
    return DeletionReport(
        rows_deleted=len(rows),
        bytes_read=storage.stats.bytes_read - read0,
        bytes_written=target.stats.bytes_written,
    )
