"""Compaction: reclaim space from deletion-scrubbed files.

The §2.1 hybrid scheme deliberately leaves page allocations unchanged
(masked slots, padded payloads) so deletes never rewrite the file.
Space is reclaimed later, off the compliance-critical path, by a
background compaction — the same division of labour as Delta Lake's
OPTIMIZE after deletion vectors.

:func:`compact` rewrites a file without its deleted rows (and without
the per-page padding and mask slots), returning how many bytes were
reclaimed. :func:`merge` concatenates several files into one, which is
how small incremental ingests roll up into training-sized files.

Both accept any :class:`~repro.iosim.Storage` backend — simulated,
real file, or latency-modelled — so catalog maintenance jobs run
unchanged against an actual filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reader import BullionReader
from repro.core.schema import Field, LogicalType, Schema
from repro.core.table import Table
from repro.core.writer import BullionWriter, WriterOptions
from repro.iosim import Storage


def layout_schema(reader: BullionReader) -> Schema:
    """A schema that reproduces ``reader``'s physical layout exactly.

    Rewrites must not re-infer types from decoded payloads: a BF16/FP8
    column decodes to raw integer payloads, and inference would turn it
    into an int column with a different fingerprint. The footer's own
    logical schema is authoritative — except for files written under a
    quantization *policy*, where the logical section still records the
    pre-quantization float type; there the physical columns are the
    truth and the rewrite adopts them as its logical fields.
    """
    schema = reader.footer.schema()
    physical = reader.footer.physical_columns()
    derived = schema.physical_columns()
    if [(c.name, str(c.type)) for c in derived] == [
        (c.name, str(c.type)) for c in physical
    ]:
        return schema
    return Schema(
        [Field(c.name, LogicalType.parse(str(c.type))) for c in physical]
    )


@dataclass(frozen=True)
class CompactionReport:
    rows_in: int
    rows_out: int
    bytes_in: int
    bytes_out: int

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_in - self.bytes_out


def compact(
    source: Storage,
    target: Storage,
    options: WriterOptions | None = None,
) -> CompactionReport:
    """Rewrite ``source`` into ``target`` dropping deleted rows."""
    reader = BullionReader(source)
    names = reader.column_names()
    table = reader.project(names, drop_deleted=True)
    BullionWriter(
        target, schema=layout_schema(reader), options=options or WriterOptions()
    ).write(table)
    return CompactionReport(
        rows_in=reader.num_rows,
        rows_out=table.num_rows,
        bytes_in=source.size,
        bytes_out=target.size,
    )


def merge(
    sources: list[Storage],
    target: Storage,
    options: WriterOptions | None = None,
) -> CompactionReport:
    """Concatenate files with identical physical columns into one."""
    if not sources:
        raise ValueError("nothing to merge")
    tables = []
    names: list[str] | None = None
    schema: Schema | None = None
    rows_in = 0
    bytes_in = 0
    for src in sources:
        reader = BullionReader(src)
        if names is None:
            names = reader.column_names()
            schema = layout_schema(reader)
        elif reader.column_names() != names:
            raise ValueError("cannot merge files with different columns")
        tables.append(reader.project(names, drop_deleted=True))
        rows_in += reader.num_rows
        bytes_in += src.size
    merged: dict[str, object] = {}
    for name in names or []:
        parts = [t.columns[name] for t in tables]
        if isinstance(parts[0], np.ndarray):
            merged[name] = np.concatenate(parts)
        else:
            out: list = []
            for p in parts:
                out.extend(p)
            merged[name] = out
    table = Table(merged)
    BullionWriter(
        target, schema=schema, options=options or WriterOptions()
    ).write(table)
    return CompactionReport(
        rows_in=rows_in,
        rows_out=table.num_rows,
        bytes_in=bytes_in,
        bytes_out=target.size,
    )
