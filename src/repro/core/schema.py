"""Bullion's logical type system and physical flattening.

Logical types mirror the Parquet/Arrow vocabulary the paper's Table 1
census uses (``list<int64>``, ``struct<list<int64>, list<float>>``,
``string``, ...). Physically Bullion flattens structs — each struct
field becomes its own on-disk stream ("feature flattening, which stores
each feature as a separate stream on disk", §3's description of Meta's
Alpha, adopted here) — so a physical column is always a primitive plus
a list-nesting depth (0, 1 or 2).

Quantized primitives (FLOAT16/BFLOAT16/FP8) are first-class physical
types: §2.4's storage quantization writes them directly, stored as
uint16/uint8 payloads with the logical float semantics recorded here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class Primitive(enum.IntEnum):
    """Leaf physical types (codes are persisted in the footer)."""

    INT64 = 0
    INT32 = 1
    INT16 = 2
    INT8 = 3
    FLOAT64 = 4
    FLOAT32 = 5
    FLOAT16 = 6
    BFLOAT16 = 7
    FLOAT8_E4M3 = 8
    FLOAT8_E5M2 = 9
    STRING = 10
    BINARY = 11
    BOOL = 12

    @property
    def type_name(self) -> str:
        return _PRIMITIVE_NAMES[self]


_PRIMITIVE_NAMES = {
    Primitive.INT64: "int64",
    Primitive.INT32: "int32",
    Primitive.INT16: "int16",
    Primitive.INT8: "int8",
    Primitive.FLOAT64: "double",
    Primitive.FLOAT32: "float",
    Primitive.FLOAT16: "float16",
    Primitive.BFLOAT16: "bfloat16",
    Primitive.FLOAT8_E4M3: "fp8_e4m3",
    Primitive.FLOAT8_E5M2: "fp8_e5m2",
    Primitive.STRING: "string",
    Primitive.BINARY: "binary",
    Primitive.BOOL: "bool",
}
_PRIMITIVE_BY_NAME = {v: k for k, v in _PRIMITIVE_NAMES.items()}

#: numpy storage dtype per primitive (bytes columns have none)
STORAGE_DTYPES = {
    Primitive.INT64: np.int64,
    Primitive.INT32: np.int32,
    Primitive.INT16: np.int16,
    Primitive.INT8: np.int8,
    Primitive.FLOAT64: np.float64,
    Primitive.FLOAT32: np.float32,
    Primitive.FLOAT16: np.float16,
    Primitive.BFLOAT16: np.uint16,
    Primitive.FLOAT8_E4M3: np.uint8,
    Primitive.FLOAT8_E5M2: np.uint8,
    Primitive.BOOL: np.bool_,
}


#: primitives whose values are integer-valued (no NaN; float64 stats
#: storage may round magnitudes beyond 2**53)
_INT_KIND_PRIMS = frozenset(
    {Primitive.INT64, Primitive.INT32, Primitive.INT16, Primitive.INT8,
     Primitive.BOOL}
)
_FLOAT_KIND_PRIMS = frozenset(
    {Primitive.FLOAT64, Primitive.FLOAT32, Primitive.FLOAT16,
     Primitive.BFLOAT16, Primitive.FLOAT8_E4M3, Primitive.FLOAT8_E5M2}
)


def stats_kind(ptype: "PhysicalType") -> str | None:
    """Interval-evaluation kind of a physical column's statistics.

    ``"int"`` — integer-valued, NaN-free, but float64 stats storage may
    have rounded bounds beyond 2**53; ``"float"`` — bounds are exact
    stored values but NaN rows may exist outside them (quantized floats
    included: their stats are collected in the widened float domain);
    ``None`` — no statistics are collected (strings, binary, lists).
    """
    if ptype.list_depth > 0:
        return None
    if ptype.primitive in _INT_KIND_PRIMS:
        return "int"
    if ptype.primitive in _FLOAT_KIND_PRIMS:
        return "float"
    return None


@dataclass(frozen=True)
class LogicalType:
    """A type tree node: primitive, list<child> or struct<children>."""

    primitive: Primitive | None = None
    list_of: "LogicalType | None" = None
    struct_of: tuple["LogicalType", ...] = ()

    def __post_init__(self) -> None:
        set_count = sum(
            (
                self.primitive is not None,
                self.list_of is not None,
                len(self.struct_of) > 0,
            )
        )
        if set_count != 1:
            raise ValueError(
                "LogicalType must be exactly one of primitive/list/struct"
            )

    # -- constructors ---------------------------------------------------
    @staticmethod
    def of(primitive: Primitive) -> "LogicalType":
        return LogicalType(primitive=primitive)

    @staticmethod
    def list_(inner: "LogicalType") -> "LogicalType":
        return LogicalType(list_of=inner)

    @staticmethod
    def struct(*children: "LogicalType") -> "LogicalType":
        return LogicalType(struct_of=tuple(children))

    # -- rendering (Table 1 census strings) ------------------------------
    def __str__(self) -> str:
        if self.primitive is not None:
            return self.primitive.type_name
        if self.list_of is not None:
            return f"list<{self.list_of}>"
        return f"struct<{', '.join(str(c) for c in self.struct_of)}>"

    @staticmethod
    def parse(text: str) -> "LogicalType":
        """Parse the census string format back into a type tree."""
        text = text.strip()
        if text.startswith("list<") and text.endswith(">"):
            return LogicalType.list_(LogicalType.parse(text[5:-1]))
        if text.startswith("struct<") and text.endswith(">"):
            parts = _split_top_level(text[7:-1])
            return LogicalType.struct(*(LogicalType.parse(p) for p in parts))
        if text in _PRIMITIVE_BY_NAME:
            return LogicalType.of(_PRIMITIVE_BY_NAME[text])
        raise ValueError(f"cannot parse type {text!r}")

    # -- physical flattening ---------------------------------------------
    def flatten(self, name: str) -> list[tuple[str, "PhysicalType"]]:
        """Struct-flattened physical columns for a field of this type."""
        if self.primitive is not None:
            return [(name, PhysicalType(self.primitive, 0))]
        if self.list_of is not None:
            inner = self.list_of
            depth = 1
            while inner.list_of is not None:
                inner = inner.list_of
                depth += 1
            if inner.primitive is None:
                raise ValueError("list<struct> columns are not supported")
            if depth > 2:
                raise ValueError("list nesting deeper than 2 not supported")
            return [(name, PhysicalType(inner.primitive, depth))]
        out: list[tuple[str, PhysicalType]] = []
        for i, child in enumerate(self.struct_of):
            out.extend(child.flatten(f"{name}.f{i}"))
        return out


def _split_top_level(text: str) -> list[str]:
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return [p for p in (s.strip() for s in parts) if p]


@dataclass(frozen=True)
class PhysicalType:
    """What actually hits the disk: primitive + list depth (0..2)."""

    primitive: Primitive
    list_depth: int = 0

    def __str__(self) -> str:
        out = self.primitive.type_name
        for _ in range(self.list_depth):
            out = f"list<{out}>"
        return out


@dataclass(frozen=True)
class Field:
    """A named logical column in the user-facing schema."""

    name: str
    type: LogicalType


@dataclass(frozen=True)
class PhysicalColumn:
    """A flattened on-disk column (unit of projection and encoding)."""

    name: str
    type: PhysicalType
    source_field: str


@dataclass
class Schema:
    """Ordered logical fields + derived physical layout."""

    fields: list[Field] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in schema")

    def __len__(self) -> int:
        return len(self.fields)

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def physical_columns(self) -> list[PhysicalColumn]:
        out: list[PhysicalColumn] = []
        for f in self.fields:
            for name, ptype in f.type.flatten(f.name):
                out.append(PhysicalColumn(name, ptype, f.name))
        return out

    def census(self) -> dict[str, int]:
        """Logical type -> count, the Table 1 'statistical breakdown'."""
        counts: dict[str, int] = {}
        for f in self.fields:
            key = str(f.type)
            counts[key] = counts.get(key, 0) + 1
        return counts


# convenience aliases used throughout workloads/tests
INT64 = LogicalType.of(Primitive.INT64)
INT32 = LogicalType.of(Primitive.INT32)
FLOAT32 = LogicalType.of(Primitive.FLOAT32)
FLOAT64 = LogicalType.of(Primitive.FLOAT64)
STRING = LogicalType.of(Primitive.STRING)
BINARY = LogicalType.of(Primitive.BINARY)
BOOL = LogicalType.of(Primitive.BOOL)
