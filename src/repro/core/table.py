"""In-memory table model: the unit handed to the writer and returned
by the reader.

A :class:`Table` is an ordered mapping of *physical* column name to
values. Values follow the encoding kinds of :mod:`repro.encodings`:
numpy arrays for primitives, ``list[bytes]`` for string/binary,
``list[np.ndarray]`` for ``list<T>`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import PhysicalColumn, PhysicalType, Primitive, Schema


def column_length(values) -> int:
    return len(values)


@dataclass
class Table:
    """Columnar batch: physical column name -> values."""

    columns: dict[str, object]

    def __post_init__(self) -> None:
        lengths = {name: column_length(v) for name, v in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged table: column lengths {lengths}")

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return column_length(next(iter(self.columns.values())))

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str):
        return self.columns[name]

    def select(self, names: list[str]) -> "Table":
        return Table({name: self.columns[name] for name in names})

    def slice(self, start: int, stop: int) -> "Table":
        return Table(
            {name: v[start:stop] for name, v in self.columns.items()}
        )

    def take_mask(self, keep: np.ndarray) -> "Table":
        """Rows where ``keep`` is True (used to drop deleted rows)."""
        out = {}
        for name, values in self.columns.items():
            if isinstance(values, np.ndarray):
                out[name] = values[keep]
            else:
                out[name] = [v for v, k in zip(values, keep) if k]
        return Table(out)

    def equals(self, other: "Table") -> bool:
        if set(self.columns) != set(other.columns):
            return False
        for name, mine in self.columns.items():
            theirs = other.columns[name]
            if isinstance(mine, np.ndarray):
                if not np.array_equal(np.asarray(theirs), mine):
                    return False
            elif len(mine) != len(theirs):
                return False
            else:
                for a, b in zip(mine, theirs):
                    if isinstance(a, np.ndarray):
                        if not np.array_equal(a, np.asarray(b)):
                            return False
                    elif isinstance(a, list) and a and isinstance(a[0], np.ndarray):
                        if len(a) != len(b) or any(
                            not np.array_equal(x, np.asarray(y))
                            for x, y in zip(a, b)
                        ):
                            return False
                    elif a != b:
                        return False
        return True


def concat_tables(tables: list["Table"]) -> "Table":
    """Row-wise concatenation of same-schema tables."""
    if not tables:
        return Table({})
    out: dict[str, object] = {}
    for name in tables[0].columns:
        parts = [t.columns[name] for t in tables]
        if isinstance(parts[0], np.ndarray):
            out[name] = np.concatenate(parts)
        else:
            merged: list = []
            for p in parts:
                merged.extend(p)
            out[name] = merged
    return Table(out)


def infer_physical_type(values) -> PhysicalType:
    """Best-effort physical type for schema-less writes."""
    if isinstance(values, np.ndarray):
        dtype = values.dtype
        if dtype == np.bool_:
            return PhysicalType(Primitive.BOOL, 0)
        if dtype == np.int32:
            return PhysicalType(Primitive.INT32, 0)
        if np.issubdtype(dtype, np.integer):
            return PhysicalType(Primitive.INT64, 0)
        if dtype == np.float32:
            return PhysicalType(Primitive.FLOAT32, 0)
        if dtype == np.float16:
            return PhysicalType(Primitive.FLOAT16, 0)
        if np.issubdtype(dtype, np.floating):
            return PhysicalType(Primitive.FLOAT64, 0)
        raise ValueError(f"cannot infer physical type for dtype {dtype}")
    if isinstance(values, list):
        probe = next((v for v in values if v is not None and len(v)), None)
        if probe is None or isinstance(probe, (bytes, bytearray)):
            return PhysicalType(Primitive.BINARY, 0)
        if isinstance(probe, np.ndarray):
            if np.issubdtype(probe.dtype, np.floating):
                prim = (
                    Primitive.FLOAT32
                    if probe.dtype == np.float32
                    else Primitive.FLOAT64
                )
                return PhysicalType(prim, 1)
            return PhysicalType(Primitive.INT64, 1)
        if isinstance(probe, list):
            inner = next((x for x in probe if x is not None), None)
            if isinstance(inner, (bytes, bytearray)):
                return PhysicalType(Primitive.BINARY, 1)
            if isinstance(inner, (list, np.ndarray)):
                return PhysicalType(Primitive.INT64, 2)
            if isinstance(inner, float):
                return PhysicalType(Primitive.FLOAT64, 1)
            return PhysicalType(Primitive.INT64, 1)
    raise ValueError(f"cannot infer physical type for {type(values)!r}")


def physical_schema_for_table(table: Table) -> list[PhysicalColumn]:
    """Physical column list inferred from a schema-less table."""
    return [
        PhysicalColumn(name, infer_physical_type(values), name)
        for name, values in table.columns.items()
    ]


def validate_against_schema(table: Table, schema: Schema) -> list[PhysicalColumn]:
    """Check the table provides exactly the schema's physical columns."""
    cols = schema.physical_columns()
    missing = [c.name for c in cols if c.name not in table.columns]
    extra = [n for n in table.columns if n not in {c.name for c in cols}]
    if missing or extra:
        raise ValueError(
            f"table/schema mismatch: missing={missing[:5]} extra={extra[:5]}"
        )
    return cols
