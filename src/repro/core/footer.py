"""The Bullion footer: a flat, zero-deserialization binary layout.

Paper §2.3: "Bullion adopts a compact metadata layout that enables
direct metadata access from the footer, allowing for immediate buffer
value reads *without deserialization*. This binary format is reminiscent
of Cap'n Proto and FlatBuffers. To access columns in Bullion files, the
process begins with a pread() of the footer, followed by a binary map
scan to find column indices. Byte ranges for each column are identified
via an offsets array, followed by a targeted pread() for data
retrieval."

Concretely (all little-endian, offsets relative to footer start):

===========  ========================================================
header       magic, version, num_rows, num_cols, num_rgs, num_pages,
             compliance level, then 9 section (offset, length) pairs
colmap       num_cols x (u64 name_hash, u32 col_idx), sorted by hash
coldesc      num_cols x (u8 primitive, u8 list_depth, u16 flags,
             u32 encoding_hint)
chunkindex   col-major num_cols*num_rgs x (u64 offset, u64 size,
             u32 first_page, u32 n_pages)
pageindex    num_pages x (u64 offset, u32 alloc_len, u32 n_values)
rgindex      num_rgs x (u64 row_start, u32 n_rows, u32 first_page)
delvec       u32 n_deleted + row bitmap (paper: "metadata in the file
             footer to indicate which rows are marked for deletion")
checksums    num_pages leaf hashes + num_rgs group hashes + root (the
             Fig 2 Merkle tree, at fixed offsets for in-place update)
schema       names + logical types; ONLY touched when the full schema
             is requested — projection never parses it
===========  ========================================================

:class:`FooterView` answers column lookups with O(log n_cols) fixed-
offset ``struct.unpack_from`` probes and never materializes per-column
objects — this is what keeps Fig 5's Bullion line flat while the
Parquet-style footer (``repro.baseline``) deserializes everything.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.schema import (
    Field,
    LogicalType,
    PhysicalColumn,
    PhysicalType,
    Primitive,
    Schema,
)
from repro.util.bitio import ByteWriter
from repro.util.hashing import combine_hashes, hash64

MAGIC = b"BULN"
FOOTER_MAGIC = b"BFTR"
VERSION = 1

_HEADER_FMT = "<4sIQIIIB3x"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)  # 32
_N_SECTIONS = 9
_SECTION_FMT = "<" + "QQ" * _N_SECTIONS
_SECTION_SIZE = struct.calcsize(_SECTION_FMT)  # 144
HEADER_TOTAL = _HEADER_SIZE + _SECTION_SIZE

_COLMAP_FMT = "<QI"
_COLMAP_SIZE = struct.calcsize(_COLMAP_FMT)  # 12
_COLDESC_FMT = "<BBHI"
_COLDESC_SIZE = struct.calcsize(_COLDESC_FMT)  # 8
_CHUNK_FMT = "<QQII"
_CHUNK_SIZE = struct.calcsize(_CHUNK_FMT)  # 24
_PAGE_FMT = "<QII"
_PAGE_SIZE = struct.calcsize(_PAGE_FMT)  # 16
_RG_FMT = "<QII"
_RG_SIZE = struct.calcsize(_RG_FMT)  # 16

(
    SEC_COLMAP,
    SEC_COLDESC,
    SEC_CHUNKINDEX,
    SEC_PAGEINDEX,
    SEC_RGINDEX,
    SEC_DELVEC,
    SEC_CHECKSUMS,
    SEC_SCHEMA,
    SEC_STATS,
) = range(_N_SECTIONS)


@dataclass
class ChunkMeta:
    """One (column, row-group) data extent."""

    offset: int
    size: int
    first_page: int
    n_pages: int


@dataclass
class PageMeta:
    offset: int
    alloc_len: int
    n_values: int


@dataclass
class RowGroupMeta:
    row_start: int
    n_rows: int
    first_page: int


_STATS_FMT = "<Bxxxxxxxdd"  # has_stats flag (8-byte aligned), min, max
_STATS_SIZE = struct.calcsize(_STATS_FMT)  # 24


@dataclass(frozen=True)
class ChunkStats:
    """min/max of one (column, row-group) extent, for predicate pruning."""

    min_value: float
    max_value: float


@dataclass
class FooterData:
    """Everything the writer knows, pre-serialization."""

    num_rows: int
    compliance_level: int
    columns: list[PhysicalColumn]
    logical_fields: list[Field]
    chunks: dict[tuple[int, int], ChunkMeta]  # (col_idx, rg) -> meta
    pages: list[PageMeta]
    row_groups: list[RowGroupMeta]
    page_hashes: list[int]
    group_hashes: list[int]
    root_hash: int
    encoding_hints: list[int] = field(default_factory=list)
    #: optional (col_idx, rg) -> ChunkStats for numeric columns
    chunk_stats: dict[tuple[int, int], "ChunkStats"] = field(
        default_factory=dict
    )

    def serialize(self) -> bytes:
        num_cols = len(self.columns)
        num_rgs = len(self.row_groups)
        num_pages = len(self.pages)
        hints = self.encoding_hints or [0] * num_cols

        colmap = ByteWriter()
        entries = sorted(
            (hash64(col.name), idx) for idx, col in enumerate(self.columns)
        )
        for h, idx in entries:
            colmap.write(struct.pack(_COLMAP_FMT, h, idx))

        coldesc = ByteWriter()
        for idx, col in enumerate(self.columns):
            coldesc.write(
                struct.pack(
                    _COLDESC_FMT,
                    int(col.type.primitive),
                    col.type.list_depth,
                    0,
                    hints[idx],
                )
            )

        chunkindex = ByteWriter()
        for c in range(num_cols):
            for g in range(num_rgs):
                meta = self.chunks[(c, g)]
                chunkindex.write(
                    struct.pack(
                        _CHUNK_FMT,
                        meta.offset,
                        meta.size,
                        meta.first_page,
                        meta.n_pages,
                    )
                )

        pageindex = ByteWriter()
        for p in self.pages:
            pageindex.write(
                struct.pack(_PAGE_FMT, p.offset, p.alloc_len, p.n_values)
            )

        rgindex = ByteWriter()
        for rg in self.row_groups:
            rgindex.write(
                struct.pack(_RG_FMT, rg.row_start, rg.n_rows, rg.first_page)
            )

        delvec = ByteWriter()
        delvec.write_u32(0)  # deleted-row count
        delvec.write(b"\x00" * ((self.num_rows + 7) // 8))

        checks = ByteWriter()
        for h in self.page_hashes:
            checks.write_u64(h)
        for h in self.group_hashes:
            checks.write_u64(h)
        checks.write_u64(self.root_hash)

        schema = ByteWriter()
        schema.write_u32(len(self.logical_fields))
        for f in self.logical_fields:
            name = f.name.encode()
            type_str = str(f.type).encode()
            schema.write_u16(len(name))
            schema.write(name)
            schema.write_u16(len(type_str))
            schema.write(type_str)
        schema.write_u32(num_cols)
        for col in self.columns:
            name = col.name.encode()
            schema.write_u16(len(name))
            schema.write(name)
            schema.write_u8(int(col.type.primitive))
            schema.write_u8(col.type.list_depth)
            src = col.source_field.encode()
            schema.write_u16(len(src))
            schema.write(src)

        stats = ByteWriter()
        if self.chunk_stats:
            for c in range(num_cols):
                for g in range(num_rgs):
                    entry = self.chunk_stats.get((c, g))
                    if entry is None:
                        stats.write(struct.pack(_STATS_FMT, 0, 0.0, 0.0))
                    else:
                        stats.write(
                            struct.pack(
                                _STATS_FMT, 1, entry.min_value, entry.max_value
                            )
                        )

        sections = [
            colmap.getvalue(),
            coldesc.getvalue(),
            chunkindex.getvalue(),
            pageindex.getvalue(),
            rgindex.getvalue(),
            delvec.getvalue(),
            checks.getvalue(),
            schema.getvalue(),
            stats.getvalue(),
        ]
        offsets = []
        pos = HEADER_TOTAL
        for sec in sections:
            offsets.append((pos, len(sec)))
            pos += len(sec)
        header = struct.pack(
            _HEADER_FMT,
            FOOTER_MAGIC,
            VERSION,
            self.num_rows,
            num_cols,
            num_rgs,
            num_pages,
            self.compliance_level,
        )
        header += struct.pack(
            _SECTION_FMT, *(x for pair in offsets for x in pair)
        )
        return header + b"".join(sections)


class FooterError(ValueError):
    """Raised on malformed or corrupt footers."""


class FooterBuilder:
    """Incremental footer assembly for the streaming writer.

    The one-shot writer used to accumulate every ``PageMeta`` and page
    payload before building the Merkle tree and ``FooterData`` in one
    go. The builder instead ingests metadata group by group: page
    *hashes* (never payloads) accumulate as Merkle leaves, each group's
    node hash is folded as the group closes, and :meth:`finish` derives
    the root and emits ``FooterData`` — so a writer's live state is
    O(metadata), not O(data).
    """

    def __init__(self, compliance_level: int) -> None:
        self.compliance_level = compliance_level
        self.pages: list[PageMeta] = []
        self.page_hashes: list[int] = []
        self.group_hashes: list[int] = []
        self.row_groups: list[RowGroupMeta] = []
        self.chunks: dict[tuple[int, int], ChunkMeta] = {}
        self.chunk_stats: dict[tuple[int, int], ChunkStats] = {}
        self.num_rows = 0
        self._group_first_page: int | None = None

    @property
    def num_groups(self) -> int:
        return len(self.row_groups)

    @property
    def next_page_index(self) -> int:
        return len(self.pages)

    def begin_row_group(self) -> int:
        """Open the next row group; returns its starting row."""
        if self._group_first_page is not None:
            raise FooterError("previous row group not closed")
        self._group_first_page = len(self.pages)
        return self.num_rows

    def add_page(self, meta: PageMeta, payload_hash: int) -> None:
        if self._group_first_page is None:
            raise FooterError("add_page outside a row group")
        self.pages.append(meta)
        self.page_hashes.append(payload_hash)

    def add_chunk(
        self,
        col_idx: int,
        meta: ChunkMeta,
        stats: ChunkStats | None = None,
    ) -> None:
        if self._group_first_page is None:
            raise FooterError("add_chunk outside a row group")
        g = len(self.row_groups)
        self.chunks[(col_idx, g)] = meta
        if stats is not None:
            self.chunk_stats[(col_idx, g)] = stats

    def end_row_group(self, n_rows: int) -> None:
        first = self._group_first_page
        if first is None:
            raise FooterError("no row group open")
        self.row_groups.append(RowGroupMeta(self.num_rows, n_rows, first))
        self.group_hashes.append(combine_hashes(self.page_hashes[first:]))
        self.num_rows += n_rows
        self._group_first_page = None

    def finish(
        self,
        columns: list[PhysicalColumn],
        logical_fields: list[Field],
    ) -> FooterData:
        if self._group_first_page is not None:
            raise FooterError("row group still open at finish")
        return FooterData(
            num_rows=self.num_rows,
            compliance_level=self.compliance_level,
            columns=columns,
            logical_fields=logical_fields,
            chunks=self.chunks,
            pages=self.pages,
            row_groups=self.row_groups,
            page_hashes=self.page_hashes,
            group_hashes=self.group_hashes,
            root_hash=combine_hashes(self.group_hashes),
            chunk_stats=self.chunk_stats,
        )


class FooterView:
    """Lazy, probe-based view over serialized footer bytes.

    Construction parses only the fixed 176-byte header. Every other
    answer is a fixed-offset ``struct.unpack_from`` — the "immediate
    buffer value reads without deserialization" of §2.3.
    """

    def __init__(self, data: bytes, file_offset: int = 0) -> None:
        if len(data) < HEADER_TOTAL:
            raise FooterError(f"footer too small ({len(data)} bytes)")
        (
            magic,
            version,
            self.num_rows,
            self.num_columns,
            self.num_row_groups,
            self.num_pages,
            self.compliance_level,
        ) = struct.unpack_from(_HEADER_FMT, data, 0)
        if magic != FOOTER_MAGIC:
            raise FooterError(f"bad footer magic {magic!r}")
        if version != VERSION:
            raise FooterError(f"unsupported footer version {version}")
        sections = struct.unpack_from(_SECTION_FMT, data, _HEADER_SIZE)
        self._sections = [
            (sections[2 * i], sections[2 * i + 1]) for i in range(_N_SECTIONS)
        ]
        self._data = data
        self.file_offset = file_offset

    # -- column lookup (the Fig 5 hot path) ----------------------------
    def find_column(self, name: str) -> int:
        """Binary-search the sorted hash map; O(log n) probes."""
        target = hash64(name)
        base, _length = self._sections[SEC_COLMAP]
        lo, hi = 0, self.num_columns
        while lo < hi:
            mid = (lo + hi) // 2
            h = struct.unpack_from("<Q", self._data, base + mid * _COLMAP_SIZE)[0]
            if h < target:
                lo = mid + 1
            else:
                hi = mid
        while lo < self.num_columns:
            h, idx = struct.unpack_from(
                _COLMAP_FMT, self._data, base + lo * _COLMAP_SIZE
            )
            if h != target:
                break
            return idx  # hash collisions are resolved by the caller rarely
        raise KeyError(f"column {name!r} not in file")

    def column_type(self, col_idx: int) -> PhysicalType:
        base, _ = self._sections[SEC_COLDESC]
        prim, depth, _flags, _hint = struct.unpack_from(
            _COLDESC_FMT, self._data, base + col_idx * _COLDESC_SIZE
        )
        return PhysicalType(Primitive(prim), depth)

    def chunk(self, col_idx: int, rg: int) -> ChunkMeta:
        base, _ = self._sections[SEC_CHUNKINDEX]
        pos = base + (col_idx * self.num_row_groups + rg) * _CHUNK_SIZE
        offset, size, first_page, n_pages = struct.unpack_from(
            _CHUNK_FMT, self._data, pos
        )
        return ChunkMeta(offset, size, first_page, n_pages)

    def page(self, page_id: int) -> PageMeta:
        base, _ = self._sections[SEC_PAGEINDEX]
        offset, alloc_len, n_values = struct.unpack_from(
            _PAGE_FMT, self._data, base + page_id * _PAGE_SIZE
        )
        return PageMeta(offset, alloc_len, n_values)

    def row_group(self, rg: int) -> RowGroupMeta:
        base, _ = self._sections[SEC_RGINDEX]
        row_start, n_rows, first_page = struct.unpack_from(
            _RG_FMT, self._data, base + rg * _RG_SIZE
        )
        return RowGroupMeta(row_start, n_rows, first_page)

    def pages_per_group(self) -> list[int]:
        counts = []
        for g in range(self.num_row_groups):
            start = self.row_group(g).first_page
            end = (
                self.row_group(g + 1).first_page
                if g + 1 < self.num_row_groups
                else self.num_pages
            )
            counts.append(end - start)
        return counts

    def chunk_stats(self, col_idx: int, rg: int) -> "ChunkStats | None":
        """Per-chunk min/max for predicate pruning (None when absent)."""
        base, length = self._sections[SEC_STATS]
        if length == 0:
            return None
        pos = base + (col_idx * self.num_row_groups + rg) * _STATS_SIZE
        has_stats, min_value, max_value = struct.unpack_from(
            _STATS_FMT, self._data, pos
        )
        if not has_stats:
            return None
        return ChunkStats(min_value, max_value)

    def column_stats_range(self, col_idx: int) -> "ChunkStats | None":
        """File-level [min, max] of one column, folded over its chunks.

        The aggregation writers publish into catalog manifests for
        file-level pruning. Chunks without stats are skipped: for a
        numeric column those are empty or all-NaN chunks, and NaN rows
        are already outside every interval (the evaluator's
        ``maybe_nan`` handles them). Returns ``None`` when no chunk
        carries stats — such a file is never pruned.
        """
        found: ChunkStats | None = None
        for g in range(self.num_row_groups):
            stats = self.chunk_stats(col_idx, g)
            if stats is None:
                continue
            if found is None:
                found = stats
            else:
                found = ChunkStats(
                    min(found.min_value, stats.min_value),
                    max(found.max_value, stats.max_value),
                )
        return found

    # -- deletion vector ------------------------------------------------
    def deleted_count(self) -> int:
        base, _ = self._sections[SEC_DELVEC]
        return struct.unpack_from("<I", self._data, base)[0]

    def is_deleted(self, row: int) -> bool:
        base, _ = self._sections[SEC_DELVEC]
        byte = self._data[base + 4 + row // 8]
        return bool((byte >> (row % 8)) & 1)

    def deletion_bitmap(self):
        """Boolean array over all rows (numpy-unpacked once)."""
        import numpy as np

        base, length = self._sections[SEC_DELVEC]
        raw = self._data[base + 4 : base + length]
        bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), bitorder="little"
        )
        return bits[: self.num_rows].astype(np.bool_)

    def delvec_file_range(self) -> tuple[int, int]:
        """Absolute device byte range of the deletion-vector section."""
        base, length = self._sections[SEC_DELVEC]
        return self.file_offset + base, length

    # -- checksums (Merkle tree, fixed offsets) -------------------------
    def page_hash(self, page_id: int) -> int:
        base, _ = self._sections[SEC_CHECKSUMS]
        return struct.unpack_from("<Q", self._data, base + page_id * 8)[0]

    def group_hash(self, rg: int) -> int:
        base, _ = self._sections[SEC_CHECKSUMS]
        pos = base + (self.num_pages + rg) * 8
        return struct.unpack_from("<Q", self._data, pos)[0]

    def root_hash(self) -> int:
        base, _ = self._sections[SEC_CHECKSUMS]
        pos = base + (self.num_pages + self.num_row_groups) * 8
        return struct.unpack_from("<Q", self._data, pos)[0]

    def checksum_file_offsets(self) -> tuple[int, int, int]:
        """(pages_base, groups_base, root) absolute device offsets."""
        base, _ = self._sections[SEC_CHECKSUMS]
        pages_base = self.file_offset + base
        groups_base = pages_base + self.num_pages * 8
        root = groups_base + self.num_row_groups * 8
        return pages_base, groups_base, root

    # -- schema (cold path; parsed only on request) ----------------------
    def schema(self) -> Schema:
        base, _ = self._sections[SEC_SCHEMA]
        pos = base
        (n_fields,) = struct.unpack_from("<I", self._data, pos)
        pos += 4
        fields = []
        for _ in range(n_fields):
            (name_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2
            name = self._data[pos : pos + name_len].decode()
            pos += name_len
            (type_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2
            type_str = self._data[pos : pos + type_len].decode()
            pos += type_len
            fields.append(Field(name, LogicalType.parse(type_str)))
        return Schema(fields)

    def schema_fingerprint(self) -> int:
        """Order-sensitive 64-bit fingerprint of the physical layout.

        Two files share a fingerprint iff they have the same physical
        columns, in the same order, with the same types — the catalog's
        manifest-level compatibility check for append/merge.
        """
        desc = ";".join(
            f"{c.name}:{c.type}" for c in self.physical_columns()
        )
        return hash64(desc)

    def physical_columns(self) -> list[PhysicalColumn]:
        base, _ = self._sections[SEC_SCHEMA]
        pos = base
        (n_fields,) = struct.unpack_from("<I", self._data, pos)
        pos += 4
        for _ in range(n_fields):  # skip logical fields
            (name_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2 + name_len
            (type_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2 + type_len
        (n_cols,) = struct.unpack_from("<I", self._data, pos)
        pos += 4
        out = []
        for _ in range(n_cols):
            (name_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2
            name = self._data[pos : pos + name_len].decode()
            pos += name_len
            prim = self._data[pos]
            depth = self._data[pos + 1]
            pos += 2
            (src_len,) = struct.unpack_from("<H", self._data, pos)
            pos += 2
            src = self._data[pos : pos + src_len].decode()
            pos += src_len
            out.append(
                PhysicalColumn(name, PhysicalType(Primitive(prim), depth), src)
            )
        return out
