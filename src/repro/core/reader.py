"""BullionReader: scan-oriented reads over a Bullion file.

The access path follows §2.3 exactly: one ``pread`` for the footer tail,
one for the footer, then a binary map scan per requested column and a
single coalesced ``pread`` per (column, row group) chunk. Metadata cost
is independent of how many *other* columns the file holds — the Fig 5
property.

Reads are built around :class:`Scan` — a lazy batch iterator that fuses

* row-group pruning (footer min/max statistics via a :class:`Predicate`),
* column projection,
* deletion-vector filtering,
* §2.4 quantization widening,

and fetches chunks concurrently through a ``ThreadPoolExecutor`` with a
small per-reader LRU chunk cache. ``project()`` is the eager one-shot
wrapper over a serial scan.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.footer import MAGIC, FooterView
from repro.core.page import PAGE_HEADER_SIZE, PageHeader
from repro.core.schema import Primitive, Schema, STORAGE_DTYPES
from repro.core.table import Table, concat_tables
from repro.encodings import decode_blob
from repro.iosim import Storage
from repro.util.hashing import hash_bytes

_TAIL_SIZE = 4 + len(MAGIC)


class BullionFormatError(ValueError):
    """Malformed file, bad magic, or checksum mismatch."""


@dataclass(frozen=True)
class Predicate:
    """Range predicate over one numeric column, for row-group pruning.

    Pruning is conservative and group-granular: kept groups may still
    contain rows outside the range (exactly the semantics of
    ``prune_row_groups``), but groups whose footer min/max statistics
    cannot satisfy the range are skipped with zero data I/O.
    """

    column: str
    min_value: float | None = None
    max_value: float | None = None


class ChunkCache:
    """Tiny thread-safe LRU over raw (column, row-group) chunk bytes."""

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple[int, int]) -> bytes | None:
        with self._lock:
            raw = self._entries.get(key)
            if raw is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return raw

    def put(self, key: tuple[int, int], raw: bytes) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = raw
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class Scan:
    """Lazy, optionally parallel batch iterator over a Bullion file.

    Created via :meth:`BullionReader.scan`. Iterating yields
    :class:`Table` batches; ``to_table()`` materializes the whole
    result. With ``max_workers > 1``, the chunks of up to
    ``prefetch_groups`` row groups ahead of the consumer are fetched
    concurrently by a thread pool (positional reads are independent),
    while decode and assembly stay on the consuming thread.
    """

    def __init__(
        self,
        reader: "BullionReader",
        columns: list[str],
        *,
        predicate: Predicate | None = None,
        row_groups: list[int] | None = None,
        batch_size: int | None = None,
        drop_deleted: bool = True,
        widen_quantized: bool = False,
        max_workers: int = 4,
        prefetch_groups: int = 2,
    ) -> None:
        self._reader = reader
        footer = reader.footer
        #: (name, col_idx, ptype) resolved up front so bad names fail fast
        self._cols = []
        for name in columns:
            col_idx = footer.find_column(name)
            self._cols.append((name, col_idx, footer.column_type(col_idx)))
        groups = (
            list(range(footer.num_row_groups))
            if row_groups is None
            else list(row_groups)
        )
        if predicate is not None:
            kept = set(
                reader.prune_row_groups(
                    predicate.column, predicate.min_value, predicate.max_value
                )
            )
            groups = [g for g in groups if g in kept]
        self._groups = groups
        self._batch_size = batch_size
        self._widen = widen_quantized
        self._max_workers = max_workers
        self._prefetch_groups = max(1, prefetch_groups)
        self._deleted = None
        if drop_deleted and footer.deleted_count():
            self._deleted = footer.deletion_bitmap()

    @property
    def row_groups(self) -> list[int]:
        """The row groups this scan will touch, post-pruning."""
        return list(self._groups)

    # -- iteration ------------------------------------------------------
    def __iter__(self):
        if self._batch_size is None:
            yield from self._group_tables()
            return
        size = self._batch_size
        if size <= 0:
            raise ValueError("batch_size must be positive")
        carry: Table | None = None
        for group_table in self._group_tables():
            if carry is not None:
                group_table = concat_tables([carry, group_table])
                carry = None
            pos = 0
            while pos + size <= group_table.num_rows:
                yield group_table.slice(pos, pos + size)
                pos += size
            if pos < group_table.num_rows:
                carry = group_table.slice(pos, group_table.num_rows)
        if carry is not None and carry.num_rows:
            yield carry

    def to_table(self) -> Table:
        """Materialize the scan into one table."""
        if not self._cols:
            return Table({})
        tables = list(self._group_tables())
        if not tables:
            # every group pruned away: empty, but correctly typed
            return Table(
                {
                    name: _cast_to_storage(_concat([], ptype), ptype)
                    for name, _idx, ptype in self._cols
                }
            )
        return concat_tables(tables)

    # -- internals ------------------------------------------------------
    def _group_tables(self):
        groups = self._groups
        n_fetches = len(groups) * len(self._cols)
        if self._max_workers > 1 and n_fetches > 1:
            yield from self._group_tables_parallel()
            return
        for g in groups:
            raws = [
                self._reader._fetch_chunk(col_idx, g)
                for _name, col_idx, _pt in self._cols
            ]
            yield self._assemble(g, raws)

    def _group_tables_parallel(self):
        groups = self._groups
        reader = self._reader
        window = self._prefetch_groups
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures: dict[tuple[int, int], object] = {}
            submitted = 0

            def submit_through(limit: int) -> None:
                nonlocal submitted
                while submitted < min(limit, len(groups)):
                    g = groups[submitted]
                    # keyed by projection position, not col_idx: the
                    # same column may legitimately appear twice
                    for pos, (_name, col_idx, _pt) in enumerate(self._cols):
                        futures[(submitted, pos)] = pool.submit(
                            reader._fetch_chunk, col_idx, g
                        )
                    submitted += 1

            submit_through(1 + window)
            for i, g in enumerate(groups):
                raws = [
                    futures.pop((i, pos)).result()
                    for pos in range(len(self._cols))
                ]
                submit_through(i + 2 + window)
                yield self._assemble(g, raws)

    def _assemble(self, g: int, raws: list[bytes]) -> Table:
        reader = self._reader
        out: dict[str, object] = {}
        for (name, col_idx, ptype), raw in zip(self._cols, raws):
            parts = reader._decode_chunk(raw, col_idx, g)
            values = _concat([parts], ptype)
            values = _cast_to_storage(values, ptype)
            if self._widen:
                values = _widen_quantized(values, ptype)
            out[name] = values
        table = Table(out)
        if self._deleted is not None and table.num_columns:
            rg = reader.footer.row_group(g)
            keep = ~self._deleted[rg.row_start : rg.row_start + rg.n_rows]
            table = table.take_mask(keep)
        return table


class BullionReader:
    """Read-side API: open, scan, project, verify."""

    def __init__(
        self, storage: Storage, chunk_cache_size: int = 32
    ) -> None:
        self._storage = storage
        if storage.size < _TAIL_SIZE:
            raise BullionFormatError(
                f"not a Bullion file: {storage.size} bytes is smaller "
                f"than the {_TAIL_SIZE}-byte tail"
            )
        tail = storage.pread(storage.size - _TAIL_SIZE, _TAIL_SIZE)
        (footer_len,) = struct.unpack_from("<I", tail, 0)
        if tail[4:] != MAGIC:
            raise BullionFormatError(f"bad trailing magic {tail[4:]!r}")
        footer_offset = storage.size - _TAIL_SIZE - footer_len
        footer_bytes = storage.pread(footer_offset, footer_len)
        self.footer = FooterView(footer_bytes, file_offset=footer_offset)
        #: raw chunk LRU shared by every scan from this reader; assumes
        #: the file is immutable for the reader's lifetime — reopen (or
        #: ``invalidate_cache()``) after in-place deletions
        self.chunk_cache = ChunkCache(chunk_cache_size)

    # -- metadata -------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.footer.num_rows

    @property
    def num_columns(self) -> int:
        return self.footer.num_columns

    @property
    def live_rows(self) -> int:
        """Rows that survive deletion filtering (the manifest stat)."""
        return self.footer.num_rows - self.footer.deleted_count()

    def schema(self) -> Schema:
        return self.footer.schema()

    def schema_fingerprint(self) -> int:
        """See :meth:`FooterView.schema_fingerprint`."""
        return self.footer.schema_fingerprint()

    def column_names(self) -> list[str]:
        return [c.name for c in self.footer.physical_columns()]

    def invalidate_cache(self) -> None:
        self.chunk_cache.clear()

    # -- data -----------------------------------------------------------
    def scan(
        self,
        columns: list[str],
        *,
        predicate: Predicate | None = None,
        row_groups: list[int] | None = None,
        batch_size: int | None = None,
        drop_deleted: bool = True,
        widen_quantized: bool = False,
        max_workers: int = 4,
        prefetch_groups: int = 2,
    ) -> Scan:
        """Lazy batch iterator over a feature projection.

        ``batch_size=None`` yields one batch per row group; otherwise
        batches of exactly ``batch_size`` rows (last one may be short).
        ``max_workers <= 1`` forces serial chunk fetches.
        """
        return Scan(
            self,
            columns,
            predicate=predicate,
            row_groups=row_groups,
            batch_size=batch_size,
            drop_deleted=drop_deleted,
            widen_quantized=widen_quantized,
            max_workers=max_workers,
            prefetch_groups=prefetch_groups,
        )

    def project(
        self,
        columns: list[str],
        drop_deleted: bool = True,
        row_groups: list[int] | None = None,
        widen_quantized: bool = False,
    ) -> Table:
        """Eagerly read the named columns (the ML feature projection).

        A thin wrapper over a serial :meth:`scan` so accounting-based
        experiments see deterministic I/O ordering.

        ``widen_quantized=True`` dequantizes §2.4 storage-quantized
        columns (FP16/BF16/FP8) back to float32 on the way out; the
        default returns the stored representation, which trainers with
        native low-precision support consume directly ("usable directly
        in training and serving").
        """
        return self.scan(
            columns,
            row_groups=row_groups,
            drop_deleted=drop_deleted,
            widen_quantized=widen_quantized,
            max_workers=0,
        ).to_table()

    def read_column(self, name: str, drop_deleted: bool = True):
        return self.project([name], drop_deleted=drop_deleted).column(name)

    def prune_row_groups(
        self,
        column: str,
        min_value: float | None = None,
        max_value: float | None = None,
    ) -> list[int]:
        """Row groups whose [min, max] stats may satisfy the predicate.

        Zero data I/O: answered entirely from the footer's stats
        section. Groups without statistics are conservatively kept.
        With quality-presorted files (§2.5) this is what turns a
        quality-threshold scan into a prefix read.
        """
        footer = self.footer
        col_idx = footer.find_column(column)
        kept = []
        for g in range(footer.num_row_groups):
            stats = footer.chunk_stats(col_idx, g)
            if stats is None:
                kept.append(g)
                continue
            if min_value is not None and stats.max_value < min_value:
                continue
            if max_value is not None and stats.min_value > max_value:
                continue
            kept.append(g)
        return kept

    def _fetch_chunk(self, col_idx: int, rg: int) -> bytes:
        """One coalesced pread for a (column, row-group) extent."""
        key = (col_idx, rg)
        raw = self.chunk_cache.get(key)
        if raw is not None:
            return raw
        chunk = self.footer.chunk(col_idx, rg)
        raw = self._storage.pread(chunk.offset, chunk.size)
        self.chunk_cache.put(key, raw)
        return raw

    def _decode_chunk(self, raw: bytes, col_idx: int, rg: int):
        """Split a chunk's raw bytes into decoded per-page value runs."""
        footer = self.footer
        chunk = footer.chunk(col_idx, rg)
        values_parts = []
        pos = 0
        rg_meta = footer.row_group(rg)
        page_row = rg_meta.row_start
        for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
            header = PageHeader.unpack(raw, pos)
            payload = raw[
                pos + PAGE_HEADER_SIZE : pos + PAGE_HEADER_SIZE + header.payload_len
            ]
            values = decode_blob(payload)
            meta = footer.page(pid)
            if header.n_values != meta.n_values:
                values = self._re_expand(values, pid, page_row, meta.n_values)
            values_parts.append(values)
            pos += PAGE_HEADER_SIZE + header.alloc_len
            page_row += meta.n_values
        return values_parts

    def _read_chunk(self, col_idx: int, rg: int):
        return self._decode_chunk(self._fetch_chunk(col_idx, rg), col_idx, rg)

    def _re_expand(self, stored, pid: int, page_row: int, original: int):
        """Re-align a compacted page using the deletion vector.

        After a compacting deletion (e.g. RLE), the page stores only the
        surviving values; the deletion vector "details the valid values
        and their offsets in a page ... misaligned values are restored
        using the deletion vector" (§2.1).
        """
        bitmap = self.footer.deletion_bitmap()
        local_deleted = bitmap[page_row : page_row + original]
        if isinstance(stored, np.ndarray):
            full = np.zeros(original, dtype=stored.dtype)
            full[~local_deleted] = stored
            return full
        full_list: list = [b"" if not stored or isinstance(stored[0], bytes) else
                           np.zeros(0, dtype=np.int64)] * original
        it = iter(stored)
        for i in np.flatnonzero(~local_deleted):
            full_list[int(i)] = next(it)
        return full_list

    # -- integrity (Fig 2) ------------------------------------------------
    def verify(self, page_ids: list[int] | None = None) -> bool:
        """Check page payload hashes + Merkle structure consistency."""
        footer = self.footer
        ids = page_ids if page_ids is not None else range(footer.num_pages)
        for pid in ids:
            meta = footer.page(pid)
            raw = self._storage.pread(
                meta.offset, PAGE_HEADER_SIZE + meta.alloc_len
            )
            header = PageHeader.unpack(raw)
            payload = raw[
                PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + header.payload_len
            ]
            if hash_bytes(payload) != footer.page_hash(pid):
                return False
        from repro.core.checksum import MerkleTree

        tree = MerkleTree.from_leaves(
            [footer.page_hash(p) for p in range(footer.num_pages)],
            footer.pages_per_group(),
        )
        return (
            tree.group_hashes
            == [footer.group_hash(g) for g in range(footer.num_row_groups)]
            and tree.root == footer.root_hash()
        )


def _concat(parts: list[list], ptype) -> object:
    flat = [v for part in parts for v in part]
    if not flat:
        # empty projection: the container/dtype must still match the
        # column's physical type (an empty float or string column
        # round-trips as such, not as int64 zeros)
        if ptype.list_depth > 0 or ptype.primitive in (
            Primitive.STRING,
            Primitive.BINARY,
        ):
            return []
        return np.zeros(0, dtype=STORAGE_DTYPES[ptype.primitive])
    if isinstance(flat[0], np.ndarray) and ptype.list_depth == 0:
        return np.concatenate(flat)
    out: list = []
    for v in flat:
        out.extend(v)
    return out


def _widen_quantized(values, ptype):
    """Dequantize FP16/BF16/FP8 storage to float32 (§2.4 read path)."""
    from repro.quantization import FloatFormat, dequantize

    fmt_by_primitive = {
        Primitive.FLOAT16: FloatFormat.FP16,
        Primitive.BFLOAT16: FloatFormat.BF16,
        Primitive.FLOAT8_E4M3: FloatFormat.FP8_E4M3,
        Primitive.FLOAT8_E5M2: FloatFormat.FP8_E5M2,
    }
    fmt = fmt_by_primitive.get(ptype.primitive)
    if fmt is None or ptype.list_depth != 0:
        return values
    return dequantize(np.asarray(values), fmt)


def _cast_to_storage(values, ptype):
    prim = ptype.primitive
    if ptype.list_depth > 0:
        if prim in (Primitive.STRING, Primitive.BINARY):
            return values
        dtype = STORAGE_DTYPES.get(prim, np.int64)
        if ptype.list_depth == 1 and isinstance(values, list):
            return [np.asarray(v).astype(dtype, copy=False) for v in values]
        return values
    if prim in (Primitive.STRING, Primitive.BINARY):
        return values
    dtype = STORAGE_DTYPES[prim]
    arr = np.asarray(values)
    if arr.dtype != dtype:
        if dtype in (np.uint16, np.uint8):  # bf16 / fp8 payloads
            arr = arr.astype(np.int64).astype(dtype)
        else:
            arr = arr.astype(dtype)
    return arr
