"""BullionReader: scan-oriented reads over a Bullion file.

The access path follows §2.3: one speculative ``pread`` covers the
footer tail *and* (for typical footers) the footer itself — a single
metadata round trip per file — then a binary map scan per requested
column locates the (column, row group) chunk extents. Metadata cost is
independent of how many *other* columns the file holds — the Fig 5
property.

Chunk fetches go through a batch planner: the extents a scan step
needs are claimed from the chunk cache with single-flight dedup, the
misses are sorted and **coalesced** — adjacent (or, with a configured
gap threshold, near-adjacent) extents merge into one ranged ``pread``
whose result is sliced back into per-chunk bytes. On local devices
this only removes redundant syscalls; on :class:`~repro.iosim.ObjectStorage`,
where every request pays a fixed round trip, it is the difference
between per-chunk and per-row-group request counts.

Reads are built around :class:`Scan` — a lazy batch iterator that fuses

* row-group pruning (footer zone maps — per-chunk min/max statistics —
  under the conservative interval evaluator of :mod:`repro.expr`),
* exact decode-time row filtering (``where=`` expressions evaluated
  vectorized over decoded batches) with **late materialization**:
  filter columns are fetched and decoded first, and the remaining
  projected chunks are fetched only for row groups with surviving
  rows,
* column projection,
* deletion-vector filtering,
* §2.4 quantization widening,

and fetches chunks concurrently through a ``ThreadPoolExecutor`` with a
small per-reader LRU chunk cache. ``project()`` is the eager one-shot
wrapper over a serial scan. :class:`ScanStats` counts what each layer
skipped (groups, rows, chunks).
"""

from __future__ import annotations

import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.chunk_cache import TieredChunkCache, storage_identity
from repro.core.footer import MAGIC, FooterView
from repro.core.page import PAGE_HEADER_SIZE, PageHeader
from repro.core.schema import Primitive, Schema, STORAGE_DTYPES, stats_kind
from repro.core.table import Table, concat_tables
from repro.encodings import decode_blob
from repro.expr import (
    Expr,
    TriState,
    as_expr,
    evaluate as evaluate_expr,
    evaluate_interval,
    interval_from_stats,
)
from repro.iosim import Storage
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import (
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    CHUNK_FETCH_SECONDS,
    READER_OPENS,
    SCAN_COALESCE_WASTE_BYTES,
    SCAN_COALESCED_CHUNKS,
    SCAN_COALESCED_REQUESTS,
    SCAN_MIRROR,
    backend_label,
)
from repro.util.hashing import hash_bytes

_TAIL_SIZE = 4 + len(MAGIC)

#: Bytes speculatively read from the end of the file at open: one
#: request covers the 8-byte tail and, for typical footers, the whole
#: footer — a single metadata round trip on object stores. Footers
#: larger than this cost one extra pread, exactly the historical shape.
_TAIL_SPECULATION = 4096

#: Upper bound on one coalesced ranged read (further capped by the
#: storage's own ``max_request_bytes`` when it advertises one).
_MAX_RUN_BYTES = 8 << 20


class BullionFormatError(ValueError):
    """Malformed file, bad magic, or checksum mismatch."""


@dataclass(frozen=True)
class Predicate:
    """Legacy single-column range — a thin constructor shim over the
    expression AST (:mod:`repro.expr`).

    Kept for the original ``scan(predicate=...)`` surface, whose
    semantics are *pruning only* and group-granular: kept groups may
    still contain rows outside the range (exactly the semantics of
    ``prune_row_groups``), but groups whose footer min/max statistics
    cannot satisfy the range are skipped with zero data I/O. For exact
    row filtering pass ``where=`` instead — ``Predicate(c, lo, hi)``
    is ``(col(c) >= lo) & (col(c) <= hi)`` with full row semantics.
    """

    column: str
    min_value: float | None = None
    max_value: float | None = None

    def to_expr(self) -> Expr:
        """The equivalent AST expression (inclusive range)."""
        return as_expr(self)


@dataclass
class ScanStats:
    """What each pushdown layer skipped, for one scan (or, when one
    instance is shared across scans, a whole multi-file read).

    Counters accumulate as the scan iterates; a scan consumed twice
    counts twice. ``files_*`` are filled by the catalog layer, which
    prunes whole files from manifest statistics before any open.
    """

    files_scanned: int = 0
    files_pruned: int = 0
    groups_total: int = 0    # candidate groups before zone-map pruning
    groups_pruned: int = 0   # skipped via zone maps: zero data I/O
    groups_scanned: int = 0  # filter columns fetched and decoded
    groups_empty: int = 0    # scanned, zero matches: residual skipped
    rows_pruned: int = 0     # rows inside zone-map-pruned groups
    rows_scanned: int = 0    # rows whose filter columns were decoded
    rows_matched: int = 0    # rows surviving the exact filter
    chunks_fetched: int = 0
    chunks_skipped: int = 0  # residual chunks never fetched

    # class attribute, not a dataclass field: instances flip it via
    # ``unmirrored()`` when their counts must stay out of the registry
    _mirror = True

    def bump(self, **deltas: int) -> None:
        """Increment per-call counters *and* the process-wide registry.

        Every organic increment site goes through here, so the global
        ``scan_*`` counter families reconcile exactly with the summed
        per-call stats. Bulk copies between stats objects (e.g.
        ``QueryStats.merge``) stay raw attribute writes — a delta is
        published to the registry exactly once, at its origin.
        """
        for name, n in deltas.items():
            setattr(self, name, getattr(self, name) + n)
        if self._mirror:
            SCAN_MIRROR.bump(deltas)

    @staticmethod
    def unmirrored() -> "ScanStats":
        """Stats that never publish to the registry.

        For *inner* scans whose counts a wrapping layer re-reports
        under its own accounting (e.g. ``ResolvedReader`` counts files
        and groups itself) — mirroring both would double-publish.
        """
        stats = ScanStats()
        stats._mirror = False
        return stats


class ChunkCache:
    """Per-reader LRU over raw (column, row-group) chunk bytes.

    Now a shim over :class:`~repro.core.chunk_cache.TieredChunkCache`
    (memory tier only). The historical entry cap is preserved — the
    eviction sequence is bit-compatible with the old entry-counted LRU
    — and joined by the byte budget it always should have had, so
    memory use no longer scales with chunk size. ``capacity=0``
    disables caching entirely.

    Counters publish to the legacy ``scan_cache_*`` metric families;
    the inner tier is unmirrored so nothing double-counts into the
    shared ``cache_tier_*`` families.
    """

    def __init__(
        self, capacity: int = 32, capacity_bytes: int = 64 << 20
    ) -> None:
        self.capacity = capacity
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._tier = (
            TieredChunkCache(
                capacity_bytes,
                max_entries=capacity,
                name="reader",
                mirror=False,
            )
            if capacity > 0
            else None
        )

    def _hit(self) -> None:
        self.hits += 1
        if obs_metrics.enabled():
            CACHE_HITS.inc()

    def _miss(self) -> None:
        self.misses += 1
        if obs_metrics.enabled():
            CACHE_MISSES.inc()

    def _count_evictions(self, before: int) -> None:
        evicted = self._tier.stats.memory_evictions - before
        if evicted:
            self.evictions += evicted
            if obs_metrics.enabled():
                CACHE_EVICTIONS.inc(evicted)

    def get(self, key: tuple) -> bytes | None:
        if self._tier is None:
            self._miss()
            return None
        raw = self._tier.get(key)
        if raw is None:
            self._miss()
        else:
            self._hit()
        return raw

    def put(self, key: tuple, raw: bytes) -> None:
        if self._tier is None:
            return
        before = self._tier.stats.memory_evictions
        self._tier.put(key, raw)
        self._count_evictions(before)

    # -- single-flight surface (used by the batch fetch planner) --------
    def claim(self, key: tuple) -> tuple[str, object]:
        if self._tier is None:
            self._miss()
            return ("mine", None)  # uncached: every claimer fetches
        kind, val = self._tier.claim(key)
        if kind == "hit":
            self._hit()
        elif kind == "mine":
            self._miss()
        return kind, val

    def fulfill(self, key: tuple, raw: bytes) -> None:
        if self._tier is None:
            return
        before = self._tier.stats.memory_evictions
        self._tier.fulfill(key, raw)
        self._count_evictions(before)

    def abandon(self, key: tuple, error: BaseException | None = None) -> None:
        if self._tier is not None:
            self._tier.abandon(key, error)

    def invalidate_prefix(self, prefix: tuple) -> int:
        if self._tier is None:
            return 0
        return self._tier.invalidate_prefix(prefix)

    def clear(self) -> None:
        if self._tier is not None:
            self._tier.clear()

    def __len__(self) -> int:
        return 0 if self._tier is None else len(self._tier)


class Scan:
    """Lazy, optionally parallel batch iterator over a Bullion file.

    Created via :meth:`BullionReader.scan`. Iterating yields
    :class:`Table` batches; ``to_table()`` materializes the whole
    result. With ``max_workers > 1``, the chunks of up to
    ``prefetch_groups`` row groups ahead of the consumer are fetched
    concurrently by a thread pool (positional reads are independent),
    while decode and assembly stay on the consuming thread.

    With a ``where=`` expression the scan is a two-layer skip machine:
    row groups whose zone maps prove no row can match are dropped at
    construction (zero data I/O, :attr:`stats` counts them), and kept
    groups decode their *filter* columns first — the remaining
    projected chunks are only fetched once at least one row survives
    the exact vectorized mask (late materialization).
    """

    def __init__(
        self,
        reader: "BullionReader",
        columns: list[str],
        *,
        predicate: Predicate | None = None,
        where: Expr | None = None,
        row_groups: list[int] | None = None,
        batch_size: int | None = None,
        drop_deleted: bool = True,
        widen_quantized: bool = False,
        max_workers: int = 4,
        prefetch_groups: int = 2,
        scan_stats: ScanStats | None = None,
    ) -> None:
        self._reader = reader
        footer = reader.footer
        self.stats = scan_stats if scan_stats is not None else ScanStats()
        #: (name, col_idx, ptype) resolved up front so bad names fail fast
        self._cols = []
        for name in columns:
            col_idx = footer.find_column(name)
            self._cols.append((name, col_idx, footer.column_type(col_idx)))
        groups = (
            list(range(footer.num_row_groups))
            if row_groups is None
            else list(row_groups)
        )
        if predicate is not None:
            # legacy prune-only semantics: groups drop, rows never do
            kept = set(
                reader.prune_row_groups(
                    predicate.column, predicate.min_value, predicate.max_value
                )
            )
            groups = [g for g in groups if g in kept]
        self._where = where
        self._filter_cols: list[tuple[str, int, object]] = []
        self.stats.bump(files_scanned=1, groups_total=len(groups))
        if where is not None:
            for name in sorted(where.columns()):
                col_idx = footer.find_column(name)
                ptype = footer.column_type(col_idx)
                if ptype.list_depth > 0:
                    raise ValueError(
                        f"cannot filter on list column {name!r}"
                    )
                self._filter_cols.append((name, col_idx, ptype))
            kept = set(reader.prune_row_groups_expr(where))
            pruned = [g for g in groups if g not in kept]
            groups = [g for g in groups if g in kept]
            self.stats.bump(
                groups_pruned=len(pruned),
                rows_pruned=sum(footer.row_group(g).n_rows for g in pruned),
            )
        self._groups = groups
        self._batch_size = batch_size
        self._widen = widen_quantized
        self._max_workers = max_workers
        self._prefetch_groups = max(1, prefetch_groups)
        self._deleted = None
        if drop_deleted and footer.deleted_count():
            self._deleted = footer.deletion_bitmap()

    @property
    def row_groups(self) -> list[int]:
        """The row groups this scan will touch, post-pruning."""
        return list(self._groups)

    # -- iteration ------------------------------------------------------
    def __iter__(self):
        if self._batch_size is None:
            yield from self._group_tables()
            return
        size = self._batch_size
        if size <= 0:
            raise ValueError("batch_size must be positive")
        carry: Table | None = None
        for group_table in self._group_tables():
            if carry is not None:
                group_table = concat_tables([carry, group_table])
                carry = None
            pos = 0
            while pos + size <= group_table.num_rows:
                yield group_table.slice(pos, pos + size)
                pos += size
            if pos < group_table.num_rows:
                carry = group_table.slice(pos, group_table.num_rows)
        if carry is not None and carry.num_rows:
            yield carry

    def to_table(self) -> Table:
        """Materialize the scan into one table."""
        if not self._cols:
            return Table({})
        tables = list(self._group_tables())
        if not tables:
            # every group pruned (or filtered) away: empty, but typed
            # exactly like a non-empty result — including widening
            out = {}
            for name, _idx, ptype in self._cols:
                values = _cast_to_storage(_concat([], ptype), ptype)
                if self._widen:
                    values = _widen_quantized(values, ptype)
                out[name] = values
            return Table(out)
        return concat_tables(tables)

    # -- internals ------------------------------------------------------
    def _group_tables(self):
        if self._where is not None:
            yield from self._group_tables_filtered()
            return
        groups = self._groups
        n_fetches = len(groups) * len(self._cols)
        if self._max_workers > 1 and n_fetches > 1:
            yield from self._group_tables_parallel()
            return
        for g in groups:
            fetched = self._reader._fetch_chunks(
                [(col_idx, g) for _name, col_idx, _pt in self._cols]
            )
            raws = [
                fetched[(col_idx, g)] for _name, col_idx, _pt in self._cols
            ]
            table = self._assemble(g, raws)
            self.stats.bump(
                chunks_fetched=len(raws),
                groups_scanned=1,
                rows_scanned=self._group_rows(g),
                rows_matched=table.num_rows,
            )
            yield table

    def _group_tables_parallel(self):
        groups = self._groups
        reader = self._reader
        window = self._prefetch_groups
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            futures: dict[int, object] = {}
            submitted = 0

            def submit_through(limit: int) -> None:
                nonlocal submitted
                while submitted < min(limit, len(groups)):
                    g = groups[submitted]
                    # one future per group: its chunks fetch together
                    # through the coalescing planner (duplicate
                    # projection columns dedup inside _fetch_chunks)
                    futures[submitted] = pool.submit(
                        reader._fetch_chunks,
                        [(col_idx, g) for _name, col_idx, _pt in self._cols],
                    )
                    submitted += 1

            submit_through(1 + window)
            for i, g in enumerate(groups):
                fetched = futures.pop(i).result()
                raws = [
                    fetched[(col_idx, g)]
                    for _name, col_idx, _pt in self._cols
                ]
                submit_through(i + 2 + window)
                table = self._assemble(g, raws)
                self.stats.bump(
                    chunks_fetched=len(raws),
                    groups_scanned=1,
                    rows_scanned=self._group_rows(g),
                    rows_matched=table.num_rows,
                )
                yield table

    # -- filtered iteration (where=...) ---------------------------------
    def _group_tables_filtered(self):
        """Late-materializing iteration: filter columns first.

        Filter chunks of up to ``prefetch_groups`` groups ahead are
        fetched through the pool; the remaining projected ("residual")
        chunks of a group are only requested once its mask has
        survivors, so a group filtered to nothing costs exactly its
        filter chunks.
        """
        groups = self._groups
        reader = self._reader
        filter_cols = self._filter_cols
        filter_names = {name for name, _idx, _pt in filter_cols}
        residual = [
            (pos, spec)
            for pos, spec in enumerate(self._cols)
            if spec[0] not in filter_names
        ]
        n_filter_fetches = len(groups) * len(filter_cols)
        pool = (
            ThreadPoolExecutor(max_workers=self._max_workers)
            if self._max_workers > 1 and n_filter_fetches + len(residual) > 1
            else None
        )
        try:
            if pool is None:
                for g in groups:
                    fetched = reader._fetch_chunks(
                        [(col_idx, g) for _name, col_idx, _pt in filter_cols]
                    )
                    raws = {
                        name: fetched[(col_idx, g)]
                        for name, col_idx, _pt in filter_cols
                    }
                    table = self._filtered_group(g, raws, None)
                    if table is not None:
                        yield table
                return
            window = self._prefetch_groups
            futures: dict[int, object] = {}
            submitted = 0

            def submit_through(limit: int) -> None:
                nonlocal submitted
                while submitted < min(limit, len(groups)):
                    g = groups[submitted]
                    futures[submitted] = pool.submit(
                        reader._fetch_chunks,
                        [(col_idx, g) for _name, col_idx, _pt in filter_cols],
                    )
                    submitted += 1

            submit_through(1 + window)
            for i, g in enumerate(groups):
                fetched = futures.pop(i).result()
                raws = {
                    name: fetched[(col_idx, g)]
                    for name, col_idx, _pt in filter_cols
                }
                submit_through(i + 2 + window)
                table = self._filtered_group(g, raws, pool)
                if table is not None:
                    yield table
        finally:
            if pool is not None:
                pool.shutdown(wait=False)

    def _filtered_group(self, g: int, filter_raws: dict, pool) -> Table | None:
        """Evaluate one group's mask; assemble only if rows survive."""
        reader = self._reader
        stats = self.stats
        n_rows = self._group_rows(g)
        stats.bump(
            chunks_fetched=len(filter_raws),
            groups_scanned=1,
            rows_scanned=n_rows,
        )
        # decode filter columns once, in storage representation
        decoded: dict[str, object] = {}
        for name, col_idx, ptype in self._filter_cols:
            parts = reader._decode_chunk(filter_raws[name], col_idx, g)
            decoded[name] = _cast_to_storage(_concat([parts], ptype), ptype)
        # evaluate in the widened domain so quantized columns compare
        # as floats, matching their (widened-domain) zone maps
        eval_values = {
            name: _widen_quantized(decoded[name], ptype)
            for name, _idx, ptype in self._filter_cols
        }
        mask = evaluate_expr(self._where, eval_values)
        if self._deleted is not None:
            rg = reader.footer.row_group(g)
            mask = mask & ~self._deleted[rg.row_start : rg.row_start + rg.n_rows]
        if not mask.any():
            residual = sum(
                1 for name, _i, _p in self._cols if name not in decoded
            )
            stats.bump(chunks_skipped=residual, groups_empty=1)
            return None
        # fetch the residual projected chunks (only now — the point of
        # late materialization); one planner call coalesces the lot
        to_fetch = [
            (name, col_idx)
            for name, col_idx, _pt in self._cols
            if name not in decoded
        ]
        fetched = reader._fetch_chunks(
            [(col_idx, g) for _name, col_idx in to_fetch]
        )
        raws = {name: fetched[(col_idx, g)] for name, col_idx in to_fetch}
        stats.bump(chunks_fetched=len(raws))
        out: dict[str, object] = {}
        for name, col_idx, ptype in self._cols:
            if name in decoded:
                values = decoded[name]
            else:
                parts = reader._decode_chunk(raws[name], col_idx, g)
                values = _cast_to_storage(_concat([parts], ptype), ptype)
            if self._widen:
                values = _widen_quantized(values, ptype)
            out[name] = values
        table = Table(out).take_mask(mask) if out else Table({})
        stats.bump(rows_matched=table.num_rows)
        return table

    def _group_rows(self, g: int) -> int:
        return self._reader.footer.row_group(g).n_rows

    def _assemble(self, g: int, raws: list[bytes]) -> Table:
        reader = self._reader
        out: dict[str, object] = {}
        for (name, col_idx, ptype), raw in zip(self._cols, raws):
            parts = reader._decode_chunk(raw, col_idx, g)
            values = _concat([parts], ptype)
            values = _cast_to_storage(values, ptype)
            if self._widen:
                values = _widen_quantized(values, ptype)
            out[name] = values
        table = Table(out)
        if self._deleted is not None and table.num_columns:
            rg = reader.footer.row_group(g)
            keep = ~self._deleted[rg.row_start : rg.row_start + rg.n_rows]
            table = table.take_mask(keep)
        return table


class BullionReader:
    """Read-side API: open, scan, project, verify."""

    def __init__(
        self,
        storage: Storage,
        chunk_cache_size: int = 32,
        *,
        chunk_cache: TieredChunkCache | None = None,
        coalesce_gap: int = 0,
    ) -> None:
        self._storage = storage
        if storage.size < _TAIL_SIZE:
            raise BullionFormatError(
                f"not a Bullion file: {storage.size} bytes is smaller "
                f"than the {_TAIL_SIZE}-byte tail"
            )
        # one speculative tail read covers the 8-byte tail and, for
        # typical footers, the footer itself: one metadata round trip
        spec = min(storage.size, max(_TAIL_SIZE, _TAIL_SPECULATION))
        tail_block = storage.pread(storage.size - spec, spec)
        tail = tail_block[-_TAIL_SIZE:]
        (footer_len,) = struct.unpack_from("<I", tail, 0)
        if tail[4:] != MAGIC:
            raise BullionFormatError(f"bad trailing magic {tail[4:]!r}")
        if footer_len + _TAIL_SIZE > storage.size:
            raise BullionFormatError(
                f"footer length {footer_len} exceeds file size {storage.size}"
            )
        footer_offset = storage.size - _TAIL_SIZE - footer_len
        if footer_len + _TAIL_SIZE <= spec:
            footer_bytes = tail_block[
                spec - _TAIL_SIZE - footer_len : spec - _TAIL_SIZE
            ]
        else:
            footer_bytes = storage.pread(footer_offset, footer_len)
        self.footer = FooterView(footer_bytes, file_offset=footer_offset)
        #: content fingerprint for shared-cache keys: a hash of the
        #: footer bytes, which cover the Merkle root, stats and the
        #: deletion vector — any in-place scrub or rewrite yields a new
        #: fingerprint, so shared-cache entries can never serve stale
        self.fingerprint = hash_bytes(footer_bytes)
        #: how many gap bytes the fetch planner may over-read to merge
        #: two near-adjacent extents into one ranged request (0: only
        #: truly adjacent extents merge, so bytes moved never grow;
        #: -1 disables coalescing entirely — every chunk is its own
        #: request, the historical per-chunk access pattern)
        self.coalesce_gap = coalesce_gap
        if chunk_cache is not None:
            #: a shared (typically process-wide) tiered cache: keys are
            #: prefixed with (storage identity, file fingerprint) so
            #: entries are correct across readers, snapshots and epochs
            self.chunk_cache = chunk_cache
            self._cache_prefix: tuple = (
                storage_identity(storage),
                self.fingerprint,
            )
        else:
            #: raw chunk LRU shared by every scan from this reader;
            #: assumes the file is immutable for the reader's lifetime
            #: — reopen (or ``invalidate_cache()``) after in-place
            #: deletions
            self.chunk_cache = ChunkCache(chunk_cache_size)
            self._cache_prefix = ()
        # resolved once: per-fetch latency histogram child for this
        # storage backend (class-derived label, never the file name)
        self._fetch_hist = CHUNK_FETCH_SECONDS.labels(
            backend=backend_label(storage)
        )
        if obs_metrics.enabled():
            READER_OPENS.inc()

    # -- metadata -------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.footer.num_rows

    @property
    def num_columns(self) -> int:
        return self.footer.num_columns

    @property
    def live_rows(self) -> int:
        """Rows that survive deletion filtering (the manifest stat)."""
        return self.footer.num_rows - self.footer.deleted_count()

    def schema(self) -> Schema:
        return self.footer.schema()

    def schema_fingerprint(self) -> int:
        """See :meth:`FooterView.schema_fingerprint`."""
        return self.footer.schema_fingerprint()

    def column_names(self) -> list[str]:
        return [c.name for c in self.footer.physical_columns()]

    def invalidate_cache(self) -> None:
        if self._cache_prefix:
            # shared cache: drop every entry for this device (any
            # fingerprint), not other readers' files
            self.chunk_cache.invalidate_prefix((self._cache_prefix[0],))
        else:
            self.chunk_cache.clear()

    # -- data -----------------------------------------------------------
    def scan(
        self,
        columns: list[str],
        *,
        predicate: Predicate | None = None,
        where: Expr | None = None,
        row_groups: list[int] | None = None,
        batch_size: int | None = None,
        drop_deleted: bool = True,
        widen_quantized: bool = False,
        max_workers: int = 4,
        prefetch_groups: int = 2,
        scan_stats: ScanStats | None = None,
    ) -> Scan:
        """Lazy batch iterator over a feature projection.

        ``batch_size=None`` yields one batch per row group; otherwise
        batches of exactly ``batch_size`` rows (last one may be short).
        ``max_workers <= 1`` forces serial chunk fetches.

        ``where`` takes a :class:`repro.expr.Expr` (or a legacy
        :class:`Predicate` via ``predicate=``, prune-only semantics)
        and applies the full pushdown: zone-map row-group pruning plus
        exact vectorized row filtering with late materialization.
        Pass a shared :class:`ScanStats` as ``scan_stats`` to
        aggregate skip counters across several scans.
        """
        return Scan(
            self,
            columns,
            predicate=predicate,
            where=where,
            row_groups=row_groups,
            batch_size=batch_size,
            drop_deleted=drop_deleted,
            widen_quantized=widen_quantized,
            max_workers=max_workers,
            prefetch_groups=prefetch_groups,
            scan_stats=scan_stats,
        )

    def project(
        self,
        columns: list[str],
        drop_deleted: bool = True,
        row_groups: list[int] | None = None,
        widen_quantized: bool = False,
    ) -> Table:
        """Eagerly read the named columns (the ML feature projection).

        A thin wrapper over a serial :meth:`scan` so accounting-based
        experiments see deterministic I/O ordering.

        ``widen_quantized=True`` dequantizes §2.4 storage-quantized
        columns (FP16/BF16/FP8) back to float32 on the way out; the
        default returns the stored representation, which trainers with
        native low-precision support consume directly ("usable directly
        in training and serving").
        """
        return self.scan(
            columns,
            row_groups=row_groups,
            drop_deleted=drop_deleted,
            widen_quantized=widen_quantized,
            max_workers=0,
        ).to_table()

    def read_column(self, name: str, drop_deleted: bool = True):
        return self.project([name], drop_deleted=drop_deleted).column(name)

    def prune_row_groups(
        self,
        column: str,
        min_value: float | None = None,
        max_value: float | None = None,
    ) -> list[int]:
        """Row groups whose [min, max] stats may satisfy the range.

        The legacy single-column surface — now a shim over
        :meth:`prune_row_groups_expr`, so range pruning and expression
        pruning share one conservative interval evaluator. Zero data
        I/O: answered entirely from the footer's stats section. Groups
        without statistics are conservatively kept. With quality-
        presorted files (§2.5) this is what turns a quality-threshold
        scan into a prefix read.
        """
        if min_value is None and max_value is None:
            self.footer.find_column(column)  # keep the KeyError contract
            return list(range(self.footer.num_row_groups))
        return self.prune_row_groups_expr(
            Predicate(column, min_value, max_value).to_expr()
        )

    def prune_row_groups_expr(self, where: Expr) -> list[int]:
        """Row groups the interval evaluator cannot rule out.

        Evaluates ``where`` against each group's zone maps (chunk
        min/max statistics) with the conservative tri-state semantics
        of :mod:`repro.expr.interval`: missing stats, NaN bounds and
        float64-rounded int64 bounds never prune. Zero data I/O.
        """
        return [
            g
            for g, verdict in enumerate(self.classify_row_groups_expr(where))
            if verdict is not TriState.NEVER
        ]

    def classify_row_groups_expr(self, where: Expr) -> "list[TriState]":
        """Tri-state zone-map verdict for every row group, in order.

        ``NEVER`` — no row of the group can match (pruned with zero
        data I/O); ``ALWAYS`` — every row provably matches, which lets
        the query engine answer counts and extrema from the group's
        statistics alone; ``MAYBE`` — decode and let the vectorized
        evaluator decide. Shares :meth:`prune_row_groups_expr`'s
        conservative evaluator, so the two can never disagree.
        """
        footer = self.footer
        specs = []
        for name in sorted(where.columns()):
            col_idx = footer.find_column(name)
            ptype = footer.column_type(col_idx)
            specs.append((name, col_idx, stats_kind(ptype)))
        verdicts = []
        for g in range(footer.num_row_groups):
            intervals = {}
            for name, col_idx, kind in specs:
                stats = footer.chunk_stats(col_idx, g)
                if stats is None or kind is None:
                    intervals[name] = None
                else:
                    intervals[name] = interval_from_stats(
                        stats.min_value, stats.max_value, kind
                    )
            verdicts.append(evaluate_interval(where, intervals))
        return verdicts

    def aggregate(
        self,
        aggregates,
        *,
        where: Expr | None = None,
        group_by=None,
        use_metadata: bool = True,
        max_workers: int = 4,
    ):
        """Run an aggregation query over this file (``repro.query``).

        ``aggregates`` is a list of specs like ``"count"``,
        ``"sum(clicks)"``, ``"min(price)"``. With ``use_metadata``
        (the default), counts and extrema are answered from footer
        statistics wherever the tri-state evaluator can prove them —
        often with zero chunk fetches; ``use_metadata=False`` forces
        the decode path. Returns a
        :class:`repro.query.QueryResult`.
        """
        from repro.query import aggregate_reader

        return aggregate_reader(
            self,
            aggregates,
            where=where,
            group_by=group_by,
            use_metadata=use_metadata,
            max_workers=max_workers,
        )

    def _cache_key(self, col_idx: int, rg: int) -> tuple:
        return self._cache_prefix + (col_idx, rg)

    def _pread_chunk(self, col_idx: int, rg: int) -> bytes:
        """One backend pread for a single (column, row-group) extent."""
        chunk = self.footer.chunk(col_idx, rg)
        if obs_metrics.enabled():
            with obs_trace.span("scan.fetch_chunk", col=col_idx, group=rg):
                t0 = time.perf_counter()
                raw = self._storage.pread(chunk.offset, chunk.size)
                self._fetch_hist.observe(time.perf_counter() - t0)
        else:
            raw = self._storage.pread(chunk.offset, chunk.size)
        return raw

    def _fetch_chunk(self, col_idx: int, rg: int) -> bytes:
        """Fetch one chunk through the cache with single-flight dedup."""
        cache = self.chunk_cache
        ckey = self._cache_key(col_idx, rg)
        while True:
            kind, val = cache.claim(ckey)
            if kind == "hit":
                return val
            if kind == "mine":
                try:
                    raw = self._pread_chunk(col_idx, rg)
                except BaseException as exc:
                    cache.abandon(ckey, exc)
                    raise
                cache.fulfill(ckey, raw)
                return raw
            val.event.wait()
            if val.error is None:
                return val.value
            # the leader's fetch failed: re-claim (possibly as leader)

    def _fetch_chunks(
        self, keys: list[tuple[int, int]]
    ) -> dict[tuple[int, int], bytes]:
        """Batch fetch with single-flight claims and ranged coalescing.

        Claims every missing key up front, merges the claimed extents
        into maximal runs — adjacent, or within :attr:`coalesce_gap`
        bytes of each other, and no longer than the storage's max
        ranged-get size — issues one ``pread`` per run, slices the
        bytes back out per chunk, and finally waits on any keys other
        threads had in flight. Exactly one backend fetch happens per
        chunk process-wide, however many scans want it concurrently.
        """
        cache = self.chunk_cache
        results: dict[tuple[int, int], bytes] = {}
        mine: list[tuple[int, int]] = []
        waits: list[tuple[tuple[int, int], object]] = []
        for key in dict.fromkeys(keys):
            kind, val = cache.claim(self._cache_key(*key))
            if kind == "hit":
                results[key] = val
            elif kind == "mine":
                mine.append(key)
            else:
                waits.append((key, val))
        if mine:
            try:
                self._fetch_claimed(mine, results)
            except BaseException as exc:
                for key in mine:
                    if key not in results:
                        cache.abandon(self._cache_key(*key), exc)
                raise
        for key, flight in waits:
            flight.event.wait()
            if flight.error is None:
                results[key] = flight.value
            else:
                # the leader failed; retry this key (possibly as leader)
                results[key] = self._fetch_chunk(*key)
        return results

    def _fetch_claimed(
        self,
        mine: list[tuple[int, int]],
        results: dict[tuple[int, int], bytes],
    ) -> None:
        """Plan and issue coalesced reads for claimed (miss) keys."""
        footer = self.footer
        cache = self.chunk_cache
        extents = sorted(
            (footer.chunk(c, g).offset, footer.chunk(c, g).size, (c, g))
            for c, g in mine
        )
        max_run = _MAX_RUN_BYTES
        storage_cap = getattr(self._storage, "max_request_bytes", None)
        if storage_cap:
            max_run = min(max_run, storage_cap)
        gap = self.coalesce_gap
        runs: list[list[tuple[int, int, tuple[int, int]]]] = []
        run_start = run_end = None
        for ext in extents:
            off, size, _key = ext
            if (
                run_start is not None
                and off - run_end <= gap
                and max(run_end, off + size) - run_start <= max_run
            ):
                runs[-1].append(ext)
                run_end = max(run_end, off + size)
            else:
                runs.append([ext])
                run_start, run_end = off, off + size
        for run in runs:
            if len(run) == 1:
                _off, _size, key = run[0]
                raw = self._pread_chunk(*key)
                results[key] = raw
                cache.fulfill(self._cache_key(*key), raw)
                continue
            start = run[0][0]
            end = max(off + size for off, size, _key in run)
            if obs_metrics.enabled():
                with obs_trace.span(
                    "scan.fetch_run", chunks=len(run), nbytes=end - start
                ):
                    t0 = time.perf_counter()
                    blob = self._storage.pread(start, end - start)
                    self._fetch_hist.observe(time.perf_counter() - t0)
                SCAN_COALESCED_REQUESTS.inc()
                SCAN_COALESCED_CHUNKS.inc(len(run))
                SCAN_COALESCE_WASTE_BYTES.inc(
                    (end - start) - sum(size for _o, size, _k in run)
                )
            else:
                blob = self._storage.pread(start, end - start)
            for off, size, key in run:
                raw = blob[off - start : off - start + size]
                results[key] = raw
                cache.fulfill(self._cache_key(*key), raw)

    def _decode_chunk(self, raw: bytes, col_idx: int, rg: int):
        """Split a chunk's raw bytes into decoded per-page value runs."""
        footer = self.footer
        chunk = footer.chunk(col_idx, rg)
        values_parts = []
        pos = 0
        rg_meta = footer.row_group(rg)
        page_row = rg_meta.row_start
        for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
            header = PageHeader.unpack(raw, pos)
            payload = raw[
                pos + PAGE_HEADER_SIZE : pos + PAGE_HEADER_SIZE + header.payload_len
            ]
            values = decode_blob(payload)
            meta = footer.page(pid)
            if header.n_values != meta.n_values:
                values = self._re_expand(values, pid, page_row, meta.n_values)
            values_parts.append(values)
            pos += PAGE_HEADER_SIZE + header.alloc_len
            page_row += meta.n_values
        return values_parts

    def _read_chunk(self, col_idx: int, rg: int):
        return self._decode_chunk(self._fetch_chunk(col_idx, rg), col_idx, rg)

    def _re_expand(self, stored, pid: int, page_row: int, original: int):
        """Re-align a compacted page using the deletion vector.

        After a compacting deletion (e.g. RLE), the page stores only the
        surviving values; the deletion vector "details the valid values
        and their offsets in a page ... misaligned values are restored
        using the deletion vector" (§2.1).
        """
        bitmap = self.footer.deletion_bitmap()
        local_deleted = bitmap[page_row : page_row + original]
        if isinstance(stored, np.ndarray):
            full = np.zeros(original, dtype=stored.dtype)
            full[~local_deleted] = stored
            return full
        full_list: list = [b"" if not stored or isinstance(stored[0], bytes) else
                           np.zeros(0, dtype=np.int64)] * original
        it = iter(stored)
        for i in np.flatnonzero(~local_deleted):
            full_list[int(i)] = next(it)
        return full_list

    # -- integrity (Fig 2) ------------------------------------------------
    def verify(self, page_ids: list[int] | None = None) -> bool:
        """Check page payload hashes + Merkle structure consistency."""
        footer = self.footer
        ids = page_ids if page_ids is not None else range(footer.num_pages)
        for pid in ids:
            meta = footer.page(pid)
            raw = self._storage.pread(
                meta.offset, PAGE_HEADER_SIZE + meta.alloc_len
            )
            header = PageHeader.unpack(raw)
            payload = raw[
                PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + header.payload_len
            ]
            if hash_bytes(payload) != footer.page_hash(pid):
                return False
        from repro.core.checksum import MerkleTree

        tree = MerkleTree.from_leaves(
            [footer.page_hash(p) for p in range(footer.num_pages)],
            footer.pages_per_group(),
        )
        return (
            tree.group_hashes
            == [footer.group_hash(g) for g in range(footer.num_row_groups)]
            and tree.root == footer.root_hash()
        )


def _concat(parts: list[list], ptype) -> object:
    flat = [v for part in parts for v in part]
    if not flat:
        # empty projection: the container/dtype must still match the
        # column's physical type (an empty float or string column
        # round-trips as such, not as int64 zeros)
        if ptype.list_depth > 0 or ptype.primitive in (
            Primitive.STRING,
            Primitive.BINARY,
        ):
            return []
        return np.zeros(0, dtype=STORAGE_DTYPES[ptype.primitive])
    if isinstance(flat[0], np.ndarray) and ptype.list_depth == 0:
        return np.concatenate(flat)
    out: list = []
    for v in flat:
        out.extend(v)
    return out


def _widen_quantized(values, ptype):
    """Dequantize FP16/BF16/FP8 storage to float32 (§2.4 read path)."""
    from repro.quantization import FloatFormat, dequantize

    fmt_by_primitive = {
        Primitive.FLOAT16: FloatFormat.FP16,
        Primitive.BFLOAT16: FloatFormat.BF16,
        Primitive.FLOAT8_E4M3: FloatFormat.FP8_E4M3,
        Primitive.FLOAT8_E5M2: FloatFormat.FP8_E5M2,
    }
    fmt = fmt_by_primitive.get(ptype.primitive)
    if fmt is None or ptype.list_depth != 0:
        return values
    return dequantize(np.asarray(values), fmt)


def _cast_to_storage(values, ptype):
    prim = ptype.primitive
    if ptype.list_depth > 0:
        if prim in (Primitive.STRING, Primitive.BINARY):
            return values
        dtype = STORAGE_DTYPES.get(prim, np.int64)
        if ptype.list_depth == 1 and isinstance(values, list):
            return [np.asarray(v).astype(dtype, copy=False) for v in values]
        return values
    if prim in (Primitive.STRING, Primitive.BINARY):
        return values
    dtype = STORAGE_DTYPES[prim]
    arr = np.asarray(values)
    if arr.dtype != dtype:
        if dtype in (np.uint16, np.uint8):  # bf16 / fp8 payloads
            arr = arr.astype(np.int64).astype(dtype)
        else:
            arr = arr.astype(dtype)
    return arr
