"""BullionReader: projection-oriented reads over a Bullion file.

The access path follows §2.3 exactly: one ``pread`` for the footer tail,
one for the footer, then a binary map scan per requested column and a
single coalesced ``pread`` per (column, row group) chunk. Metadata cost
is independent of how many *other* columns the file holds — the Fig 5
property.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.footer import MAGIC, FooterView
from repro.core.page import PAGE_HEADER_SIZE, PageHeader
from repro.core.schema import Primitive, Schema, STORAGE_DTYPES
from repro.core.table import Table
from repro.encodings import decode_blob
from repro.iosim import SimulatedStorage
from repro.util.hashing import hash_bytes

_TAIL_SIZE = 4 + len(MAGIC)


class BullionFormatError(ValueError):
    """Malformed file, bad magic, or checksum mismatch."""


class BullionReader:
    """Read-side API: open, project, verify."""

    def __init__(self, storage: SimulatedStorage) -> None:
        self._storage = storage
        tail = storage.pread(storage.size - _TAIL_SIZE, _TAIL_SIZE)
        (footer_len,) = struct.unpack_from("<I", tail, 0)
        if tail[4:] != MAGIC:
            raise BullionFormatError(f"bad trailing magic {tail[4:]!r}")
        footer_offset = storage.size - _TAIL_SIZE - footer_len
        footer_bytes = storage.pread(footer_offset, footer_len)
        self.footer = FooterView(footer_bytes, file_offset=footer_offset)

    # -- metadata -------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.footer.num_rows

    @property
    def num_columns(self) -> int:
        return self.footer.num_columns

    def schema(self) -> Schema:
        return self.footer.schema()

    def column_names(self) -> list[str]:
        return [c.name for c in self.footer.physical_columns()]

    # -- data -----------------------------------------------------------
    def project(
        self,
        columns: list[str],
        drop_deleted: bool = True,
        row_groups: list[int] | None = None,
        widen_quantized: bool = False,
    ) -> Table:
        """Read the named physical columns (the ML feature projection).

        ``widen_quantized=True`` dequantizes §2.4 storage-quantized
        columns (FP16/BF16/FP8) back to float32 on the way out; the
        default returns the stored representation, which trainers with
        native low-precision support consume directly ("usable directly
        in training and serving").
        """
        footer = self.footer
        groups = (
            list(range(footer.num_row_groups))
            if row_groups is None
            else row_groups
        )
        deleted = None
        if drop_deleted and footer.deleted_count():
            deleted = footer.deletion_bitmap()
        out: dict[str, object] = {}
        for name in columns:
            col_idx = footer.find_column(name)
            ptype = footer.column_type(col_idx)
            parts = []
            for g in groups:
                parts.append(self._read_chunk(col_idx, g))
            values = _concat(parts, ptype)
            values = _cast_to_storage(values, ptype)
            if widen_quantized:
                values = _widen_quantized(values, ptype)
            out[name] = values
        table = Table(out)
        if deleted is not None and table.num_columns:
            keep_parts = [
                deleted[
                    footer.row_group(g).row_start : footer.row_group(g).row_start
                    + footer.row_group(g).n_rows
                ]
                for g in groups
            ]
            keep = ~np.concatenate(keep_parts)
            table = table.take_mask(keep)
        return table

    def read_column(self, name: str, drop_deleted: bool = True):
        return self.project([name], drop_deleted=drop_deleted).column(name)

    def prune_row_groups(
        self,
        column: str,
        min_value: float | None = None,
        max_value: float | None = None,
    ) -> list[int]:
        """Row groups whose [min, max] stats may satisfy the predicate.

        Zero data I/O: answered entirely from the footer's stats
        section. Groups without statistics are conservatively kept.
        With quality-presorted files (§2.5) this is what turns a
        quality-threshold scan into a prefix read.
        """
        footer = self.footer
        col_idx = footer.find_column(column)
        kept = []
        for g in range(footer.num_row_groups):
            stats = footer.chunk_stats(col_idx, g)
            if stats is None:
                kept.append(g)
                continue
            if min_value is not None and stats.max_value < min_value:
                continue
            if max_value is not None and stats.min_value > max_value:
                continue
            kept.append(g)
        return kept

    def _read_chunk(self, col_idx: int, rg: int):
        """One coalesced pread for a (column, row-group) extent."""
        footer = self.footer
        chunk = footer.chunk(col_idx, rg)
        raw = self._storage.pread(chunk.offset, chunk.size)
        values_parts = []
        pos = 0
        rg_meta = footer.row_group(rg)
        page_row = rg_meta.row_start
        for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
            header = PageHeader.unpack(raw, pos)
            payload = raw[
                pos + PAGE_HEADER_SIZE : pos + PAGE_HEADER_SIZE + header.payload_len
            ]
            values = decode_blob(payload)
            meta = footer.page(pid)
            if header.n_values != meta.n_values:
                values = self._re_expand(values, pid, page_row, meta.n_values)
            values_parts.append(values)
            pos += PAGE_HEADER_SIZE + header.alloc_len
            page_row += meta.n_values
        return values_parts

    def _re_expand(self, stored, pid: int, page_row: int, original: int):
        """Re-align a compacted page using the deletion vector.

        After a compacting deletion (e.g. RLE), the page stores only the
        surviving values; the deletion vector "details the valid values
        and their offsets in a page ... misaligned values are restored
        using the deletion vector" (§2.1).
        """
        bitmap = self.footer.deletion_bitmap()
        local_deleted = bitmap[page_row : page_row + original]
        if isinstance(stored, np.ndarray):
            full = np.zeros(original, dtype=stored.dtype)
            full[~local_deleted] = stored
            return full
        full_list: list = [b"" if not stored or isinstance(stored[0], bytes) else
                           np.zeros(0, dtype=np.int64)] * original
        it = iter(stored)
        for i in np.flatnonzero(~local_deleted):
            full_list[int(i)] = next(it)
        return full_list

    # -- integrity (Fig 2) ------------------------------------------------
    def verify(self, page_ids: list[int] | None = None) -> bool:
        """Check page payload hashes + Merkle structure consistency."""
        footer = self.footer
        ids = page_ids if page_ids is not None else range(footer.num_pages)
        for pid in ids:
            meta = footer.page(pid)
            raw = self._storage.pread(
                meta.offset, PAGE_HEADER_SIZE + meta.alloc_len
            )
            header = PageHeader.unpack(raw)
            payload = raw[
                PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + header.payload_len
            ]
            if hash_bytes(payload) != footer.page_hash(pid):
                return False
        from repro.core.checksum import MerkleTree

        tree = MerkleTree.from_leaves(
            [footer.page_hash(p) for p in range(footer.num_pages)],
            footer.pages_per_group(),
        )
        return (
            tree.group_hashes
            == [footer.group_hash(g) for g in range(footer.num_row_groups)]
            and tree.root == footer.root_hash()
        )


def _concat(parts: list[list], ptype) -> object:
    flat = [v for part in parts for v in part]
    if not flat:
        return np.zeros(0, dtype=np.int64)
    if isinstance(flat[0], np.ndarray) and ptype.list_depth == 0:
        return np.concatenate(flat)
    out: list = []
    for v in flat:
        out.extend(v)
    return out


def _widen_quantized(values, ptype):
    """Dequantize FP16/BF16/FP8 storage to float32 (§2.4 read path)."""
    from repro.quantization import FloatFormat, dequantize

    fmt_by_primitive = {
        Primitive.FLOAT16: FloatFormat.FP16,
        Primitive.BFLOAT16: FloatFormat.BF16,
        Primitive.FLOAT8_E4M3: FloatFormat.FP8_E4M3,
        Primitive.FLOAT8_E5M2: FloatFormat.FP8_E5M2,
    }
    fmt = fmt_by_primitive.get(ptype.primitive)
    if fmt is None or ptype.list_depth != 0:
        return values
    return dequantize(np.asarray(values), fmt)


def _cast_to_storage(values, ptype):
    prim = ptype.primitive
    if ptype.list_depth > 0:
        if prim in (Primitive.STRING, Primitive.BINARY):
            return values
        dtype = STORAGE_DTYPES.get(prim, np.int64)
        if ptype.list_depth == 1 and isinstance(values, list):
            return [np.asarray(v).astype(dtype, copy=False) for v in values]
        return values
    if prim in (Primitive.STRING, Primitive.BINARY):
        return values
    dtype = STORAGE_DTYPES[prim]
    arr = np.asarray(values)
    if arr.dtype != dtype:
        if dtype in (np.uint16, np.uint8):  # bf16 / fp8 payloads
            arr = arr.astype(np.int64).astype(dtype)
        else:
            arr = arr.astype(dtype)
    return arr
