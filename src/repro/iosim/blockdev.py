"""A byte-accurate simulated storage device with I/O accounting.

``SimulatedStorage`` exposes the positional-read/write interface the
paper's design assumes (``pread()`` the footer, ``pread()`` the column
byte ranges, in-place page ``pwrite()``) while counting:

* read/write operation counts and byte totals,
* seeks — a read/write whose start offset is not where the previous
  operation ended,
* modelled elapsed time under a :class:`SeekModel` (seek latency +
  sequential bandwidth), so benchmarks can report device-time shapes
  rather than Python-interpreter noise.

The deletion-compliance bench (factor-50 rewrite-I/O reduction) and the
multimodal quality-aware-layout bench (Fig 7) are pure functions of
these counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class SeekModel:
    """Cost model: elapsed = seeks * seek_latency
    + requests * request_latency + bytes / bandwidth.

    ``request_latency_s`` is a fixed per-operation charge regardless of
    contiguity — zero for local devices (the historical model, so every
    existing benchmark number is unchanged) but the *dominant* term for
    object stores, where each ranged GET pays a round trip no matter
    how sequential the access pattern is.
    """

    seek_latency_s: float = 1e-4  # 100 µs — datacenter NVMe-ish
    bandwidth_bytes_per_s: float = 2e9  # 2 GB/s sequential
    request_latency_s: float = 0.0  # per-request fixed cost (RTT)

    def request_cost(self, nbytes: int, seeked: bool = True) -> float:
        """Modelled seconds for one request moving ``nbytes``.

        The single charging formula shared by
        :class:`~repro.iosim.LatencyModelledStorage` and
        :class:`~repro.iosim.ObjectStorage` — the object store is this
        model with ``request_latency_s`` dominating and seeks free.
        """
        cost = self.request_latency_s + nbytes / self.bandwidth_bytes_per_s
        if seeked:
            cost += self.seek_latency_s
        return cost


@dataclass
class IOStats:
    """Mutable counters for one device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_seeks: int = 0
    write_seeks: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_seeks = 0
        self.write_seeks = 0

    @property
    def seeks(self) -> int:
        return self.read_seeks + self.write_seeks

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def modelled_time(self, model: SeekModel | None = None) -> float:
        model = model or SeekModel()
        return (
            self.seeks * model.seek_latency_s
            + (self.reads + self.writes) * model.request_latency_s
            + self.total_bytes / model.bandwidth_bytes_per_s
        )


@dataclass
class SimulatedStorage:
    """In-memory block device with positional reads/writes.

    The backing store grows on demand; all offsets are absolute. A
    ``name`` makes multi-device experiments (meta table vs media table)
    readable in reports.
    """

    name: str = "dev0"
    stats: IOStats = field(default_factory=IOStats)

    def __post_init__(self) -> None:
        self._buf = bytearray()
        self._read_cursor: int | None = None
        self._write_cursor: int | None = None
        # parallel scans issue preads from worker threads
        self._lock = threading.Lock()

    # -- geometry -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    @property
    def size(self) -> int:
        return len(self._buf)

    def truncate(self, size: int) -> None:
        """Shrink or grow (zero-filled) the device, uncounted."""
        if size < len(self._buf):
            del self._buf[size:]
        else:
            self._buf.extend(b"\x00" * (size - len(self._buf)))

    # -- I/O ----------------------------------------------------------
    def pread(self, offset: int, length: int) -> bytes:
        """Positional read; counts a seek when non-contiguous."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        with self._lock:
            if offset + length > len(self._buf):
                raise ValueError(
                    f"pread [{offset}, {offset + length}) beyond device "
                    f"size {len(self._buf)}"
                )
            self.stats.reads += 1
            self.stats.bytes_read += length
            if self._read_cursor != offset:
                self.stats.read_seeks += 1
            self._read_cursor = offset + length
            return bytes(self._buf[offset : offset + length])

    def pwrite(self, offset: int, data: bytes) -> None:
        """Positional write; extends the device when writing past end."""
        if offset < 0:
            raise ValueError("negative offset")
        with self._lock:
            end = offset + len(data)
            if end > len(self._buf):
                self._buf.extend(b"\x00" * (end - len(self._buf)))
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            if self._write_cursor != offset:
                self.stats.write_seeks += 1
            self._write_cursor = end
            self._buf[offset:end] = data

    def append(self, data: bytes) -> int:
        """Sequential append; returns the offset the data landed at."""
        offset = len(self._buf)
        self.pwrite(offset, data)
        return offset

    # -- escape hatches for tests -------------------------------------
    def raw_bytes(self) -> bytes:
        """Uncounted full snapshot (test assertions only)."""
        return bytes(self._buf)

    def corrupt(self, offset: int, data: bytes) -> None:
        """Uncounted direct mutation (failure-injection tests)."""
        self._buf[offset : offset + len(data)] = data
