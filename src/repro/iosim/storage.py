"""Pluggable storage backends behind one positional-I/O protocol.

Every Bullion read/write path talks to a :class:`Storage` — the small
pread/pwrite/append surface the paper's design assumes (§2.3: footer
pread, coalesced per-chunk preads; §2.1: in-place page pwrites).
Three interchangeable backends implement it:

``SimulatedStorage``        byte-accurate in-memory device with I/O
                            accounting (the original lab rig; see
                            :mod:`repro.iosim.blockdev`)
``FileStorage``             a real local file driven by ``os.pread`` /
                            ``os.pwrite``, so benchmarks and the
                            ``repro-inspect`` CLI run against an actual
                            filesystem
``LatencyModelledStorage``  a wrapper over either that charges each
                            operation seek latency + bandwidth time
                            under a :class:`SeekModel`, optionally
                            sleeping it out so wall-clock experiments
                            (parallel vs serial scans) see realistic
                            device behaviour
``InstrumentedStorage``     a wrapper over any backend that publishes
                            op counts, bytes moved and latency
                            histograms per backend kind into the
                            process-wide :mod:`repro.obs` metrics
                            registry
``ObjectStorage``           an S3-like object store modelled in
                            process over any inner backend: every
                            operation is a *request* paying a fixed
                            round-trip latency plus bytes/bandwidth,
                            ranged GETs are capped at a configurable
                            size, and each request is appended to a
                            replayable log — the backend that makes
                            request *count* the measurable bottleneck
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.iosim.blockdev import IOStats, SeekModel
from repro.obs import metrics as obs_metrics


@runtime_checkable
class Storage(Protocol):
    """Positional-I/O device surface shared by all backends."""

    name: str
    stats: IOStats

    @property
    def size(self) -> int: ...

    def pread(self, offset: int, length: int) -> bytes: ...

    def pwrite(self, offset: int, data: bytes) -> None: ...

    def append(self, data: bytes) -> int: ...

    def truncate(self, size: int) -> None: ...


class FileStorage:
    """Real local-file backend: ``os.pread``/``os.pwrite`` on one fd.

    Keeps the same counters and seek accounting as the simulator so
    code that reports ``storage.stats`` works unchanged. Positional
    syscalls are thread-safe, so a parallel scan may fetch chunks from
    several worker threads at once.
    """

    def __init__(
        self,
        path: str,
        name: str | None = None,
        create: bool = True,
        readonly: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.name = name or os.path.basename(self.path)
        self.stats = IOStats()
        self.readonly = readonly
        if readonly:
            flags = os.O_RDONLY  # inspectable without write permission
        else:
            flags = os.O_RDWR | (os.O_CREAT if create else 0)
        self._closed = True  # stays True if os.open raises
        self._fd = os.open(self.path, flags, 0o644)
        self._closed = False
        self._size = os.fstat(self._fd).st_size
        self._read_cursor: int | None = None
        self._write_cursor: int | None = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def sync(self) -> None:
        """Flush written bytes to disk (fsync)."""
        if not self._closed:
            os.fsync(self._fd)

    def __enter__(self) -> "FileStorage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort fd cleanup
        try:
            self.close()
        except OSError:
            pass

    # -- geometry -----------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        return self._size

    def truncate(self, size: int) -> None:
        """Shrink or grow (zero-filled) the file, uncounted."""
        if self.readonly:
            raise ValueError(f"storage {self.name!r} opened read-only")
        os.ftruncate(self._fd, size)
        self._size = size

    # -- I/O ----------------------------------------------------------
    def pread(self, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        if offset + length > self._size:
            raise ValueError(
                f"pread [{offset}, {offset + length}) beyond file "
                f"size {self._size}"
            )
        data = os.pread(self._fd, length, offset)
        with self._lock:
            self.stats.reads += 1
            self.stats.bytes_read += len(data)
            if self._read_cursor != offset:
                self.stats.read_seeks += 1
            self._read_cursor = offset + len(data)
        return data

    def pwrite(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset")
        if self.readonly:
            raise ValueError(f"storage {self.name!r} opened read-only")
        os.pwrite(self._fd, data, offset)
        with self._lock:
            end = offset + len(data)
            self._size = max(self._size, end)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            if self._write_cursor != offset:
                self.stats.write_seeks += 1
            self._write_cursor = end
        # os.pwrite past EOF leaves a hole, not zeros we must fake:
        # POSIX defines holes to read back as zeros, matching the
        # simulator's zero-fill semantics.

    def append(self, data: bytes) -> int:
        with self._lock:
            offset = self._size
        self.pwrite(offset, data)
        return offset

    # -- escape hatches for tests -------------------------------------
    def raw_bytes(self) -> bytes:
        """Uncounted full snapshot (test assertions only)."""
        return os.pread(self._fd, self._size, 0)

    def corrupt(self, offset: int, data: bytes) -> None:
        """Uncounted direct mutation (failure-injection tests)."""
        os.pwrite(self._fd, data, offset)
        self._size = max(self._size, offset + len(data))


class LatencyModelledStorage:
    """Wrap any backend and charge per-op time under a :class:`SeekModel`.

    Each operation costs ``seek_latency`` when non-contiguous plus
    ``bytes / bandwidth``. The cost accumulates in :attr:`elapsed_s`;
    with ``sleep=True`` it is also slept out, so concurrent readers
    genuinely overlap their modelled device time — the property the
    parallel-scan benchmark measures.
    """

    def __init__(
        self,
        inner: Storage,
        model: SeekModel | None = None,
        sleep: bool = False,
    ) -> None:
        self.inner = inner
        self.model = model or SeekModel()
        self.sleep = sleep
        self.elapsed_s = 0.0
        self._read_cursor: int | None = None
        self._write_cursor: int | None = None
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @property
    def size(self) -> int:
        return self.inner.size

    def __len__(self) -> int:
        return self.inner.size

    def _charge(self, cursor_attr: str, offset: int, nbytes: int) -> None:
        with self._lock:
            cost = self.model.request_cost(
                nbytes, seeked=getattr(self, cursor_attr) != offset
            )
            setattr(self, cursor_attr, offset + nbytes)
            self.elapsed_s += cost
        if self.sleep:
            time.sleep(cost)

    def pread(self, offset: int, length: int) -> bytes:
        data = self.inner.pread(offset, length)
        self._charge("_read_cursor", offset, len(data))
        return data

    def pwrite(self, offset: int, data: bytes) -> None:
        self.inner.pwrite(offset, data)
        self._charge("_write_cursor", offset, len(data))

    def append(self, data: bytes) -> int:
        offset = self.inner.append(data)
        self._charge("_write_cursor", offset, len(data))
        return offset

    def truncate(self, size: int) -> None:
        self.inner.truncate(size)

    # pass through the test escape hatches when the backend has them
    def raw_bytes(self) -> bytes:
        return self.inner.raw_bytes()

    def corrupt(self, offset: int, data: bytes) -> None:
        self.inner.corrupt(offset, data)


#: S3-in-the-same-region-ish defaults: ~25 ms to first byte per
#: request, ~100 MB/s per stream, no seek penalty (objects have no
#: heads to move) — the regime where request count dominates cost.
OBJECT_STORE_MODEL = SeekModel(
    seek_latency_s=0.0,
    bandwidth_bytes_per_s=100e6,
    request_latency_s=0.025,
)

#: S3's practical sweet spot for ranged GETs (8–16 MiB parts).
DEFAULT_MAX_REQUEST_BYTES = 8 << 20


@dataclass(frozen=True)
class ObjectRequest:
    """One logged object-store request (the replayable access trace)."""

    op: str  # "GET" | "PUT"
    offset: int
    nbytes: int
    cost_s: float


class ObjectStorageError(OSError):
    """An injected per-request fault from :class:`ObjectStorage`."""


class ObjectStorage:
    """An S3-like object store modelled in process over any backend.

    The cost model is :class:`SeekModel.request_cost` with a dominant
    ``request_latency_s`` term and zero seek penalty: **every request
    pays a fixed round trip**, so the measurable bottleneck of a read
    path is how *many* ``pread``\\ s it issues, not how many bytes they
    move — exactly the regime the ranged-get coalescing planner and
    the tiered chunk cache are built to win in.

    * ``max_request_bytes`` caps one ranged GET; longer preads are
      split into several requests, each paying the fixed latency (the
      reader's coalescing planner reads this attribute and never plans
      a run it would split).
    * ``jitter_fn`` (→ extra seconds) and ``fault_fn`` (may raise) are
      invoked per request, for robustness experiments: injected
      failures surface as :class:`ObjectStorageError` before any byte
      moves.
    * Every request lands in :attr:`requests` — the replayable log the
      ``repro-inspect scan --backend object`` subcommand prints — and,
      when instrumentation is on, in the ``objectstore_*`` metric
      families. Modelled time accumulates in :attr:`elapsed_s`
      (optionally slept out with ``sleep=True``).
    """

    def __init__(
        self,
        inner: Storage,
        model: SeekModel | None = None,
        *,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        jitter_fn: Callable[[str, int, int], float] | None = None,
        fault_fn: Callable[[str, int, int], None] | None = None,
        sleep: bool = False,
    ) -> None:
        from repro.obs import families as _fam

        if max_request_bytes <= 0:
            raise ValueError("max_request_bytes must be positive")
        self.inner = inner
        self.model = model or OBJECT_STORE_MODEL
        self.max_request_bytes = max_request_bytes
        self.jitter_fn = jitter_fn
        self.fault_fn = fault_fn
        self.sleep = sleep
        self.elapsed_s = 0.0
        self.requests: list[ObjectRequest] = []
        self._lock = threading.Lock()
        self._get_ops = _fam.OBJECT_REQUESTS.labels(op="get")
        self._put_ops = _fam.OBJECT_REQUESTS.labels(op="put")
        self._get_bytes = _fam.OBJECT_REQUEST_BYTES.labels(op="get")
        self._put_bytes = _fam.OBJECT_REQUEST_BYTES.labels(op="put")
        self._get_secs = _fam.OBJECT_REQUEST_SECONDS.labels(op="get")
        self._put_secs = _fam.OBJECT_REQUEST_SECONDS.labels(op="put")

    # -- passthrough geometry -----------------------------------------
    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @property
    def size(self) -> int:
        return self.inner.size

    def __len__(self) -> int:
        return self.inner.size

    def truncate(self, size: int) -> None:
        self.inner.truncate(size)

    # -- accounting -----------------------------------------------------
    @property
    def request_count(self) -> int:
        with self._lock:
            return len(self.requests)

    def bytes_moved(self, op: str | None = None) -> int:
        with self._lock:
            return sum(
                r.nbytes for r in self.requests if op is None or r.op == op
            )

    def reset_accounting(self) -> None:
        with self._lock:
            self.requests = []
            self.elapsed_s = 0.0

    def _request(self, op: str, offset: int, nbytes: int) -> None:
        """Charge (and log) one request; may raise an injected fault."""
        if self.fault_fn is not None:
            self.fault_fn(op, offset, nbytes)
        cost = self.model.request_cost(nbytes, seeked=False)
        if self.jitter_fn is not None:
            cost += max(0.0, self.jitter_fn(op, offset, nbytes))
        with self._lock:
            self.elapsed_s += cost
            self.requests.append(ObjectRequest(op, offset, nbytes, cost))
        if obs_metrics.enabled():
            if op == "GET":
                self._get_ops.inc()
                self._get_bytes.inc(nbytes)
                self._get_secs.observe(cost)
            else:
                self._put_ops.inc()
                self._put_bytes.inc(nbytes)
                self._put_secs.observe(cost)
        if self.sleep:
            time.sleep(cost)

    # -- I/O ------------------------------------------------------------
    def pread(self, offset: int, length: int) -> bytes:
        """One or more ranged GETs covering ``[offset, offset+length)``.

        Ranges longer than ``max_request_bytes`` split into several
        requests, each paying the fixed per-request latency — which is
        why the coalescing planner caps its runs at this size.
        """
        if length <= self.max_request_bytes:
            self._request("GET", offset, length)
            return self.inner.pread(offset, length)
        parts = []
        pos = offset
        end = offset + length
        while pos < end:
            n = min(self.max_request_bytes, end - pos)
            self._request("GET", pos, n)
            parts.append(self.inner.pread(pos, n))
            pos += n
        return b"".join(parts)

    def pwrite(self, offset: int, data: bytes) -> None:
        self._request("PUT", offset, len(data))
        self.inner.pwrite(offset, data)

    def append(self, data: bytes) -> int:
        self._request("PUT", self.inner.size, len(data))
        return self.inner.append(data)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        inner_close = getattr(self.inner, "close", None)
        if inner_close is not None:
            inner_close()

    def sync(self) -> None:
        inner_sync = getattr(self.inner, "sync", None)
        if inner_sync is not None:
            inner_sync()

    def __enter__(self) -> "ObjectStorage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # pass through the test escape hatches when the backend has them
    def raw_bytes(self) -> bytes:
        return self.inner.raw_bytes()

    def corrupt(self, offset: int, data: bytes) -> None:
        self.inner.corrupt(offset, data)


class InstrumentedStorage:
    """Wrap any backend; publish its I/O into the metrics registry.

    Counts preads/pwrites/appends/syncs, bytes moved, request-size
    distribution and per-op latency histograms, all labeled by backend
    *kind* (``file``, ``memory``, ``latency`` — class-derived, never
    the file name, to keep label cardinality bounded). The inner
    backend's own :class:`IOStats` keep counting unchanged; this
    wrapper adds the process-wide view. Honours the global
    :func:`repro.obs.set_enabled` switch per operation.
    """

    def __init__(self, inner: Storage, backend: str | None = None) -> None:
        from repro.obs import families as _fam  # circular-free, heavy names

        self.inner = inner
        self.backend = backend or _fam.backend_label(inner)
        lbl = {"backend": self.backend}
        self._read_ops = _fam.STORAGE_READ_OPS.labels(**lbl)
        self._read_bytes = _fam.STORAGE_READ_BYTES.labels(**lbl)
        self._read_secs = _fam.STORAGE_READ_SECONDS.labels(**lbl)
        self._write_ops = _fam.STORAGE_WRITE_OPS.labels(**lbl)
        self._write_bytes = _fam.STORAGE_WRITE_BYTES.labels(**lbl)
        self._write_secs = _fam.STORAGE_WRITE_SECONDS.labels(**lbl)
        self._sync_ops = _fam.STORAGE_SYNC_OPS.labels(**lbl)
        self._sync_secs = _fam.STORAGE_SYNC_SECONDS.labels(**lbl)
        self._read_size = _fam.STORAGE_IO_SIZE_BYTES.labels(
            backend=self.backend, op="read"
        )
        self._write_size = _fam.STORAGE_IO_SIZE_BYTES.labels(
            backend=self.backend, op="write"
        )

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    @property
    def size(self) -> int:
        return self.inner.size

    def __len__(self) -> int:
        return self.inner.size

    def pread(self, offset: int, length: int) -> bytes:
        if not obs_metrics.enabled():
            return self.inner.pread(offset, length)
        t0 = time.perf_counter()
        data = self.inner.pread(offset, length)
        self._read_secs.observe(time.perf_counter() - t0)
        self._read_ops.inc()
        self._read_bytes.inc(len(data))
        self._read_size.observe(len(data))
        return data

    def _count_write(self, nbytes: int, t0: float) -> None:
        self._write_secs.observe(time.perf_counter() - t0)
        self._write_ops.inc()
        self._write_bytes.inc(nbytes)
        self._write_size.observe(nbytes)

    def pwrite(self, offset: int, data: bytes) -> None:
        if not obs_metrics.enabled():
            self.inner.pwrite(offset, data)
            return
        t0 = time.perf_counter()
        self.inner.pwrite(offset, data)
        self._count_write(len(data), t0)

    def append(self, data: bytes) -> int:
        if not obs_metrics.enabled():
            return self.inner.append(data)
        t0 = time.perf_counter()
        offset = self.inner.append(data)
        self._count_write(len(data), t0)
        return offset

    def truncate(self, size: int) -> None:
        self.inner.truncate(size)

    def sync(self) -> None:
        inner_sync = getattr(self.inner, "sync", None)
        if inner_sync is None:
            return
        if not obs_metrics.enabled():
            inner_sync()
            return
        t0 = time.perf_counter()
        inner_sync()
        self._sync_secs.observe(time.perf_counter() - t0)
        self._sync_ops.inc()

    def close(self) -> None:
        inner_close = getattr(self.inner, "close", None)
        if inner_close is not None:
            inner_close()

    def __enter__(self) -> "InstrumentedStorage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # pass through the test escape hatches when the backend has them
    def raw_bytes(self) -> bytes:
        return self.inner.raw_bytes()

    def corrupt(self, offset: int, data: bytes) -> None:
        self.inner.corrupt(offset, data)
