"""Storage substrate: one protocol, pluggable backends.

The paper's I/O claims (deletion rewrite cost, metadata pread counts,
multimodal seek behaviour) are about *bytes moved and seeks issued*.
Every Bullion/baseline file in this repo is read and written through
the :class:`Storage` protocol, with three backends:

* :class:`SimulatedStorage` — byte-accurate in-memory block device
  that counts operations and models seek/bandwidth costs (the default
  for tests and benchmarks; see DESIGN.md §3 substitutions),
* :class:`FileStorage` — a real local file via ``os.pread``, for
  running against an actual filesystem,
* :class:`LatencyModelledStorage` — wraps either backend and charges
  (optionally sleeps) modelled device time per operation,
* :class:`ObjectStorage` — an S3-like modelled object store over any
  inner backend where each ranged GET/PUT pays a fixed round trip, so
  request *count* is the bottleneck the read path must engineer down.
"""

from repro.iosim.blockdev import IOStats, SeekModel, SimulatedStorage
from repro.iosim.storage import (
    DEFAULT_MAX_REQUEST_BYTES,
    OBJECT_STORE_MODEL,
    FileStorage,
    InstrumentedStorage,
    LatencyModelledStorage,
    ObjectRequest,
    ObjectStorage,
    ObjectStorageError,
    Storage,
)

__all__ = [
    "Storage",
    "SimulatedStorage",
    "FileStorage",
    "InstrumentedStorage",
    "LatencyModelledStorage",
    "ObjectStorage",
    "ObjectRequest",
    "ObjectStorageError",
    "OBJECT_STORE_MODEL",
    "DEFAULT_MAX_REQUEST_BYTES",
    "IOStats",
    "SeekModel",
]
