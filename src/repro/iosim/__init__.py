"""Simulated storage substrate.

The paper's I/O claims (deletion rewrite cost, metadata pread counts,
multimodal seek behaviour) are about *bytes moved and seeks issued*.
We have no 100 PB HDFS testbed, so every Bullion/baseline file in this
repo is read and written through :class:`SimulatedStorage`, a
byte-accurate block device that counts operations and models seek and
bandwidth costs. See DESIGN.md §3 (substitutions).
"""

from repro.iosim.blockdev import IOStats, SeekModel, SimulatedStorage

__all__ = ["SimulatedStorage", "IOStats", "SeekModel"]
