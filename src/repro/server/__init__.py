"""Serving layer: a concurrent multi-tenant scan/query server.

The paper's workloads end at a serving tier — many tenants issuing
scans and aggregations against shared tables while ingest keeps
committing (§1, §2.4).  This package is that tier for the repro:

* :mod:`repro.server.protocol` — length-prefixed canonical-JSON wire
  protocol, bit-exact column codecs, plan canonicalization, and the
  single-threaded replay oracle the differential tests diff against;
* :mod:`repro.server.cache` — pooled readers (one footer parse per
  file), refcounted pin cache, and keyed plan/result caches with
  exact per-file invalidation;
* :mod:`repro.server.service` — request execution: admission control,
  cooperative deadlines, cache orchestration, mutation-driven
  invalidation;
* :mod:`repro.server.net` — the TCP transport plus an HTTP ``/health``
  + ``/metrics`` probe surface;
* :mod:`repro.server.client` — the synchronous Python client;
* :mod:`repro.server.cli` — the ``repro-serve`` console entry point.
"""

from repro.server.client import QueryReply, ScanReply, ServerClient
from repro.server.net import BullionServer, ClientGone
from repro.server.protocol import (
    BadPlan,
    BadRequest,
    DeadlineExceeded,
    IOFault,
    ProtocolError,
    ServerBusy,
    ServerError,
    UnknownSnapshot,
    UnknownTable,
)
from repro.server.service import AdmissionController, Deadline, TableService

__all__ = [
    "BullionServer",
    "ClientGone",
    "ServerClient",
    "QueryReply",
    "ScanReply",
    "TableService",
    "AdmissionController",
    "Deadline",
    "ProtocolError",
    "ServerError",
    "BadRequest",
    "BadPlan",
    "UnknownTable",
    "UnknownSnapshot",
    "DeadlineExceeded",
    "ServerBusy",
    "IOFault",
]
