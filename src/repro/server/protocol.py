"""Wire protocol for the scan/query server.

Length-prefixed JSON frames over a byte stream: each frame is a 4-byte
big-endian payload length followed by that many bytes of canonical
JSON.  *Canonical* means ``sort_keys`` + compact separators + ASCII —
one logical payload has exactly one byte representation, which is what
lets the differential harness assert that a server response is
**byte-identical** to a single-threaded :class:`PinnedSnapshot` replay
of the same ``(snapshot_id, plan)`` pair.

Payload conventions:

* every request is one object with an ``"op"`` key;
* a single-frame response carries ``"ok": true`` (or an ``"error"``
  object with a typed ``code``);
* a scan response is a frame *stream*: one header frame, one frame per
  batch (``{"batch": …}``), then ``{"end": true, …}``; a typed error
  frame may replace any of them (deadline expiry mid-stream).

Column values travel as raw little-endian bytes (base64) plus a dtype
string, so numpy arrays round-trip bit-exactly — floats never pass
through decimal text.  Scalar values in query rows use a small JSON
escape scheme (``{"$b": …}`` for bytes, ``{"$f": …}`` for non-finite
floats) that is reversible and canonical.

The replay helpers at the bottom rebuild response frames from a pinned
snapshot through the *same* builders the server uses — the shared code
path is the point: the differential tests compare bytes produced by
one encoder fed by two execution paths (concurrent server vs
single-threaded library).
"""

from __future__ import annotations

import base64
import json
import math
import struct

import numpy as np

from repro.core.table import Table

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServerError",
    "BadRequest",
    "BadPlan",
    "UnknownTable",
    "UnknownSnapshot",
    "DeadlineExceeded",
    "ServerBusy",
    "IOFault",
    "ERROR_TYPES",
    "error_for",
    "dumps_canonical",
    "loads",
    "read_frame",
    "send_frame",
    "encode_table",
    "decode_table",
    "jsonify_value",
    "dejsonify_value",
    "canonical_query_plan",
    "canonical_scan_plan",
    "plan_key",
    "expr_from_doc",
    "query_payload",
    "encode_query_rows",
    "scan_payload_iter",
    "replay_query_frame",
    "replay_scan_frames",
]

#: Upper bound on a single frame; a peer announcing more is treated as
#: a protocol violation (garbage or a non-protocol client), not an
#: allocation request.
MAX_FRAME_BYTES = 256 << 20

_LEN = struct.Struct("!I")

#: operations the server understands (used for metric label hygiene)
KNOWN_OPS = (
    "ping",
    "health",
    "metrics",
    "tables",
    "snapshot",
    "scan",
    "query",
)


class ProtocolError(ValueError):
    """Malformed frame or payload on the wire."""


# ---------------------------------------------------------------------------
# typed errors (server-side raise, client-side re-raise)
# ---------------------------------------------------------------------------

class ServerError(Exception):
    """Base of every typed error the server reports to a client."""

    code = "internal"

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    def payload(self) -> dict:
        return {
            "ok": False,
            "error": {"code": self.code, "message": str(self)},
        }


class BadRequest(ServerError):
    """Structurally invalid request (missing/ill-typed fields)."""

    code = "bad_request"


class BadPlan(ServerError):
    """Well-formed request naming an unexecutable plan."""

    code = "bad_plan"


class UnknownTable(ServerError):
    code = "unknown_table"


class UnknownSnapshot(ServerError):
    code = "unknown_snapshot"


class DeadlineExceeded(ServerError):
    code = "deadline_exceeded"


class ServerBusy(ServerError):
    """Admission control refused the request (pool + queue full)."""

    code = "server_busy"

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class IOFault(ServerError):
    """A storage backend failed mid-request (fault injection, EIO)."""

    code = "io_error"


ERROR_TYPES = {
    cls.code: cls
    for cls in (
        ServerError,
        BadRequest,
        BadPlan,
        UnknownTable,
        UnknownSnapshot,
        DeadlineExceeded,
        ServerBusy,
        IOFault,
    )
}


def error_for(code: str, message: str) -> ServerError:
    """Rebuild the typed exception for an error payload (client side)."""
    cls = ERROR_TYPES.get(code, ServerError)
    err = cls(message)
    err.code = code
    return err


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def dumps_canonical(doc) -> bytes:
    """One logical payload → exactly one byte string."""
    return json.dumps(
        doc,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("utf-8")


def loads(payload: bytes) -> dict:
    try:
        doc = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def _recv_exact(sock, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a boundary."""
    parts = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ConnectionError(
                f"peer closed mid-frame ({got}/{n} bytes)"
            )
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)


def read_frame(sock, counter=None) -> bytes | None:
    """One frame's payload bytes, or None when the peer closed cleanly.

    ``counter(n)`` (optional) is called with the total bytes consumed —
    the server feeds ``server_bytes_received_total``.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ConnectionError("peer closed between header and payload")
    if counter is not None:
        counter(_LEN.size + length)
    return payload


def send_frame(sock, payload: bytes, counter=None) -> None:
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame"
        )
    sock.sendall(_LEN.pack(len(payload)) + payload)
    if counter is not None:
        counter(_LEN.size + len(payload))


# ---------------------------------------------------------------------------
# column / table codec (bit-exact)
# ---------------------------------------------------------------------------

def _b64e(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _b64d(text: str) -> bytes:
    try:
        return base64.b64decode(text, validate=True)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"bad base64 column data: {exc}") from None


def _encode_column(values) -> dict:
    if isinstance(values, np.ndarray):
        doc = {"k": "nd", "dt": values.dtype.str, "b": _b64e(values.tobytes())}
        if values.ndim != 1:
            doc["shape"] = list(values.shape)
        return doc
    if isinstance(values, list):
        if values and isinstance(values[0], np.ndarray):
            return {
                "k": "ndl",
                "v": [[v.dtype.str, _b64e(v.tobytes())] for v in values],
            }
        if all(isinstance(v, (bytes, bytearray)) for v in values):
            return {"k": "by", "v": [_b64e(bytes(v)) for v in values]}
    raise ProtocolError(
        f"cannot encode column values of type {type(values).__name__}"
    )


def _decode_column(doc: dict):
    kind = doc.get("k")
    if kind == "nd":
        arr = np.frombuffer(_b64d(doc["b"]), dtype=np.dtype(doc["dt"]))
        shape = doc.get("shape")
        arr = arr.copy()  # frombuffer views are read-only
        if shape is not None:
            arr = arr.reshape(shape)
        return arr
    if kind == "ndl":
        return [
            np.frombuffer(_b64d(b), dtype=np.dtype(dt)).copy()
            for dt, b in doc["v"]
        ]
    if kind == "by":
        return [_b64d(v) for v in doc["v"]]
    raise ProtocolError(f"unknown column kind {kind!r}")


def encode_table(table: Table) -> dict:
    """A batch as JSON: explicit column order + bit-exact payloads."""
    return {
        "cols": [
            [name, _encode_column(values)]
            for name, values in table.columns.items()
        ],
        "rows": table.num_rows,
    }


def decode_table(doc: dict) -> Table:
    try:
        cols = doc["cols"]
    except (KeyError, TypeError):
        raise ProtocolError("batch frame lacks 'cols'") from None
    return Table({name: _decode_column(col) for name, col in cols})


# ---------------------------------------------------------------------------
# scalar value codec (query rows)
# ---------------------------------------------------------------------------

def jsonify_value(v):
    """One query-row scalar → canonical JSON-able value."""
    if v is None or isinstance(v, bool):
        return v
    if isinstance(v, (bytes, bytearray)):
        return {"$b": _b64e(bytes(v))}
    if isinstance(v, (int, np.integer)):
        return int(v)
    if isinstance(v, (float, np.floating)):
        v = float(v)
        if not math.isfinite(v):
            return {"$f": repr(v)}
        return v
    if isinstance(v, str):
        return v
    raise ProtocolError(f"cannot encode scalar {type(v).__name__}")


def dejsonify_value(v):
    if isinstance(v, dict):
        if "$b" in v:
            return _b64d(v["$b"])
        if "$f" in v:
            return float(v["$f"])
        raise ProtocolError(f"unknown scalar escape {sorted(v)}")
    return v


def encode_query_rows(rows: list[dict]) -> list[dict]:
    return [
        {name: jsonify_value(value) for name, value in row.items()}
        for row in rows
    ]


def decode_query_rows(rows: list[dict]) -> list[dict]:
    return [
        {name: dejsonify_value(value) for name, value in row.items()}
        for row in rows
    ]


# ---------------------------------------------------------------------------
# plan canonicalization (cache keys + replay inputs)
# ---------------------------------------------------------------------------

def _normalize_where(where_doc):
    """Round-trip a wire ``where`` through the AST → canonical form."""
    if where_doc is None:
        return None
    from repro.expr import Expr, parse

    try:
        if isinstance(where_doc, str):
            return parse(where_doc).to_dict()
        if isinstance(where_doc, dict):
            return Expr.from_dict(where_doc).to_dict()
    except (KeyError, ValueError, TypeError) as exc:
        raise BadPlan(f"bad where expression: {exc}") from None
    raise BadPlan(
        f"where must be an expression object or string, "
        f"got {type(where_doc).__name__}"
    )


def expr_from_doc(where_doc):
    """The executable :class:`Expr` for a canonical ``where`` doc."""
    if where_doc is None:
        return None
    from repro.expr import Expr

    return Expr.from_dict(where_doc)


def canonical_query_plan(doc: dict) -> dict:
    """Normalize a query request into its canonical plan document.

    The same logical plan — reordered keys, ``"sum( v )"`` spelling
    variants, string vs AST filters — maps to one document, so the
    result cache keys on meaning, not spelling.
    """
    from repro.query.plan import PlanError, QueryPlan

    aggregates = doc.get("aggregates")
    if not isinstance(aggregates, list) or not aggregates:
        raise BadPlan("query needs a non-empty 'aggregates' list")
    group_by = doc.get("group_by") or []
    if isinstance(group_by, str):
        group_by = [group_by]
    if not isinstance(group_by, list) or not all(
        isinstance(g, str) for g in group_by
    ):
        raise BadPlan("group_by must be a list of column names")
    try:
        plan = QueryPlan.build(aggregates, group_by=group_by)
    except PlanError as exc:
        raise BadPlan(str(exc)) from None
    return {
        "aggregates": [a.name for a in plan.aggregates],
        "group_by": list(plan.group_by),
        "where": _normalize_where(doc.get("where")),
    }


def canonical_scan_plan(doc: dict) -> dict:
    columns = doc.get("columns")
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) for c in columns)
    ):
        raise BadPlan("scan needs a non-empty 'columns' list of names")
    batch_size = doc.get("batch_size")
    if batch_size is not None and (
        not isinstance(batch_size, int)
        or isinstance(batch_size, bool)
        or batch_size <= 0
    ):
        raise BadPlan("batch_size must be a positive integer")
    return {
        "columns": list(columns),
        "batch_size": batch_size,
        "where": _normalize_where(doc.get("where")),
        "widen": bool(doc.get("widen_quantized", False)),
    }


def plan_key(kind: str, snapshot_id: int, plan: dict) -> bytes:
    """The ``(snapshot_id, canonical plan)`` cache key."""
    return dumps_canonical([kind, snapshot_id, plan])


# ---------------------------------------------------------------------------
# response payload builders (shared by server and replay)
# ---------------------------------------------------------------------------

def query_payload(snapshot_id: int, wire_rows: list[dict]) -> dict:
    return {
        "ok": True,
        "op": "query",
        "snapshot_id": snapshot_id,
        "rows": wire_rows,
    }


def scan_payload_iter(pin, snapshot_id: int, plan: dict, files=None):
    """The scan response frames for one canonical plan over one pin.

    ``files`` (optional) is the cached pruned file set — the serving
    layer's plan cache; ``None`` derives it from the plan's filter
    exactly as :meth:`PinnedSnapshot.scan` would, so both paths emit
    identical frames.
    """
    columns = plan["columns"]
    where = expr_from_doc(plan["where"])
    scan_kwargs: dict = {}
    if where is not None:
        scan_kwargs["where"] = where
    if plan.get("widen"):
        scan_kwargs["widen_quantized"] = True
    if files is None:
        files = list(pin.snapshot.files)
        if where is not None:
            files, _pruned = pin.prune_files(where)
    yield {
        "ok": True,
        "op": "scan",
        "snapshot_id": snapshot_id,
        "columns": list(columns),
    }
    batches = 0
    rows = 0
    for batch in pin.scan_files(
        files, columns, batch_size=plan.get("batch_size"), **scan_kwargs
    ):
        batches += 1
        rows += batch.num_rows
        yield {"batch": encode_table(batch)}
    yield {"end": True, "batches": batches, "rows": rows}


# ---------------------------------------------------------------------------
# single-threaded replay (the differential oracle)
# ---------------------------------------------------------------------------

def replay_query_frame(pin, snapshot_id: int, plan: dict) -> bytes:
    """The exact response bytes the server must have sent for
    ``(snapshot_id, plan)`` — computed on the library path."""
    result = pin.query(
        plan["aggregates"],
        where=expr_from_doc(plan["where"]),
        group_by=plan["group_by"] or None,
    )
    return dumps_canonical(
        query_payload(snapshot_id, encode_query_rows(result.rows))
    )


def replay_scan_frames(pin, snapshot_id: int, plan: dict) -> list[bytes]:
    """Every scan frame's bytes, via the library path, in order."""
    return [
        dumps_canonical(payload)
        for payload in scan_payload_iter(pin, snapshot_id, plan)
    ]
