"""Python client for the scan/query server.

:class:`ServerClient` is a thin, synchronous wrapper over one
connection: build a request document, send one frame, read the
response frame(s), re-raise typed errors.  Responses keep the raw
payload bytes alongside the decoded values — the differential harness
asserts on the bytes, applications use the decoded tables/rows.

One client is one connection and is **not** thread-safe; concurrency
tests open one client per worker thread, which is also the intended
production shape (the protocol is strictly request/response per
connection).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from repro.core.table import Table
from repro.server import protocol
from repro.server.protocol import ProtocolError

__all__ = ["ServerClient", "QueryReply", "ScanReply"]


@dataclass
class QueryReply:
    """A query response: decoded rows plus the exact payload bytes."""

    snapshot_id: int
    rows: list
    raw: bytes


@dataclass
class ScanReply:
    """A scan response: decoded batches plus every frame's bytes."""

    snapshot_id: int
    columns: list
    batches: list = field(default_factory=list)
    rows: int = 0
    raw_frames: list = field(default_factory=list)

    def to_table(self) -> Table:
        from repro.core.table import concat_tables

        if not self.batches:
            return Table({})
        return concat_tables(self.batches)


def _where_doc(where):
    """Accept an Expr, a filter string, or an AST dict."""
    if where is None or isinstance(where, (str, dict)):
        return where
    to_dict = getattr(where, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    raise TypeError(
        f"where must be an Expr, string or dict, got {type(where).__name__}"
    )


class ServerClient:
    """One connection to a :class:`~repro.server.net.BullionServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 30.0,
        default_deadline_ms: int | None = None,
    ) -> None:
        self.default_deadline_ms = default_deadline_ms
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    #: the underlying socket (fault tests sever it mid-stream)
    @property
    def sock(self) -> socket.socket:
        return self._sock

    # -- plumbing -------------------------------------------------------
    def _send(self, doc: dict) -> None:
        protocol.send_frame(self._sock, protocol.dumps_canonical(doc))

    def _read(self) -> tuple[dict, bytes]:
        payload = protocol.read_frame(self._sock)
        if payload is None:
            raise ConnectionError("server closed the connection")
        doc = protocol.loads(payload)
        err = doc.get("error")
        if err is not None:
            raise protocol.error_for(
                err.get("code", "internal"), err.get("message", "")
            )
        return doc, payload

    def _request(self, doc: dict) -> tuple[dict, bytes]:
        self._send(doc)
        return self._read()

    def _stamp_deadline(self, doc: dict, deadline_ms) -> dict:
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None:
            doc["deadline_ms"] = deadline_ms
        return doc

    # -- simple ops -----------------------------------------------------
    def ping(self, echo=None) -> dict:
        doc = {"op": "ping"}
        if echo is not None:
            doc["echo"] = echo
        return self._request(doc)[0]

    def health(self) -> dict:
        return self._request({"op": "health"})[0]

    def metrics_text(self) -> str:
        return self._request({"op": "metrics"})[0]["text"]

    def tables(self) -> list:
        return self._request({"op": "tables"})[0]["tables"]

    def snapshot(self, table: str, *, snapshot_id=None, as_of=None) -> dict:
        doc = {"op": "snapshot", "table": table}
        if snapshot_id is not None:
            doc["snapshot_id"] = snapshot_id
        if as_of is not None:
            doc["as_of"] = as_of
        return self._request(doc)[0]

    # -- query ----------------------------------------------------------
    def query(
        self,
        table: str,
        aggregates: list,
        *,
        where=None,
        group_by=None,
        snapshot_id=None,
        as_of=None,
        deadline_ms=None,
    ) -> QueryReply:
        doc: dict = {"op": "query", "table": table, "aggregates": aggregates}
        if where is not None:
            doc["where"] = _where_doc(where)
        if group_by:
            doc["group_by"] = group_by
        if snapshot_id is not None:
            doc["snapshot_id"] = snapshot_id
        if as_of is not None:
            doc["as_of"] = as_of
        reply, raw = self._request(self._stamp_deadline(doc, deadline_ms))
        return QueryReply(
            snapshot_id=reply["snapshot_id"],
            rows=protocol.decode_query_rows(reply["rows"]),
            raw=raw,
        )

    # -- scan ------------------------------------------------------------
    def scan(
        self,
        table: str,
        columns: list,
        *,
        where=None,
        batch_size=None,
        widen_quantized=False,
        snapshot_id=None,
        as_of=None,
        deadline_ms=None,
    ) -> ScanReply:
        """Run a scan to completion, collecting every batch.

        Raises the server's typed error if any stream frame carries
        one (e.g. ``deadline_exceeded`` mid-stream).
        """
        doc: dict = {"op": "scan", "table": table, "columns": columns}
        if where is not None:
            doc["where"] = _where_doc(where)
        if batch_size is not None:
            doc["batch_size"] = batch_size
        if widen_quantized:
            doc["widen_quantized"] = True
        if snapshot_id is not None:
            doc["snapshot_id"] = snapshot_id
        if as_of is not None:
            doc["as_of"] = as_of
        self._send(self._stamp_deadline(doc, deadline_ms))
        header, raw = self._read()
        reply = ScanReply(
            snapshot_id=header["snapshot_id"],
            columns=header["columns"],
            raw_frames=[raw],
        )
        while True:
            frame, raw = self._read()
            reply.raw_frames.append(raw)
            if "batch" in frame:
                reply.batches.append(protocol.decode_table(frame["batch"]))
                continue
            if frame.get("end"):
                reply.rows = frame["rows"]
                return reply
            raise ProtocolError(
                f"unexpected scan frame keys {sorted(frame)}"
            )
