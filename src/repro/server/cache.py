"""Server-side caches: pooled readers, pinned snapshots, plans, results.

The serving layer's performance model is "parse metadata once, then
never again until it actually changes":

* :class:`ReaderPool` — one open :class:`BullionReader` per *file*,
  shared across every pin and request.  A catalog data file is
  immutable once committed, so the pool keys on ``file_id`` alone;
  footers are read exactly once per file for the life of the server.
  In-place mutations (compliance scrubs) are handled by the
  :func:`repro.core.chunk_cache.notify_mutation` listener in
  :mod:`repro.server.service`, which maps the mutated device back to
  its pooled file and evicts precisely that entry.
* :class:`PinCache` — one :class:`PinnedSnapshot` per snapshot id,
  refcounted across concurrent requests, LRU-evicted (and only then
  released) once idle.  A cached pin means repeat requests re-read
  **zero** manifests.
* :class:`KeyedCache` — a generic locked LRU used for the scan *plan*
  cache (``(snapshot_id, plan) → pruned file ids``) and the query
  *result* cache (``(snapshot_id, plan) → wire rows``).  Entries
  remember the snapshot's file ids, so invalidation by mutated file is
  exact: only entries whose snapshot contains the file are dropped.

Every structure is thread-safe and publishes hit/miss/invalidation
counters to the ``server_*`` families in :mod:`repro.obs.families`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.chunk_cache import storage_identity
from repro.core.reader import BullionReader
from repro.obs import metrics as obs_metrics
from repro.obs import families as fam

__all__ = ["ReaderPool", "PinCache", "KeyedCache"]


def _count(family, n: float = 1.0, **labels) -> None:
    if not obs_metrics.enabled():
        return
    if labels:
        family.labels(**labels).inc(n)
    else:
        family.inc(n)


# ---------------------------------------------------------------------------
# reader pool (the footer / metadata cache)
# ---------------------------------------------------------------------------

@dataclass
class _PoolEntry:
    reader: BullionReader
    storage: object
    identity: str
    refs: int = 0
    seq: int = 0


class ReaderPool:
    """Shared ``file_id → BullionReader`` pool over one catalog store.

    Implements the ``reader_provider`` protocol consumed by
    :class:`~repro.catalog.table.PinnedSnapshot`: ``acquire(file_id)``
    returns a reader (opening storage + parsing the footer only on the
    first acquire), ``release(file_id, reader)`` returns it.  Entries
    are closed when evicted (LRU over idle entries past ``capacity``),
    invalidated, or the pool closes — never while a pin still holds
    them: an invalidated-but-busy entry drains and closes on its last
    release.
    """

    def __init__(
        self,
        store,
        *,
        capacity: int = 128,
        chunk_cache=None,
        reader_options: dict | None = None,
    ) -> None:
        self._store = store
        self._capacity = max(1, capacity)
        self._chunk_cache = chunk_cache
        self._reader_options = dict(reader_options or {})
        self._lock = threading.Lock()
        self._live: OrderedDict[str, _PoolEntry] = OrderedDict()
        #: invalidated/evicted entries still referenced by some pin
        self._draining: list[_PoolEntry] = []
        #: every device identity this pool ever opened → file id; kept
        #: past eviction so mutation notifications stay resolvable
        self._identity_to_file: dict[str, str] = {}
        self._seq = 0
        self._closed = False

    # -- provider protocol ----------------------------------------------
    def acquire(self, file_id: str) -> BullionReader:
        with self._lock:
            if self._closed:
                raise RuntimeError("reader pool is closed")
            entry = self._live.get(file_id)
            if entry is not None:
                entry.refs += 1
                self._seq += 1
                entry.seq = self._seq
                self._live.move_to_end(file_id)
                _count(fam.SERVER_FOOTER_CACHE_HITS)
                return entry.reader
        # open outside the lock: footer reads can be slow (object
        # store) and must not serialize unrelated acquires
        storage = self._store.open_data(file_id)
        try:
            reader = BullionReader(
                storage,
                chunk_cache=self._chunk_cache,
                **self._reader_options,
            )
        except BaseException:
            close = getattr(storage, "close", None)
            if close is not None:
                close()
            raise
        identity = storage_identity(storage)
        _count(fam.SERVER_FOOTER_CACHE_MISSES)
        with self._lock:
            racer = self._live.get(file_id)
            if racer is not None:
                # another thread opened it first; ours drains when the
                # pin that triggered this call releases it
                racer.refs += 1
                entry = _PoolEntry(reader, storage, identity, refs=1)
                self._draining.append(entry)
                self._publish()
                return racer.reader
            self._seq += 1
            entry = _PoolEntry(
                reader, storage, identity, refs=1, seq=self._seq
            )
            self._live[file_id] = entry
            self._identity_to_file[identity] = file_id
            closable = self._evict_over_capacity()
            self._publish()
        self._close_all(closable)
        return entry.reader

    def release(self, file_id: str, reader) -> None:
        closable = []
        with self._lock:
            entry = self._live.get(file_id)
            if entry is not None and (
                reader is None or entry.reader is reader
            ):
                entry.refs = max(0, entry.refs - 1)
            else:
                for entry in self._draining:
                    if entry.reader is reader or (
                        reader is None and entry.refs > 0
                    ):
                        entry.refs = max(0, entry.refs - 1)
                        break
                self._draining, done = (
                    [e for e in self._draining if e.refs > 0],
                    [e for e in self._draining if e.refs <= 0],
                )
                closable.extend(done)
            closable.extend(self._evict_over_capacity())
            self._publish()
        self._close_all(closable)

    # -- maintenance ----------------------------------------------------
    def file_for_identity(self, identity: str) -> str | None:
        with self._lock:
            return self._identity_to_file.get(identity)

    def invalidate_file(self, file_id: str) -> bool:
        """Drop one entry (closing now if idle, else when drained)."""
        closable = []
        with self._lock:
            entry = self._live.pop(file_id, None)
            if entry is None:
                return False
            if entry.refs > 0:
                self._draining.append(entry)
            else:
                closable.append(entry)
            self._publish()
        self._close_all(closable)
        return True

    def invalidate_identity(self, identity: str) -> str | None:
        """Drop the entry whose device matches; returns its file id."""
        file_id = self.file_for_identity(identity)
        if file_id is None:
            return None
        self.invalidate_file(file_id)
        return file_id

    def close(self) -> None:
        with self._lock:
            self._closed = True
            closable = [e for e in self._live.values() if e.refs <= 0]
            draining = [e for e in self._live.values() if e.refs > 0]
            self._live.clear()
            self._draining.extend(draining)
            self._publish()
        self._close_all(closable)

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)

    # -- internals ------------------------------------------------------
    def _evict_over_capacity(self) -> list[_PoolEntry]:
        # caller holds the lock
        closable = []
        while len(self._live) > self._capacity:
            victim_id = next(
                (fid for fid, e in self._live.items() if e.refs <= 0),
                None,
            )
            if victim_id is None:
                break  # everything busy: allow temporary overflow
            closable.append(self._live.pop(victim_id))
        return closable

    def _publish(self) -> None:
        if obs_metrics.enabled():
            fam.SERVER_POOLED_READERS.set(
                len(self._live) + len(self._draining)
            )

    @staticmethod
    def _close_all(entries) -> None:
        for entry in entries:
            close = getattr(entry.storage, "close", None)
            if close is not None:
                close()


# ---------------------------------------------------------------------------
# pin cache (snapshots held open)
# ---------------------------------------------------------------------------

@dataclass
class _PinEntry:
    pin: object
    refs: int = 0
    seq: int = 0
    file_ids: frozenset = field(default_factory=frozenset)


class PinCache:
    """Refcounted ``snapshot_id → PinnedSnapshot`` LRU for one table."""

    def __init__(self, table, capacity: int = 4) -> None:
        self._table = table
        self._capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._live: dict[int, _PinEntry] = {}
        self._draining: list[_PinEntry] = []
        self._seq = 0
        self._closed = False

    def acquire(self, snapshot_id: int):
        """The cached pin for a snapshot (pinning afresh on miss)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pin cache is closed")
            entry = self._live.get(snapshot_id)
            if entry is not None:
                entry.refs += 1
                self._seq += 1
                entry.seq = self._seq
                _count(fam.SERVER_PIN_CACHE_HITS)
                return entry.pin
        _count(fam.SERVER_PIN_CACHE_MISSES)
        pin = self._table.pin(snapshot_id=snapshot_id)
        releasable = []
        with self._lock:
            racer = self._live.get(snapshot_id)
            if racer is not None:
                racer.refs += 1
                entry = _PinEntry(pin, refs=0)  # ours is redundant
                releasable.append(entry)
                keep = racer.pin
            else:
                self._seq += 1
                entry = _PinEntry(
                    pin,
                    refs=1,
                    seq=self._seq,
                    file_ids=frozenset(pin.snapshot.file_ids()),
                )
                self._live[snapshot_id] = entry
                keep = pin
                releasable.extend(self._evict_over_capacity())
        for e in releasable:
            e.pin.release()
        return keep

    def release(self, snapshot_id: int, pin) -> None:
        releasable = []
        with self._lock:
            entry = self._live.get(snapshot_id)
            if entry is not None and entry.pin is pin:
                entry.refs = max(0, entry.refs - 1)
            else:
                for entry in self._draining:
                    if entry.pin is pin:
                        entry.refs = max(0, entry.refs - 1)
                        break
                self._draining, done = (
                    [e for e in self._draining if e.refs > 0],
                    [e for e in self._draining if e.refs <= 0],
                )
                releasable.extend(done)
            releasable.extend(self._evict_over_capacity())
        for e in releasable:
            e.pin.release()

    def lease(self, snapshot_id: int):
        """Context manager: acquire on enter, release on exit."""
        return _PinLease(self, snapshot_id)

    def invalidate_files(self, file_ids) -> int:
        """Drop cached pins whose snapshot references any of
        ``file_ids`` (released once idle); the count dropped."""
        file_ids = set(file_ids)
        releasable = []
        dropped = 0
        with self._lock:
            for sid in [
                sid
                for sid, e in self._live.items()
                if e.file_ids & file_ids
            ]:
                entry = self._live.pop(sid)
                dropped += 1
                if entry.refs > 0:
                    self._draining.append(entry)
                else:
                    releasable.append(entry)
        for e in releasable:
            e.pin.release()
        return dropped

    def cached_snapshot_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._live)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            releasable = [
                e for e in self._live.values() if e.refs <= 0
            ]
            self._draining.extend(
                e for e in self._live.values() if e.refs > 0
            )
            self._live.clear()
        for e in releasable:
            e.pin.release()

    def _evict_over_capacity(self) -> list[_PinEntry]:
        # caller holds the lock
        releasable = []
        while len(self._live) > self._capacity:
            idle = [
                (e.seq, sid)
                for sid, e in self._live.items()
                if e.refs <= 0
            ]
            if not idle:
                break
            _seq, victim = min(idle)
            releasable.append(self._live.pop(victim))
        return releasable


class _PinLease:
    __slots__ = ("_cache", "_sid", "pin")

    def __init__(self, cache: PinCache, snapshot_id: int):
        self._cache = cache
        self._sid = snapshot_id
        # acquire eagerly: a lease exists iff it holds its pin, so a
        # caller may use ``.pin`` before/without entering the context
        self.pin = cache.acquire(snapshot_id)

    def __enter__(self):
        return self.pin

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        if self.pin is not None:
            pin, self.pin = self.pin, None
            self._cache.release(self._sid, pin)


# ---------------------------------------------------------------------------
# keyed LRU (plan + result caches)
# ---------------------------------------------------------------------------

class KeyedCache:
    """Locked LRU of ``key → value`` with per-entry file-id tags.

    ``hits``/``misses`` name the ``server_*`` counter families to feed;
    ``invalidate_files`` drops exactly the entries tagged with an
    affected file (the snapshot's file set at insert time).
    """

    def __init__(self, capacity: int, hits, misses, label: str):
        self._capacity = max(0, capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, tuple[object, frozenset]] = (
            OrderedDict()
        )
        self._hits = hits
        self._misses = misses
        self.label = label

    def get(self, key: bytes):
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                _count(self._misses)
                return None
            self._entries.move_to_end(key)
        _count(self._hits)
        return hit[0]

    def put(self, key: bytes, value, file_ids=()) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = (value, frozenset(file_ids))
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate_files(self, file_ids) -> int:
        file_ids = set(file_ids)
        with self._lock:
            stale = [
                key
                for key, (_v, tags) in self._entries.items()
                if tags & file_ids
            ]
            for key in stale:
                del self._entries[key]
        if stale:
            _count(
                fam.SERVER_CACHE_INVALIDATIONS,
                len(stale),
                cache=self.label,
            )
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
