"""Socket transport for the scan/query server.

:class:`BullionServer` binds a listening socket, accepts connections on
a background thread and serves each connection on its own thread —
requests on one connection are sequential (the protocol is strictly
request/response), concurrency comes from many connections, bounded by
the service's admission controller.

Besides the length-prefixed frame protocol the port speaks just enough
HTTP/1.x for infrastructure probes: a peer whose first bytes look like
``GET `` receives ``/health`` (JSON) or ``/metrics`` (Prometheus text
exposition) over a one-shot HTTP response.  Sniffing uses ``MSG_PEEK``
so the frame path never loses bytes.

Per-request accounting (all ``server_*`` families): every request
increments ``server_requests_total{op}`` once and exactly one outcome
of ``server_responses_total{ok|error|rejected|cancelled}``; latency
lands in ``server_request_seconds{op}``; frame bytes feed the
``server_bytes_*_total`` counters.  Client disconnects are detected
*between* scan frames (``select`` + ``MSG_PEEK``), so an abandoned
stream stops promptly, releases its pin lease and worker slot, and
counts as ``cancelled`` — never as a leak.
"""

from __future__ import annotations

import select
import socket
import threading
import time

from repro.obs import metrics as obs_metrics
from repro.obs import families as fam

from repro.server import protocol
from repro.server.protocol import (
    KNOWN_OPS,
    BadRequest,
    ProtocolError,
    ServerBusy,
    ServerError,
)
from repro.server.service import TableService

__all__ = ["BullionServer", "ClientGone"]


class ClientGone(Exception):
    """The peer vanished mid-request (reset, shutdown, EOF)."""


def _count_bytes(family):
    if not obs_metrics.enabled():
        return None
    return family.inc


def _observe(op: str, started: float) -> None:
    if obs_metrics.enabled():
        fam.SERVER_REQUEST_SECONDS.labels(op=op).observe(
            time.perf_counter() - started
        )


def _outcome(kind: str) -> None:
    if obs_metrics.enabled():
        fam.SERVER_RESPONSES.labels(outcome=kind).inc()


class BullionServer:
    """Serve a :class:`TableService` on a TCP port.

    ``port=0`` (the default) binds an ephemeral port; the bound address
    is ``.host`` / ``.port``.  ``close()`` stops accepting, shuts down
    every live connection and joins all threads — tests assert no
    thread or fd survives it.
    """

    #: how often the accept loop wakes to notice shutdown
    _ACCEPT_TICK_S = 0.2

    def __init__(
        self,
        service: TableService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 128,
    ) -> None:
        self.service = service
        self._sock = socket.create_server((host, port), backlog=backlog)
        self._sock.settimeout(self._ACCEPT_TICK_S)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._conn_threads: set[threading.Thread] = set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="bullion-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "BullionServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, *, close_service: bool = True) -> None:
        """Stop accepting, drop every connection, join every thread."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._accept_thread.join(timeout=10.0)
        self._sock.close()
        with self._lock:
            conns = list(self._conns)
            threads = list(self._conn_threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=10.0)
        if close_service:
            self.service.close()

    # -- accept loop ----------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if self._closed.is_set():
                conn.close()
                break
            thread = threading.Thread(
                target=self._serve_conn,
                args=(conn, addr),
                name=f"bullion-conn-{addr[1]}",
                daemon=True,
            )
            with self._lock:
                self._conns.add(conn)
                self._conn_threads.add(thread)
            if obs_metrics.enabled():
                fam.SERVER_CONNS_OPENED.inc()
                fam.SERVER_CONNS.set(len(self._conns))
            thread.start()

    # -- per-connection loop --------------------------------------------
    def _serve_conn(self, conn: socket.socket, addr) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._sniff_http(conn):
                return
            while not self._closed.is_set():
                try:
                    payload = protocol.read_frame(
                        conn, _count_bytes(fam.SERVER_BYTES_RECEIVED)
                    )
                except (ConnectionError, OSError):
                    break
                if payload is None:
                    break  # clean EOF between frames
                if not self._handle_frame(conn, payload):
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._conns.discard(conn)
                self._conn_threads.discard(threading.current_thread())
                live = len(self._conns)
            if obs_metrics.enabled():
                fam.SERVER_CONNS_CLOSED.inc()
                fam.SERVER_CONNS.set(live)

    def _handle_frame(self, conn, payload: bytes) -> bool:
        """Serve one request frame; False ends the connection."""
        started = time.perf_counter()
        try:
            doc = protocol.loads(payload)
        except ProtocolError as exc:
            self._bump_request("unknown")
            self._send_error(conn, BadRequest(str(exc)))
            _outcome("error")
            _observe("unknown", started)
            return False  # framing is broken; don't trust the stream
        op = doc.get("op")
        metric_op = op if op in KNOWN_OPS else "unknown"
        self._bump_request(metric_op)
        try:
            if op == "scan":
                alive = self._serve_scan(conn, doc)
            else:
                self._serve_single(conn, op, doc)
                alive = True
            _outcome("ok")
            return alive
        except ClientGone:
            if obs_metrics.enabled():
                fam.SERVER_CANCELLED.inc()
            _outcome("cancelled")
            return False
        except ServerBusy as exc:
            _outcome("rejected")
            return self._send_error(conn, exc)
        except ServerError as exc:
            if obs_metrics.enabled():
                fam.SERVER_ERRORS.labels(code=exc.code).inc()
            _outcome("error")
            return self._send_error(conn, exc)
        except (ProtocolError, ValueError, TypeError) as exc:
            return self._fail(conn, BadRequest(str(exc)))
        except OSError as exc:
            # storage fault (injected or real) — the connection itself
            # is healthy, so report and keep serving
            return self._fail(conn, protocol.IOFault(str(exc)))
        except Exception as exc:  # noqa: BLE001 — last-resort boundary
            return self._fail(
                conn, ServerError(f"internal error: {exc!r}")
            )
        finally:
            _observe(metric_op, started)

    def _fail(self, conn, err: ServerError) -> bool:
        if obs_metrics.enabled():
            fam.SERVER_ERRORS.labels(code=err.code).inc()
        _outcome("error")
        return self._send_error(conn, err)

    @staticmethod
    def _bump_request(metric_op: str) -> None:
        if obs_metrics.enabled():
            fam.SERVER_REQUESTS.labels(op=metric_op).inc()

    def _send(self, conn, doc) -> None:
        try:
            protocol.send_frame(
                conn,
                protocol.dumps_canonical(doc),
                _count_bytes(fam.SERVER_BYTES_SENT),
            )
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise ClientGone(str(exc)) from None

    def _send_error(self, conn, err: ServerError) -> bool:
        try:
            self._send(conn, err.payload())
        except ClientGone:
            return False
        return True

    # -- dispatch -------------------------------------------------------
    def _serve_single(self, conn, op, doc) -> None:
        service = self.service
        if op == "ping":
            self._send(conn, service.ping(doc))
        elif op == "health":
            self._send(conn, service.health())
        elif op == "metrics":
            self._send(
                conn,
                {"ok": True, "op": "metrics", "text": service.metrics_text()},
            )
        elif op == "tables":
            self._send(conn, service.tables())
        elif op == "snapshot":
            self._send(conn, service.snapshot_info(doc))
        elif op == "query":
            deadline = service.deadline_for(doc)
            service.admission.acquire(deadline)
            try:
                payload = service.query(doc, deadline)
            finally:
                service.admission.release()
            self._send(conn, payload)
        else:
            raise BadRequest(f"unknown op {op!r}")

    def _serve_scan(self, conn, doc) -> bool:
        """Stream a scan; True iff the connection can serve more."""
        service = self.service
        deadline = service.deadline_for(doc)
        service.admission.acquire(deadline)
        payloads = None
        try:
            _sid, payloads = service.scan(
                doc, deadline, checkpoint=lambda: self._check_client(conn)
            )
            for payload in payloads:
                self._send(conn, payload)
            return True
        finally:
            if payloads is not None:
                payloads.close()
            service.admission.release()

    # -- HTTP probe surface ---------------------------------------------
    def _sniff_http(self, conn) -> bool:
        """Serve one HTTP probe if the peer speaks HTTP; True if handled.

        Peeks the first four bytes (``MSG_PEEK``, so the frame path
        loses nothing).  ``b"GET "`` cannot be a legal frame header —
        as a length it exceeds ``MAX_FRAME_BYTES`` — so the sniff is
        unambiguous.
        """
        try:
            conn.settimeout(5.0)
            head = b""
            while len(head) < 4:
                head = conn.recv(4, socket.MSG_PEEK)
                if not head:
                    return True  # peer left before the first request
                if b"GET "[: len(head)] != head:
                    break  # definitely a frame header
        except socket.timeout:
            return True
        except OSError:
            return True
        finally:
            try:
                conn.settimeout(None)
            except OSError:
                return True
        if not head.startswith(b"GET "):
            return False
        try:
            conn.settimeout(5.0)
            request = b""
            while b"\r\n\r\n" not in request and len(request) < 65536:
                chunk = conn.recv(4096)
                if not chunk:
                    return True
                request += chunk
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split()
            path = parts[1] if len(parts) >= 2 else "/"
            self._bump_request("http")
            status, ctype, body = self._http_response(path)
            head_lines = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            conn.sendall(head_lines.encode("latin-1") + body)
            if obs_metrics.enabled():
                fam.SERVER_BYTES_SENT.inc(len(body))
            _outcome("ok")
        except OSError:
            pass
        return True

    def _http_response(self, path: str) -> tuple[str, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/health":
            return (
                "200 OK",
                "application/json",
                protocol.dumps_canonical(self.service.health()),
            )
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4",
                self.service.metrics_text().encode("utf-8"),
            )
        return ("404 Not Found", "text/plain", b"not found\n")

    @staticmethod
    def _check_client(conn) -> None:
        """Raise :class:`ClientGone` if the peer hung up.

        Between scan frames the only legal peer byte is a new request
        (never sent mid-stream by our client), so readability with an
        empty read — or readability at all, conservatively treated as
        a pipelining violation — means the stream is abandoned.
        """
        try:
            readable, _w, errored = select.select([conn], [], [conn], 0)
            if errored:
                raise ClientGone("socket error")
            if readable:
                peeked = conn.recv(1, socket.MSG_PEEK)
                if not peeked:
                    raise ClientGone("peer closed mid-stream")
        except (OSError, ValueError) as exc:
            raise ClientGone(str(exc)) from None
