"""Request execution for the scan/query server.

:class:`TableService` is the transport-independent half of the server:
it owns the open :class:`~repro.catalog.table.CatalogTable` handles and
every cache in :mod:`repro.server.cache`, admits requests through a
bounded worker pool, and turns request documents into response payload
dicts (or, for scans, a lazy payload stream).  :mod:`repro.server.net`
wraps it in sockets; the tests drive it directly.

Concurrency model
-----------------

* Readers are immutable after construction and pins are refcounted, so
  any number of requests share one reader/pin freely; the caches are
  the only mutable shared state and each is internally locked.
* Admission control bounds the number of *executing* scan/query
  requests (``workers``) plus a bounded wait queue (``max_queue``);
  beyond that, requests fail fast with a typed ``server_busy`` error
  rather than queueing unboundedly — the paper's "serve many tenants
  predictably" stance.
* Deadlines are cooperative: :class:`Deadline` is checked at batch
  boundaries and before/after cache and I/O steps.  A deadline that
  expires inside a chunk fetch surfaces as soon as that fetch returns.

Cache invalidation is event-driven, not polled: the service registers
a :func:`repro.core.chunk_cache.add_mutation_listener` hook, so the
writer-finish and deletion-scrub call sites that already invalidate the
process chunk cache also invalidate exactly the affected pooled
readers, cached pins, plans and results — fingerprint keys make a
stale read structurally impossible, this layer makes it *cheap*.
"""

from __future__ import annotations

import threading
import time

from repro.core import chunk_cache as core_chunk_cache
from repro.core.chunk_cache import storage_identity
from repro.obs import metrics as obs_metrics
from repro.obs import families as fam
from repro.expr import VectorEvalError
from repro.query.plan import PlanError

from repro.server import protocol
from repro.server.cache import KeyedCache, PinCache, ReaderPool
from repro.server.protocol import (
    BadPlan,
    BadRequest,
    DeadlineExceeded,
    ServerBusy,
    UnknownSnapshot,
    UnknownTable,
)

__all__ = ["Deadline", "AdmissionController", "TableService"]


class Deadline:
    """Cooperative per-request deadline on the monotonic clock."""

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float | None):
        self._expires_at = (
            None if seconds is None else time.monotonic() + max(0.0, seconds)
        )

    def remaining(self) -> float | None:
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        rem = self.remaining()
        return rem is not None and rem <= 0

    def check(self) -> None:
        if self.expired():
            if obs_metrics.enabled():
                fam.SERVER_DEADLINE_EXPIRED.inc()
            raise DeadlineExceeded("request deadline exceeded")


class AdmissionController:
    """Bounded worker pool + bounded wait queue (fail-fast beyond).

    ``acquire`` returns once the request holds one of the ``workers``
    execution slots.  At most ``max_queue`` requests wait for a slot at
    a time; a request that would overflow the queue, or that waits
    longer than ``queue_timeout_s``, is rejected with a typed
    ``server_busy`` error naming the reason.
    """

    def __init__(
        self,
        workers: int,
        max_queue: int,
        queue_timeout_s: float = 5.0,
    ) -> None:
        self.workers = max(1, workers)
        self.max_queue = max(0, max_queue)
        self.queue_timeout_s = queue_timeout_s
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0

    def acquire(self, deadline: Deadline | None = None) -> None:
        with self._cond:
            if self._inflight < self.workers:
                self._inflight += 1
                self._publish()
                return
            if self._queued >= self.max_queue:
                self._reject("queue_full")
            self._queued += 1
            self._publish()
            try:
                timeout = self.queue_timeout_s
                rem = deadline.remaining() if deadline is not None else None
                if rem is not None:
                    timeout = min(timeout, max(0.0, rem))
                end = time.monotonic() + timeout
                while self._inflight >= self.workers:
                    wait = end - time.monotonic()
                    if wait <= 0 or not self._cond.wait(wait):
                        if wait <= 0:
                            self._reject("queue_timeout")
                self._inflight += 1
            finally:
                self._queued -= 1
                self._publish()

    def release(self) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            self._publish()
            self._cond.notify()

    def stats(self) -> dict:
        with self._cond:
            return {"inflight": self._inflight, "queued": self._queued}

    def _reject(self, reason: str):
        if obs_metrics.enabled():
            fam.SERVER_REJECTED.labels(reason=reason).inc()
        raise ServerBusy(
            f"server at capacity ({self.workers} workers, "
            f"{self.max_queue} queued)",
            reason=reason,
        )

    def _publish(self) -> None:
        # caller holds the condition's lock
        if obs_metrics.enabled():
            fam.SERVER_INFLIGHT.set(self._inflight)
            fam.SERVER_QUEUED.set(self._queued)


class _TableState:
    """Everything the service holds open for one served table."""

    def __init__(
        self,
        name: str,
        table,
        *,
        pin_cache_entries: int,
        plan_cache_entries: int,
        result_cache_entries: int,
        reader_pool_capacity: int,
    ) -> None:
        self.name = name
        self.table = table
        self.prior_provider = table.reader_provider
        self.pool = ReaderPool(
            table.store,
            capacity=reader_pool_capacity,
            chunk_cache=table.chunk_cache,
            reader_options=table.reader_options,
        )
        table.reader_provider = self.pool
        self.pins = PinCache(table, capacity=pin_cache_entries)
        self.plans = KeyedCache(
            plan_cache_entries,
            fam.SERVER_PLAN_CACHE_HITS,
            fam.SERVER_PLAN_CACHE_MISSES,
            "plans",
        )
        self.results = KeyedCache(
            result_cache_entries,
            fam.SERVER_RESULT_CACHE_HITS,
            fam.SERVER_RESULT_CACHE_MISSES,
            "results",
        )

    def close(self) -> None:
        self.results.clear()
        self.plans.clear()
        self.pins.close()
        self.table.reader_provider = self.prior_provider
        self.pool.close()


class TableService:
    """Multi-tenant scan/query execution over open catalog tables.

    ``tables`` maps served name → :class:`CatalogTable`.  The service
    installs itself as each table's ``reader_provider`` (restored on
    :meth:`close`), so *every* pin taken through the service shares one
    footer parse per file.
    """

    def __init__(
        self,
        tables: dict,
        *,
        workers: int = 4,
        max_queue: int = 8,
        queue_timeout_s: float = 5.0,
        default_deadline_s: float | None = 30.0,
        pin_cache_entries: int = 4,
        plan_cache_entries: int = 64,
        result_cache_entries: int = 256,
        reader_pool_capacity: int = 128,
    ) -> None:
        if not tables:
            raise ValueError("serve at least one table")
        self.admission = AdmissionController(
            workers, max_queue, queue_timeout_s
        )
        self.default_deadline_s = default_deadline_s
        self._tables: dict[str, _TableState] = {}
        for name, table in tables.items():
            self._tables[name] = _TableState(
                name,
                table,
                pin_cache_entries=pin_cache_entries,
                plan_cache_entries=plan_cache_entries,
                result_cache_entries=result_cache_entries,
                reader_pool_capacity=reader_pool_capacity,
            )
        self._started_at = time.monotonic()
        self._closed = False
        core_chunk_cache.add_mutation_listener(self._on_mutation)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        core_chunk_cache.remove_mutation_listener(self._on_mutation)
        for state in self._tables.values():
            state.close()

    def __enter__(self) -> "TableService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- invalidation ---------------------------------------------------
    def _on_mutation(self, storage) -> None:
        """An in-place mutation (scrub) hit ``storage``: evict exactly
        the pooled reader, pins, plans and results that touch it."""
        identity = storage_identity(storage)
        for state in self._tables.values():
            file_id = state.pool.invalidate_identity(identity)
            if file_id is None:
                continue
            if obs_metrics.enabled():
                fam.SERVER_CACHE_INVALIDATIONS.labels(cache="readers").inc()
            dropped_pins = state.pins.invalidate_files([file_id])
            if dropped_pins and obs_metrics.enabled():
                fam.SERVER_CACHE_INVALIDATIONS.labels(cache="pins").inc(
                    dropped_pins
                )
            state.plans.invalidate_files([file_id])
            state.results.invalidate_files([file_id])

    # -- request plumbing ----------------------------------------------
    def deadline_for(self, doc: dict) -> Deadline:
        ms = doc.get("deadline_ms")
        if ms is None:
            return Deadline(self.default_deadline_s)
        if not isinstance(ms, (int, float)) or isinstance(ms, bool) or ms <= 0:
            raise BadRequest("deadline_ms must be a positive number")
        return Deadline(float(ms) / 1000.0)

    def _state(self, doc: dict) -> _TableState:
        name = doc.get("table")
        if not isinstance(name, str):
            raise BadRequest("request needs a 'table' name")
        state = self._tables.get(name)
        if state is None:
            raise UnknownTable(f"no table named {name!r} is served")
        return state

    def _resolve_snapshot_id(self, state: _TableState, doc: dict) -> int:
        sid = doc.get("snapshot_id")
        as_of = doc.get("as_of")
        if sid is not None and as_of is not None:
            raise BadRequest("pass at most one of snapshot_id/as_of")
        try:
            if sid is not None:
                if not isinstance(sid, int) or isinstance(sid, bool):
                    raise BadRequest("snapshot_id must be an integer")
                return state.table.snapshot(sid).snapshot_id
            if as_of is not None:
                if not isinstance(as_of, int) or isinstance(as_of, bool):
                    raise BadRequest("as_of must be a millisecond timestamp")
                return state.table.as_of(as_of).snapshot_id
            return state.table.current_snapshot().snapshot_id
        except (FileNotFoundError, LookupError) as exc:
            raise UnknownSnapshot(str(exc)) from None

    def _lease(self, state: _TableState, snapshot_id: int):
        try:
            return state.pins.lease(snapshot_id)
        except (FileNotFoundError, LookupError) as exc:
            raise UnknownSnapshot(str(exc)) from None

    # -- simple ops -----------------------------------------------------
    def ping(self, doc: dict) -> dict:
        payload = {"ok": True, "op": "ping"}
        if "echo" in doc:
            payload["echo"] = doc["echo"]
        return payload

    def health(self) -> dict:
        admission = self.admission.stats()
        return {
            "ok": True,
            "op": "health",
            "status": "serving",
            "tables": sorted(self._tables),
            "inflight": admission["inflight"],
            "queued": admission["queued"],
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3
            ),
        }

    def metrics_text(self) -> str:
        return obs_metrics.default_registry().export_text()

    def tables(self) -> dict:
        out = []
        for name in sorted(self._tables):
            state = self._tables[name]
            try:
                snap = state.table.current_snapshot()
            except (FileNotFoundError, RuntimeError):
                out.append({"name": name})
                continue
            out.append({
                "name": name,
                "snapshot_id": snap.snapshot_id,
                "files": len(snap.files),
                "rows": sum(f.row_count for f in snap.files),
            })
        return {"ok": True, "op": "tables", "tables": out}

    def snapshot_info(self, doc: dict) -> dict:
        state = self._state(doc)
        sid = self._resolve_snapshot_id(state, doc)
        snap = state.table.snapshot(sid)
        return {
            "ok": True,
            "op": "snapshot",
            "table": state.name,
            "snapshot_id": snap.snapshot_id,
            "parent_id": snap.parent_id,
            "operation": snap.operation,
            "timestamp_ms": snap.timestamp_ms,
            "files": len(snap.files),
            "rows": sum(f.row_count for f in snap.files),
        }

    # -- query ----------------------------------------------------------
    def query(self, doc: dict, deadline: Deadline) -> dict:
        """One aggregation request → its full response payload.

        Results are cached on ``(snapshot_id, canonical plan)``; a hit
        re-serves the stored wire rows without pinning anything.
        """
        state = self._state(doc)
        plan = protocol.canonical_query_plan(doc)
        sid = self._resolve_snapshot_id(state, doc)
        deadline.check()
        key = protocol.plan_key("query", sid, plan)
        wire_rows = state.results.get(key)
        if wire_rows is None:
            lease = self._lease(state, sid)
            with lease as pin:
                try:
                    result = pin.query(
                        plan["aggregates"],
                        where=protocol.expr_from_doc(plan["where"]),
                        group_by=plan["group_by"] or None,
                    )
                except (PlanError, VectorEvalError) as exc:
                    raise BadPlan(str(exc)) from None
                deadline.check()
                wire_rows = protocol.encode_query_rows(result.rows)
                state.results.put(
                    key, wire_rows, pin.snapshot.file_ids()
                )
        deadline.check()
        return protocol.query_payload(sid, wire_rows)

    # -- scan ------------------------------------------------------------
    def scan(self, doc: dict, deadline: Deadline, checkpoint=None):
        """One scan request → ``(snapshot_id, payload iterator)``.

        The iterator yields the header payload, one payload per batch
        and the end payload — lazily, so a slow client never buffers
        the whole result.  ``checkpoint()`` (optional) runs between
        payloads; the transport uses it to detect a gone client.  The
        pin lease is released when the iterator is exhausted *or*
        closed early (disconnect, deadline, error).
        """
        state = self._state(doc)
        plan = protocol.canonical_scan_plan(doc)
        sid = self._resolve_snapshot_id(state, doc)
        deadline.check()

        files = None
        if plan["where"] is not None:
            pkey = protocol.plan_key("scan_files", sid, plan["where"])
            kept_ids = state.plans.get(pkey)
            if kept_ids is not None:
                files = _files_by_id(state, sid, kept_ids)
        lease = self._lease(state, sid)
        try:
            if files is None and plan["where"] is not None:
                kept, _pruned = lease.pin.prune_files(
                    protocol.expr_from_doc(plan["where"])
                )
                files = kept
                state.plans.put(
                    pkey,
                    tuple(f.file_id for f in kept),
                    lease.pin.snapshot.file_ids(),
                )
        except BaseException:
            lease.release()
            raise
        return sid, self._scan_payloads(
            lease, sid, plan, files, deadline, checkpoint
        )

    def _scan_payloads(
        self, lease, sid, plan, files, deadline, checkpoint
    ):
        try:
            it = protocol.scan_payload_iter(lease.pin, sid, plan, files)
            try:
                for payload in it:
                    deadline.check()
                    if checkpoint is not None:
                        checkpoint()
                    if "batch" in payload:
                        if obs_metrics.enabled():
                            fam.SERVER_SCAN_BATCHES.inc()
                    elif "end" in payload and obs_metrics.enabled():
                        fam.SERVER_SCAN_ROWS.inc(payload["rows"])
                    yield payload
            except (PlanError, VectorEvalError, KeyError) as exc:
                raise BadPlan(str(exc)) from None
            finally:
                it.close()
        finally:
            lease.release()

    # -- introspection (tests + tools) -----------------------------------
    def table_state(self, name: str) -> _TableState:
        state = self._tables.get(name)
        if state is None:
            raise UnknownTable(f"no table named {name!r} is served")
        return state


def _files_by_id(state: _TableState, sid: int, kept_ids) -> list:
    """The snapshot's :class:`DataFile` objects for cached kept ids,
    in snapshot order — identical to a fresh ``prune_files`` result."""
    wanted = set(kept_ids)
    snap = state.table.snapshot(sid)
    return [f for f in snap.files if f.file_id in wanted]
