"""``repro-serve``: stand up a scan/query server over catalog tables.

Usage::

    repro-serve DIR [DIR ...] [--host H] [--port P]
                [--workers N] [--max-queue N] [--deadline-ms MS]

Each ``DIR`` is a transactional catalog table directory
(:class:`~repro.catalog.DirectoryCatalogStore`); it is served under
its basename, or pass ``NAME=DIR`` to choose the served name.  The
process serves until interrupted; ``--port 0`` (the default) picks an
ephemeral port and prints it, which is what the integration tests and
the bench harness use.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

from repro.catalog import CatalogTable, DirectoryCatalogStore
from repro.server.net import BullionServer
from repro.server.service import TableService

__all__ = ["main"]


def _open_tables(specs: list[str]) -> dict:
    tables = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "", spec
        path = os.path.abspath(path)
        if not os.path.isdir(os.path.join(path, "snapshots")):
            raise FileNotFoundError(f"no catalog table at {path!r}")
        name = name or os.path.basename(path.rstrip(os.sep))
        if name in tables:
            raise ValueError(f"two tables would serve as {name!r}")
        tables[name] = CatalogTable(DirectoryCatalogStore(path))
    return tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve catalog tables over the Bullion wire protocol.",
    )
    parser.add_argument(
        "tables",
        nargs="+",
        metavar="[NAME=]DIR",
        help="catalog table directory (served under NAME or its basename)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-queue", type=int, default=8)
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=30_000,
        help="default per-request deadline (0 disables)",
    )
    args = parser.parse_args(argv)
    try:
        tables = _open_tables(args.tables)
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1
    service = TableService(
        tables,
        workers=args.workers,
        max_queue=args.max_queue,
        default_deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
        ),
    )
    server = BullionServer(service, host=args.host, port=args.port)
    print(
        f"serving {', '.join(sorted(tables))} "
        f"on {server.host}:{server.port}",
        flush=True,
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
