"""A tiny filter-expression parser for the CLI and quick scripting.

Grammar (case-insensitive keywords)::

    expr     := or
    or       := and ( "or" and )*
    and      := unary ( "and" unary )*
    unary    := "not" unary | "(" expr ")" | predicate
    predicate:= NAME op literal
              | literal op NAME
              | NAME "in" "(" literal ("," literal)* ")"
              | NAME "between" literal "and" literal
    op       := == | != | < | <= | > | >= | =

Literals: integers, floats (``1e-3``, ``inf``, ``nan``), ``true`` /
``false``, and single- or double-quoted strings (matched against
string columns as UTF-8 bytes). Examples::

    price > 100 and region in (3, 5, 7)
    not (score <= 0.25) or label == "spam"
    ts between 1700000000 and 1700003600
"""

from __future__ import annotations

import re

from repro.expr.ast import (
    Comparison,
    Expr,
    ExprError,
    FLIPPED_OPS,
    In,
    Not,
    all_of,
    any_of,
    col,
)

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<op><=|>=|==|!=|<|>|=)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
      | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "between", "true", "false",
             "inf", "nan"}


class ParseError(ExprError):
    """Syntax error in a textual filter expression."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:
            rest = text[pos:].lstrip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize {rest[:20]!r}")
        pos = m.end()
        kind = m.lastgroup
        value = m.group(kind)
        if kind == "name" and value.lower() in _KEYWORDS:
            kind, value = "keyword", value.lower()
        elif kind == "op" and value == "=":
            value = "=="
        tokens.append((kind, value))
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            want = value or kind
            raise ParseError(f"expected {want!r}, got {got_value or 'end'!r}")
        return got_value

    # -- grammar --------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.or_expr()
        kind, value = self.peek()
        if kind != "end":
            raise ParseError(f"unexpected trailing {value!r}")
        return expr

    def or_expr(self) -> Expr:
        parts = [self.and_expr()]
        while self.peek() == ("keyword", "or"):
            self.next()
            parts.append(self.and_expr())
        return any_of(*parts)

    def and_expr(self) -> Expr:
        parts = [self.unary()]
        while self.peek() == ("keyword", "and"):
            self.next()
            parts.append(self.unary())
        return all_of(*parts)

    def unary(self) -> Expr:
        kind, value = self.peek()
        if (kind, value) == ("keyword", "not"):
            self.next()
            return Not(self.unary())
        if kind == "lparen":
            self.next()
            expr = self.or_expr()
            self.expect("rparen")
            return expr
        return self.predicate()

    def predicate(self) -> Expr:
        kind, value = self.peek()
        if kind in ("number", "string") or (
            kind == "keyword" and value in ("true", "false", "inf", "nan")
        ):
            # flipped form: literal op name
            literal = self.literal()
            op = self.expect("op")
            name = self.expect("name")
            return Comparison(FLIPPED_OPS[op], name, literal)
        name = self.expect("name")
        kind, value = self.peek()
        if (kind, value) == ("keyword", "in"):
            self.next()
            self.expect("lparen")
            values = [self.literal()]
            while self.peek()[0] == "comma":
                self.next()
                values.append(self.literal())
            self.expect("rparen")
            return In(name, tuple(values))
        if (kind, value) == ("keyword", "between"):
            self.next()
            lo = self.literal()
            self.expect("keyword", "and")
            hi = self.literal()
            return col(name).between(lo, hi)
        op = self.expect("op")
        return Comparison(op, name, self.literal())

    def literal(self):
        kind, value = self.next()
        if kind == "number":
            try:
                return int(value)
            except ValueError:
                return float(value)
        if kind == "string":
            body = value[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if kind == "keyword":
            if value == "true":
                return True
            if value == "false":
                return False
            if value == "inf":
                return float("inf")
            if value == "nan":
                return float("nan")
        raise ParseError(f"expected a literal, got {value or 'end'!r}")


def parse(text: str) -> Expr:
    """Parse the textual filter syntax into an :class:`Expr`."""
    if not text or not text.strip():
        raise ParseError("empty expression")
    return _Parser(text).parse()
