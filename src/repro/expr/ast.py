"""The predicate AST: one expression object for every pushdown layer.

A filter is built once — ``col("price") > 100`` — and the *same*
object drives all three skipping layers of the read path:

1. catalog file pruning (manifest column min/max, zero file opens),
2. footer zone-map pruning (per-row-group chunk stats, zero data I/O),
3. vectorized decode-time filtering (exact, numpy over decoded
   batches).

Layers 1–2 use the conservative interval evaluator
(:mod:`repro.expr.interval`); layer 3 uses the exact vector evaluator
(:mod:`repro.expr.vector`). Expressions serialize to JSON
(:meth:`Expr.to_json`) so a filter survives a manifest, a wire hop or
a CLI flag unchanged, and :func:`parse` (:mod:`repro.expr.parse`)
reads the human syntax ``repro-inspect --where`` accepts.

Node vocabulary (deliberately small — the paper's scans are
metadata-skippable range/set filters, not a SQL engine):

* :class:`Comparison` — ``column <op> literal`` with op one of
  ``== != < <= > >=``,
* :class:`In` — ``column IN (v1, v2, ...)``,
* :class:`And` / :class:`Or` / :class:`Not` — boolean combinators.

Literals are int, float, bool, str or bytes. String-column values are
stored as bytes; ``str`` literals are encoded to UTF-8 at evaluation
time so both spellings match.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass

#: comparison operators, in serialization form
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: op -> op on the flipped operand order (literal <op> column)
FLIPPED_OPS = {
    "==": "==",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}

#: op -> its logical negation (used to push NOT into leaves)
NEGATED_OPS = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


class ExprError(ValueError):
    """Malformed expression (bad op, bad literal, bad JSON)."""


def _check_literal(value) -> None:
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return
    if not isinstance(value, (int, float, str, bytes)):
        raise ExprError(
            f"unsupported literal {value!r}: expected "
            f"int/float/bool/str/bytes"
        )


class Expr:
    """Base node. Combine with ``&``, ``|``, ``~``; never truth-test."""

    # -- combinators ----------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, _require_expr(other)))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, _require_expr(other)))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __bool__(self) -> bool:
        raise TypeError(
            "an Expr has no truth value; combine with & | ~, not and/or/not"
        )

    # -- introspection --------------------------------------------------
    def columns(self) -> set[str]:
        """Names of every column the expression references."""
        raise NotImplementedError

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        raise NotImplementedError

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(doc: dict) -> "Expr":
        return _from_dict(doc)

    @staticmethod
    def from_json(text: str | bytes) -> "Expr":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExprError(f"bad expression JSON: {exc}") from exc
        return _from_dict(doc)


@dataclass(frozen=True)
class Comparison(Expr):
    """``column <op> value`` over one column and one literal."""

    op: str
    column: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ExprError(f"unknown comparison op {self.op!r}")
        _check_literal(self.value)

    def columns(self) -> set[str]:
        return {self.column}

    def to_dict(self) -> dict:
        return {
            "type": "cmp",
            "op": self.op,
            "column": self.column,
            "value": _literal_to_json(self.value),
        }

    def __repr__(self) -> str:
        return f"(col({self.column!r}) {self.op} {self.value!r})"


@dataclass(frozen=True)
class In(Expr):
    """``column IN (v1, v2, ...)`` — an explicit membership set."""

    column: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ExprError("IN requires at least one value")
        for v in self.values:
            _check_literal(v)

    def columns(self) -> set[str]:
        return {self.column}

    def to_dict(self) -> dict:
        return {
            "type": "in",
            "column": self.column,
            "values": [_literal_to_json(v) for v in self.values],
        }

    def __repr__(self) -> str:
        return f"(col({self.column!r}) in {self.values!r})"


@dataclass(frozen=True)
class And(Expr):
    """Conjunction of two or more subexpressions."""

    args: tuple

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ExprError("AND requires at least two subexpressions")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.columns()
        return out

    def to_dict(self) -> dict:
        return {"type": "and", "args": [a.to_dict() for a in self.args]}

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of two or more subexpressions."""

    args: tuple

    def __post_init__(self) -> None:
        if len(self.args) < 2:
            raise ExprError("OR requires at least two subexpressions")

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.columns()
        return out

    def to_dict(self) -> dict:
        return {"type": "or", "args": [a.to_dict() for a in self.args]}

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation of a subexpression."""

    arg: Expr

    def columns(self) -> set[str]:
        return self.arg.columns()

    def to_dict(self) -> dict:
        return {"type": "not", "arg": self.arg.to_dict()}

    def __repr__(self) -> str:
        return f"~{self.arg!r}"


class ColumnRef:
    """Builder handle: ``col("x") > 5`` constructs a :class:`Comparison`.

    Not itself an AST node — comparisons always bind a column to a
    literal, so the reference only exists long enough to pick the op.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison("==", self.name, value)

    def __ne__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison("!=", self.name, value)

    def __lt__(self, value) -> Comparison:
        return Comparison("<", self.name, value)

    def __le__(self, value) -> Comparison:
        return Comparison("<=", self.name, value)

    def __gt__(self, value) -> Comparison:
        return Comparison(">", self.name, value)

    def __ge__(self, value) -> Comparison:
        return Comparison(">=", self.name, value)

    def __hash__(self) -> int:  # __eq__ override would otherwise kill it
        return hash(self.name)

    def isin(self, values) -> In:
        return In(self.name, tuple(values))

    def between(self, lo, hi) -> Expr:
        """Inclusive range — the legacy ``Predicate`` shape."""
        return And((Comparison(">=", self.name, lo),
                    Comparison("<=", self.name, hi)))

    def __repr__(self) -> str:
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """Entry point of the builder API: ``col("price") > 100``."""
    return ColumnRef(name)


def all_of(*exprs: Expr) -> Expr:
    """AND of any number of expressions (one expr passes through)."""
    flat = [_require_expr(e) for e in exprs]
    if not flat:
        raise ExprError("all_of() requires at least one expression")
    return flat[0] if len(flat) == 1 else And(tuple(flat))


def any_of(*exprs: Expr) -> Expr:
    """OR of any number of expressions (one expr passes through)."""
    flat = [_require_expr(e) for e in exprs]
    if not flat:
        raise ExprError("any_of() requires at least one expression")
    return flat[0] if len(flat) == 1 else Or(tuple(flat))


def as_expr(obj) -> Expr:
    """Normalize anything predicate-shaped into an :class:`Expr`.

    Accepts an :class:`Expr` (returned unchanged) or the legacy
    :class:`~repro.core.reader.Predicate` single-column range (duck-
    typed on ``column``/``min_value``/``max_value`` so this module
    never imports the reader).
    """
    if isinstance(obj, Expr):
        return obj
    if (
        hasattr(obj, "column")
        and hasattr(obj, "min_value")
        and hasattr(obj, "max_value")
    ):
        parts: list[Expr] = []
        if obj.min_value is not None:
            parts.append(Comparison(">=", obj.column, obj.min_value))
        if obj.max_value is not None:
            parts.append(Comparison("<=", obj.column, obj.max_value))
        if not parts:
            raise ExprError(
                f"predicate on {obj.column!r} has neither bound"
            )
        return all_of(*parts)
    raise ExprError(f"cannot interpret {obj!r} as an expression")


def _require_expr(obj) -> Expr:
    if not isinstance(obj, Expr):
        raise ExprError(f"expected an Expr, got {obj!r}")
    return obj


# -- JSON literal encoding ---------------------------------------------
# int/float/bool/str map straight onto JSON; bytes ride in a tagged
# base64 wrapper so binary-column filters round-trip losslessly.

def _literal_to_json(value):
    if isinstance(value, bytes):
        return {"$bytes": base64.b64encode(value).decode("ascii")}
    return value


def _literal_from_json(value):
    if isinstance(value, dict):
        if set(value) != {"$bytes"}:
            raise ExprError(f"bad literal object {value!r}")
        return base64.b64decode(value["$bytes"])
    _check_literal(value)
    return value


def _from_dict(doc) -> Expr:
    if not isinstance(doc, dict) or "type" not in doc:
        raise ExprError(f"bad expression node {doc!r}")
    kind = doc["type"]
    try:
        if kind == "cmp":
            return Comparison(
                doc["op"], doc["column"], _literal_from_json(doc["value"])
            )
        if kind == "in":
            return In(
                doc["column"],
                tuple(_literal_from_json(v) for v in doc["values"]),
            )
        if kind == "and":
            return And(tuple(_from_dict(a) for a in doc["args"]))
        if kind == "or":
            return Or(tuple(_from_dict(a) for a in doc["args"]))
        if kind == "not":
            return Not(_from_dict(doc["arg"]))
    except KeyError as exc:
        raise ExprError(f"expression node {doc!r} missing {exc}") from exc
    raise ExprError(f"unknown expression node type {kind!r}")
