"""Unified expression engine: one predicate, three pushdown layers.

Build a filter once with the tiny AST here and the *same* object
skips work at every level of the read path:

1. **catalog file pruning** — manifests carry per-file column min/max;
   :func:`evaluate_interval` over them drops whole files before any
   open (:meth:`CatalogTable.scan(where=...)`),
2. **footer zone maps** — the same interval evaluator over per-row-
   group chunk statistics drops row groups with zero data I/O
   (:meth:`BullionReader.scan(where=...)`),
3. **vectorized decode-time filtering** — :func:`evaluate` runs the
   exact numpy mask over decoded batches, with late materialization:
   filter columns decode first, remaining projected chunks are fetched
   only for row groups with surviving rows.

Quickstart::

    from repro.expr import col, parse

    e = (col("price") > 100) & col("region").isin([3, 5, 7])
    e = parse("price > 100 and region in (3, 5, 7)")   # same thing
    table.scan(["price", "clicks"], where=e)

The interval layer is strictly conservative: missing statistics, NaN,
and float64-rounded int64 bounds all degrade to "scan it" — pruning
can only ever skip extents proven unmatchable.
"""

from repro.expr.ast import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    ExprError,
    In,
    Not,
    Or,
    all_of,
    any_of,
    as_expr,
    col,
)
from repro.expr.interval import (
    Interval,
    TriState,
    evaluate_interval,
    int_bound_is_exact,
    interval_from_stats,
    might_match,
)
from repro.expr.parse import ParseError, parse
from repro.expr.vector import VectorEvalError, evaluate

__all__ = [
    "Expr",
    "ExprError",
    "Comparison",
    "In",
    "And",
    "Or",
    "Not",
    "ColumnRef",
    "col",
    "all_of",
    "any_of",
    "as_expr",
    "evaluate",
    "VectorEvalError",
    "TriState",
    "Interval",
    "interval_from_stats",
    "int_bound_is_exact",
    "evaluate_interval",
    "might_match",
    "parse",
    "ParseError",
]
