"""Exact vectorized evaluation of an :class:`~repro.expr.Expr`.

:func:`evaluate` maps an expression over decoded column batches — the
third (and only exact) pushdown layer. Input is any mapping of column
name to values in the reader's decoded kinds: numpy arrays for
primitives, ``list[bytes]`` for string/binary columns. Output is a
boolean numpy mask, one element per row.

Semantics follow numpy/IEEE: comparisons against NaN are False (so a
NaN row never satisfies ``<  <=  >  >=  ==``), while ``!=`` is True —
exactly the semantics the conservative interval evaluator
(:mod:`repro.expr.interval`) assumes when it decides a row group can
be skipped without decoding.

String columns store bytes; ``str`` literals are UTF-8-encoded before
comparison so ``col("tag") == "ads"`` and ``== b"ads"`` agree.
"""

from __future__ import annotations

import numpy as np

from repro.expr.ast import And, Comparison, Expr, In, Not, Or

_ORDERED_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class VectorEvalError(TypeError):
    """Expression cannot be evaluated over the given columns."""


def evaluate(expr: Expr, columns) -> np.ndarray:
    """Boolean mask of rows matching ``expr``.

    ``columns`` maps column name -> decoded values (numpy array or
    ``list[bytes]``); every column the expression references must be
    present. Nested list columns are not filterable.
    """
    n_rows = None
    for name in expr.columns():
        if name not in columns:
            raise KeyError(f"filter column {name!r} not in batch")
        n = len(columns[name])
        if n_rows is None:
            n_rows = n
    mask = _eval(expr, columns)
    if n_rows is not None and len(mask) != n_rows:
        raise VectorEvalError("evaluator produced a wrong-length mask")
    return mask


def _eval(expr: Expr, columns) -> np.ndarray:
    if isinstance(expr, Comparison):
        return _eval_comparison(expr, columns)
    if isinstance(expr, In):
        out = _compare(columns[expr.column], "==", expr.values[0])
        for v in expr.values[1:]:
            out |= _compare(columns[expr.column], "==", v)
        return out
    if isinstance(expr, And):
        out = _eval(expr.args[0], columns)
        for a in expr.args[1:]:
            out &= _eval(a, columns)
        return out
    if isinstance(expr, Or):
        out = _eval(expr.args[0], columns)
        for a in expr.args[1:]:
            out |= _eval(a, columns)
        return out
    if isinstance(expr, Not):
        return ~_eval(expr.arg, columns)
    raise VectorEvalError(f"cannot evaluate node {expr!r}")


def _eval_comparison(expr: Comparison, columns) -> np.ndarray:
    return _compare(columns[expr.column], expr.op, expr.value)


def _compare(values, op: str, literal) -> np.ndarray:
    values, literal = _align(values, op, literal)
    if op == "==":
        return np.asarray(values == literal, dtype=np.bool_)
    if op == "!=":
        return np.asarray(values != literal, dtype=np.bool_)
    with np.errstate(invalid="ignore"):  # NaN comparisons are just False
        return np.asarray(
            _ORDERED_OPS[op](values, literal), dtype=np.bool_
        )


def _align(values, op: str, literal):
    """Coerce column values and literal into one comparable domain."""
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise VectorEvalError("cannot filter on a nested column")
        if isinstance(literal, (str, bytes)):
            raise VectorEvalError(
                f"cannot compare numeric column with {literal!r}"
            )
        if (
            np.issubdtype(values.dtype, np.integer)
            and isinstance(literal, float)
            and not literal.is_integer()
        ):
            # int columns vs fractional literals: compare in float64
            # explicitly (numpy would do this silently; spelled out so
            # the 2^53 rounding caveat is a documented choice)
            return values.astype(np.float64), literal
        return values, literal
    # list-kind column: bytes for string/binary, arrays for list<T>
    if values and isinstance(values[0], np.ndarray):
        raise VectorEvalError("cannot filter on a list<T> column")
    if isinstance(literal, str):
        literal = literal.encode("utf-8")
    if not isinstance(literal, bytes):
        raise VectorEvalError(
            f"cannot compare string column with {literal!r}"
        )
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr, literal
