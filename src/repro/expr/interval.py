"""Conservative interval evaluation: "can this extent possibly match?"

The two metadata pushdown layers (catalog manifests, footer zone
maps) know only a min/max summary per column extent — a whole file or
one row group. :func:`evaluate_interval` answers with a tri-state
:class:`TriState`:

``NEVER``   no row of the extent can satisfy the expression — the
            extent is skipped with **zero** data I/O. This is the only
            answer that prunes, so it must never be wrong.
``ALWAYS``  every row satisfies it (useful to short-circuit ORs).
``MAYBE``   cannot tell; decode and let the vector evaluator decide.

Every source of imprecision degrades toward ``MAYBE``:

* **Missing stats** (string columns, empty or statistics-free files,
  pre-stats writers) → ``MAYBE``. Extents without stats are always
  scanned.
* **NaN** — float stats summarize only non-NaN values, so an extent
  may hold NaN rows outside [min, max]. NaN fails every ordered
  comparison and ``==`` (so ``NEVER`` decisions stand) but satisfies
  ``!=`` — hence ``ALWAYS`` for ordered ops and ``NEVER`` for ``!=``
  additionally require :attr:`Interval.maybe_nan` to be False. Stats
  whose own bounds are NaN (corrupt or degenerate) evaluate ``MAYBE``
  and therefore never prune.
* **int64 precision** — stats are stored as float64, which rounds
  integers beyond 2**53. A rounded bound may sit strictly *inside*
  the true value range, so taking it at face value could prune an
  extent that really contains a match (a false negative — wrong
  results, not a missed optimization). :func:`interval_from_stats`
  widens any inexactly-representable integer bound outward by one ULP
  (≥ the maximum rounding error) and drops point-equality exactness,
  restoring strict conservatism at the precision boundary.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.expr.ast import And, Comparison, Expr, In, Not, Or

#: integers with |v| <= 2**53 are exactly representable as float64
_EXACT_INT_BOUND = 2**53


class TriState(enum.Enum):
    NEVER = "never"
    MAYBE = "maybe"
    ALWAYS = "always"

    def __invert__(self) -> "TriState":
        if self is TriState.NEVER:
            return TriState.ALWAYS
        if self is TriState.ALWAYS:
            return TriState.NEVER
        return TriState.MAYBE

    def __and__(self, other: "TriState") -> "TriState":
        if TriState.NEVER in (self, other):
            return TriState.NEVER
        if self is TriState.ALWAYS and other is TriState.ALWAYS:
            return TriState.ALWAYS
        return TriState.MAYBE

    def __or__(self, other: "TriState") -> "TriState":
        if TriState.ALWAYS in (self, other):
            return TriState.ALWAYS
        if self is TriState.NEVER and other is TriState.NEVER:
            return TriState.NEVER
        return TriState.MAYBE


@dataclass(frozen=True)
class Interval:
    """Summary of one column extent, with its imprecision flags.

    Invariant the evaluator relies on: every non-NaN value of the
    extent lies in ``[lo, hi]``. ``maybe_nan`` records whether NaN
    values may exist outside the interval; ``eq_exact`` whether the
    bounds are exact values from the data (False once float64 rounding
    may have moved them, i.e. integers beyond 2**53).
    """

    lo: float
    hi: float
    maybe_nan: bool = False
    eq_exact: bool = True


def _widen_int_bound(value: float, direction: int) -> tuple[float, bool]:
    """Push an int-column stat bound outward past its rounding error.

    float64 rounds an int64 by at most ulp(stored)/2; one full ULP
    outward is therefore always enough. The boundary is inclusive:
    a stored 2**53 may itself be the round-to-even image of 2**53 + 1.
    Returns (bound, was_exact).
    """
    if abs(value) < _EXACT_INT_BOUND:
        return value, True
    if math.isinf(value) or math.isnan(value):
        return value, True
    return value + direction * math.ulp(value), False


def int_bound_is_exact(value: float) -> bool:
    """Is a float64-stored integer statistic guaranteed unrounded?

    True only strictly below 2**53: the boundary itself is excluded
    because a stored 2**53 may be the round-to-even image of 2**53+1.
    Metadata consumers that need the *exact* value (the query engine's
    ``min``/``max`` fast path) must refuse bounds this returns False
    for; the pruning path instead widens them outward
    (:func:`interval_from_stats`) and keeps going.
    """
    return abs(value) < _EXACT_INT_BOUND


def interval_from_stats(
    min_value: float, max_value: float, kind: str
) -> Interval:
    """Build an :class:`Interval` from stored min/max statistics.

    ``kind`` is ``"int"`` for integer-valued columns (no NaN possible,
    but float64 storage may have rounded large values) or ``"float"``
    for float-valued columns (bounds are exact stored values, but NaN
    rows may exist outside them).
    """
    if kind == "int":
        lo, lo_exact = _widen_int_bound(float(min_value), -1)
        hi, hi_exact = _widen_int_bound(float(max_value), +1)
        return Interval(lo, hi, maybe_nan=False,
                        eq_exact=lo_exact and hi_exact)
    return Interval(float(min_value), float(max_value),
                    maybe_nan=True, eq_exact=True)


def evaluate_interval(expr: Expr, stats) -> TriState:
    """Tri-state evaluation of ``expr`` over per-column intervals.

    ``stats`` maps column name -> :class:`Interval` or ``None``
    (unknown). Columns absent from the mapping, or mapped to ``None``,
    make their leaves ``MAYBE`` — conservative include.
    """
    if isinstance(expr, Comparison):
        return _leaf(stats.get(expr.column), expr.op, expr.value)
    if isinstance(expr, In):
        out = TriState.NEVER
        iv = stats.get(expr.column)
        for v in expr.values:
            out = out | _leaf(iv, "==", v)
            if out is TriState.ALWAYS:
                break
        return out
    if isinstance(expr, And):
        out = TriState.ALWAYS
        for a in expr.args:
            out = out & evaluate_interval(a, stats)
            if out is TriState.NEVER:
                break
        return out
    if isinstance(expr, Or):
        out = TriState.NEVER
        for a in expr.args:
            out = out | evaluate_interval(a, stats)
            if out is TriState.ALWAYS:
                break
        return out
    if isinstance(expr, Not):
        return ~evaluate_interval(expr.arg, stats)
    return TriState.MAYBE


def might_match(expr: Expr, stats) -> bool:
    """True unless the interval evaluator proves no row can match."""
    return evaluate_interval(expr, stats) is not TriState.NEVER


def _leaf(iv: Interval | None, op: str, value) -> TriState:
    if iv is None:
        return TriState.MAYBE
    if isinstance(value, bool):
        value = int(value)
    elif not isinstance(value, (int, float)):
        return TriState.MAYBE  # string literal vs numeric stats
    if math.isnan(iv.lo) or math.isnan(iv.hi):
        return TriState.MAYBE  # degenerate stats never prune
    if isinstance(value, float) and math.isnan(value):
        # NaN satisfies only !=, and does so for every row
        return TriState.ALWAYS if op == "!=" else TriState.NEVER
    lo, hi = iv.lo, iv.hi
    # Python compares int and float with full precision, so an int
    # literal beyond 2**53 is not silently rounded here — the stats
    # side alone carries the rounding, already widened outward.
    if op == "<":
        if lo >= value:
            return TriState.NEVER
        if hi < value:
            return _always_unless_nan(iv)
        return TriState.MAYBE
    if op == "<=":
        if lo > value:
            return TriState.NEVER
        if hi <= value:
            return _always_unless_nan(iv)
        return TriState.MAYBE
    if op == ">":
        if hi <= value:
            return TriState.NEVER
        if lo > value:
            return _always_unless_nan(iv)
        return TriState.MAYBE
    if op == ">=":
        if hi < value:
            return TriState.NEVER
        if lo >= value:
            return _always_unless_nan(iv)
        return TriState.MAYBE
    if op == "==":
        if value < lo or value > hi:
            return TriState.NEVER
        if lo == hi == value and iv.eq_exact and not iv.maybe_nan:
            return TriState.ALWAYS
        return TriState.MAYBE
    if op == "!=":
        if value < lo or value > hi:
            # every in-interval row differs, and NaN != value is True
            return TriState.ALWAYS
        if lo == hi == value and iv.eq_exact and not iv.maybe_nan:
            return TriState.NEVER
        return TriState.MAYBE
    return TriState.MAYBE


def _always_unless_nan(iv: Interval) -> TriState:
    """Ordered ops and == are False for NaN rows, so a possible NaN
    downgrades an all-rows-match verdict to MAYBE."""
    return TriState.MAYBE if iv.maybe_nan else TriState.ALWAYS
