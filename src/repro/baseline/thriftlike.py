"""A Thrift-compact-protocol-style serializer (the Parquet footer's wire
format, reimplemented).

Apache Parquet serializes its ``FileMetaData`` with Thrift's compact
protocol: field headers are (delta-encoded field id, type nibble),
integers are zigzag varints, strings are length-prefixed, and lists
carry a (size, element-type) header. Decoding is inherently sequential —
you cannot find the 9,000th column's byte range without walking the
9,999 structures before it. That sequential-walk property (not Thrift
bit-for-bit compatibility) is what the Fig 5 comparison depends on, and
it is preserved faithfully here.
"""

from __future__ import annotations

from repro.util.varint import decode_varint, encode_varint

# type codes (compact-protocol-inspired)
T_STOP = 0
T_BOOL_TRUE = 1
T_BOOL_FALSE = 2
T_I32 = 5
T_I64 = 6
T_BINARY = 8
T_LIST = 9
T_STRUCT = 12


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class CompactWriter:
    """Emit structs field-by-field like Thrift's compact protocol."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._last_field: list[int] = [0]

    def getvalue(self) -> bytes:
        return bytes(self._out)

    # -- struct framing ------------------------------------------------
    def struct_begin(self) -> None:
        self._last_field.append(0)

    def struct_end(self) -> None:
        self._out.append(T_STOP)
        self._last_field.pop()

    def _field_header(self, field_id: int, type_code: int) -> None:
        delta = field_id - self._last_field[-1]
        if 0 < delta < 16:
            self._out.append((delta << 4) | type_code)
        else:
            self._out.append(type_code)
            self._out += encode_varint(_zigzag(field_id) & (2**64 - 1))
        self._last_field[-1] = field_id

    # -- typed fields ----------------------------------------------------
    def field_i32(self, field_id: int, value: int) -> None:
        self._field_header(field_id, T_I32)
        self._out += encode_varint(_zigzag(value) & (2**64 - 1))

    def field_i64(self, field_id: int, value: int) -> None:
        self._field_header(field_id, T_I64)
        self._out += encode_varint(_zigzag(value) & (2**64 - 1))

    def field_bool(self, field_id: int, value: bool) -> None:
        self._field_header(field_id, T_BOOL_TRUE if value else T_BOOL_FALSE)

    def field_binary(self, field_id: int, value: bytes) -> None:
        self._field_header(field_id, T_BINARY)
        self._out += encode_varint(len(value))
        self._out += value

    def field_string(self, field_id: int, value: str) -> None:
        self.field_binary(field_id, value.encode())

    def list_begin(self, field_id: int, elem_type: int, size: int) -> None:
        self._field_header(field_id, T_LIST)
        if size < 15:
            self._out.append((size << 4) | elem_type)
        else:
            self._out.append(0xF0 | elem_type)
            self._out += encode_varint(size)

    def list_elem_i64(self, value: int) -> None:
        self._out += encode_varint(_zigzag(value) & (2**64 - 1))

    def list_elem_binary(self, value: bytes) -> None:
        self._out += encode_varint(len(value))
        self._out += value

    def field_struct(self, field_id: int) -> None:
        self._field_header(field_id, T_STRUCT)
        self.struct_begin()


class CompactReader:
    """Sequential struct decoder; the only way in is the front door."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset
        self._last_field: list[int] = [0]

    @property
    def pos(self) -> int:
        return self._pos

    def read_field_header(self) -> tuple[int, int] | None:
        """(field_id, type) or None at struct end."""
        byte = self._data[self._pos]
        self._pos += 1
        if byte == T_STOP:
            return None
        type_code = byte & 0x0F
        delta = byte >> 4
        if delta:
            field_id = self._last_field[-1] + delta
        else:
            raw, self._pos = decode_varint(self._data, self._pos)
            field_id = _unzigzag(raw)
        self._last_field[-1] = field_id
        return field_id, type_code

    def struct_begin(self) -> None:
        self._last_field.append(0)

    def struct_end(self) -> None:
        self._last_field.pop()

    def read_i64(self) -> int:
        raw, self._pos = decode_varint(self._data, self._pos)
        return _unzigzag(raw)

    read_i32 = read_i64

    def read_binary(self) -> bytes:
        length, self._pos = decode_varint(self._data, self._pos)
        out = self._data[self._pos : self._pos + length]
        self._pos += length
        return bytes(out)

    def read_string(self) -> str:
        return self.read_binary().decode()

    def read_list_header(self) -> tuple[int, int]:
        """(size, element_type)."""
        byte = self._data[self._pos]
        self._pos += 1
        elem_type = byte & 0x0F
        size = byte >> 4
        if size == 15:
            size, self._pos = decode_varint(self._data, self._pos)
        return size, elem_type

    def skip(self, type_code: int) -> None:
        """Skip a value of the given type (still walks every byte)."""
        if type_code in (T_BOOL_TRUE, T_BOOL_FALSE):
            return
        if type_code in (T_I32, T_I64):
            _, self._pos = decode_varint(self._data, self._pos)
            return
        if type_code == T_BINARY:
            length, self._pos = decode_varint(self._data, self._pos)
            self._pos += length
            return
        if type_code == T_LIST:
            size, elem_type = self.read_list_header()
            for _ in range(size):
                self.skip(elem_type)
            return
        if type_code == T_STRUCT:
            self.struct_begin()
            while True:
                header = self.read_field_header()
                if header is None:
                    break
                self.skip(header[1])
            self.struct_end()
            return
        raise ValueError(f"cannot skip unknown type {type_code}")
