"""Parquet-shaped file metadata, serialized thrift-compact-style.

Mirrors the real ``parquet.thrift`` structures that matter for the
Fig 5 experiment:

* ``FileMetaData { version, schema: list<SchemaElement>, num_rows,
  row_groups: list<RowGroup>, created_by }``
* ``SchemaElement { type, repetition, name, num_children,
  converted_type }``
* ``RowGroup { columns: list<ColumnChunk>, total_byte_size, num_rows }``
* ``ColumnChunk.meta_data = ColumnMetaData { type, encodings,
  path_in_schema, codec, num_values, total_uncompressed_size,
  total_compressed_size, data_page_offset, statistics }``

The reader deserializes the entire tree on open — exactly what
parquet-mr/arrow do and exactly the linear-in-columns cost Zeng et al.
measured and the paper reports (52 ms at 10k columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.thriftlike import (
    CompactReader,
    CompactWriter,
    T_BINARY,
    T_I64,
    T_STRUCT,
)


@dataclass
class SchemaElement:
    name: str
    type_code: int = 0
    repetition: int = 0
    num_children: int = 0
    converted_type: int = 0


@dataclass
class Statistics:
    min_value: bytes = b""
    max_value: bytes = b""
    null_count: int = 0


@dataclass
class ColumnMetaData:
    path_in_schema: str
    type_code: int = 0
    encodings: list[int] = field(default_factory=list)
    codec: int = 0
    num_values: int = 0
    total_uncompressed_size: int = 0
    total_compressed_size: int = 0
    data_page_offset: int = 0
    statistics: Statistics | None = None


@dataclass
class RowGroup:
    columns: list[ColumnMetaData] = field(default_factory=list)
    total_byte_size: int = 0
    num_rows: int = 0


@dataclass
class FileMetaData:
    version: int = 1
    schema: list[SchemaElement] = field(default_factory=list)
    num_rows: int = 0
    row_groups: list[RowGroup] = field(default_factory=list)
    created_by: str = "repro-parquet-like"


def serialize_metadata(meta: FileMetaData) -> bytes:
    w = CompactWriter()
    w.struct_begin()
    w.field_i32(1, meta.version)
    w.list_begin(2, T_STRUCT, len(meta.schema))
    for el in meta.schema:
        w.struct_begin()
        w.field_i32(1, el.type_code)
        w.field_i32(2, el.repetition)
        w.field_string(3, el.name)
        w.field_i32(4, el.num_children)
        w.field_i32(5, el.converted_type)
        w.struct_end()
    w.field_i64(3, meta.num_rows)
    w.list_begin(4, T_STRUCT, len(meta.row_groups))
    for rg in meta.row_groups:
        w.struct_begin()
        w.list_begin(1, T_STRUCT, len(rg.columns))
        for col in rg.columns:
            w.struct_begin()
            w.field_i32(1, col.type_code)
            w.list_begin(2, T_I64, len(col.encodings))
            for e in col.encodings:
                w.list_elem_i64(e)
            w.field_string(3, col.path_in_schema)
            w.field_i32(4, col.codec)
            w.field_i64(5, col.num_values)
            w.field_i64(6, col.total_uncompressed_size)
            w.field_i64(7, col.total_compressed_size)
            w.field_i64(8, col.data_page_offset)
            if col.statistics is not None:
                w.field_struct(9)
                w.field_binary(1, col.statistics.min_value)
                w.field_binary(2, col.statistics.max_value)
                w.field_i64(3, col.statistics.null_count)
                w.struct_end()
            w.struct_end()
        w.field_i64(2, rg.total_byte_size)
        w.field_i64(3, rg.num_rows)
        w.struct_end()
    w.field_string(5, meta.created_by)
    w.struct_end()
    return w.getvalue()


def parse_metadata(data: bytes) -> FileMetaData:
    """Full deserialization — walks and materializes every struct."""
    r = CompactReader(data)
    meta = FileMetaData(schema=[], row_groups=[])
    r.struct_begin()
    while True:
        header = r.read_field_header()
        if header is None:
            break
        field_id, type_code = header
        if field_id == 1:
            meta.version = r.read_i32()
        elif field_id == 2:
            size, _ = r.read_list_header()
            for _ in range(size):
                meta.schema.append(_parse_schema_element(r))
        elif field_id == 3:
            meta.num_rows = r.read_i64()
        elif field_id == 4:
            size, _ = r.read_list_header()
            for _ in range(size):
                meta.row_groups.append(_parse_row_group(r))
        elif field_id == 5:
            meta.created_by = r.read_string()
        else:
            r.skip(type_code)
    r.struct_end()
    return meta


def _parse_schema_element(r: CompactReader) -> SchemaElement:
    el = SchemaElement(name="")
    r.struct_begin()
    while True:
        header = r.read_field_header()
        if header is None:
            break
        field_id, type_code = header
        if field_id == 1:
            el.type_code = r.read_i32()
        elif field_id == 2:
            el.repetition = r.read_i32()
        elif field_id == 3:
            el.name = r.read_string()
        elif field_id == 4:
            el.num_children = r.read_i32()
        elif field_id == 5:
            el.converted_type = r.read_i32()
        else:
            r.skip(type_code)
    r.struct_end()
    return el


def _parse_row_group(r: CompactReader) -> RowGroup:
    rg = RowGroup()
    r.struct_begin()
    while True:
        header = r.read_field_header()
        if header is None:
            break
        field_id, type_code = header
        if field_id == 1:
            size, _ = r.read_list_header()
            for _ in range(size):
                rg.columns.append(_parse_column(r))
        elif field_id == 2:
            rg.total_byte_size = r.read_i64()
        elif field_id == 3:
            rg.num_rows = r.read_i64()
        else:
            r.skip(type_code)
    r.struct_end()
    return rg


def _parse_column(r: CompactReader) -> ColumnMetaData:
    col = ColumnMetaData(path_in_schema="")
    r.struct_begin()
    while True:
        header = r.read_field_header()
        if header is None:
            break
        field_id, type_code = header
        if field_id == 1:
            col.type_code = r.read_i32()
        elif field_id == 2:
            size, _ = r.read_list_header()
            col.encodings = [r.read_i64() for _ in range(size)]
        elif field_id == 3:
            col.path_in_schema = r.read_string()
        elif field_id == 4:
            col.codec = r.read_i32()
        elif field_id == 5:
            col.num_values = r.read_i64()
        elif field_id == 6:
            col.total_uncompressed_size = r.read_i64()
        elif field_id == 7:
            col.total_compressed_size = r.read_i64()
        elif field_id == 8:
            col.data_page_offset = r.read_i64()
        elif field_id == 9:
            col.statistics = _parse_statistics(r)
        else:
            r.skip(type_code)
    r.struct_end()
    return col


def _parse_statistics(r: CompactReader) -> Statistics:
    st = Statistics()
    r.struct_begin()
    while True:
        header = r.read_field_header()
        if header is None:
            break
        field_id, type_code = header
        if field_id == 1:
            st.min_value = r.read_binary()
        elif field_id == 2:
            st.max_value = r.read_binary()
        elif field_id == 3:
            st.null_count = r.read_i64()
        else:
            r.skip(type_code)
    r.struct_end()
    return st
