"""Parquet-like file writer/reader over the simulated storage.

Layout mirrors Parquet: ``magic | column chunks ... | thrift footer |
u32 footer_len | magic``. The reader's ``open`` cost is a full
:func:`repro.baseline.metadata.parse_metadata` — the linear-in-columns
behaviour Fig 5 plots. Pages reuse the shared encoding catalog so the
data path is identical to Bullion's; only the metadata design differs,
isolating the variable the experiment measures.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baseline.metadata import (
    ColumnMetaData,
    FileMetaData,
    RowGroup,
    SchemaElement,
    Statistics,
    parse_metadata,
    serialize_metadata,
)
from repro.core.page import PAGE_HEADER_SIZE, PageHeader, frame_page
from repro.core.table import Table, physical_schema_for_table
from repro.core.writer import _to_encodable, default_encoding
from repro.encodings import decode_blob, encode_blob
from repro.iosim import SimulatedStorage

PARQUET_MAGIC = b"PAR1"


class ParquetLikeWriter:
    """Write a table in the Parquet-shaped layout."""

    def __init__(
        self,
        storage: SimulatedStorage,
        rows_per_group: int = 65536,
        with_statistics: bool = True,
    ) -> None:
        self._storage = storage
        self._rows_per_group = rows_per_group
        self._with_statistics = with_statistics

    def write(self, table: Table) -> FileMetaData:
        storage = self._storage
        storage.append(PARQUET_MAGIC)
        columns = physical_schema_for_table(table)
        num_rows = table.num_rows
        n_groups = max(
            1, (num_rows + self._rows_per_group - 1) // self._rows_per_group
        )
        meta = FileMetaData(num_rows=num_rows)
        meta.schema.append(
            SchemaElement(name="root", num_children=len(columns))
        )
        for col in columns:
            meta.schema.append(
                SchemaElement(
                    name=col.name,
                    type_code=int(col.type.primitive),
                    repetition=col.type.list_depth,
                )
            )
        for g in range(n_groups):
            start = g * self._rows_per_group
            end = min(start + self._rows_per_group, num_rows)
            rg = RowGroup(num_rows=end - start)
            for col in columns:
                values = _to_encodable(
                    table.columns[col.name][start:end], col
                )
                encoding = default_encoding(col)
                payload = encode_blob(values, encoding)
                offset = storage.append(frame_page(payload, end - start))
                stats = None
                if self._with_statistics and isinstance(values, np.ndarray):
                    if len(values) and values.dtype != np.bool_:
                        stats = Statistics(
                            min_value=struct.pack("<d", float(values.min())),
                            max_value=struct.pack("<d", float(values.max())),
                        )
                rg.columns.append(
                    ColumnMetaData(
                        path_in_schema=col.name,
                        type_code=int(col.type.primitive),
                        encodings=[payload[0]],
                        num_values=end - start,
                        total_uncompressed_size=len(payload),
                        total_compressed_size=len(payload),
                        data_page_offset=offset,
                        statistics=stats,
                    )
                )
                rg.total_byte_size += len(payload) + PAGE_HEADER_SIZE
            meta.row_groups.append(rg)
        footer = serialize_metadata(meta)
        storage.append(footer)
        storage.append(struct.pack("<I", len(footer)) + PARQUET_MAGIC)
        return meta


class ParquetLikeReader:
    """Open = parse the whole footer; then project like any reader."""

    def __init__(self, storage: SimulatedStorage) -> None:
        self._storage = storage
        tail = storage.pread(storage.size - 8, 8)
        (footer_len,) = struct.unpack_from("<I", tail, 0)
        if tail[4:] != PARQUET_MAGIC:
            raise ValueError(f"bad parquet-like magic {tail[4:]!r}")
        raw = storage.pread(storage.size - 8 - footer_len, footer_len)
        # the cost Fig 5 measures: full deserialization of every column's
        # metadata, regardless of how few columns the query needs
        self.metadata = parse_metadata(raw)
        self._column_index = {
            col.path_in_schema: i
            for i, col in enumerate(
                self.metadata.row_groups[0].columns
                if self.metadata.row_groups
                else []
            )
        }

    @property
    def num_rows(self) -> int:
        return self.metadata.num_rows

    def column_names(self) -> list[str]:
        return [el.name for el in self.metadata.schema[1:]]

    def project(self, columns: list[str]) -> Table:
        out: dict[str, object] = {}
        for name in columns:
            idx = self._column_index[name]
            parts = []
            for rg in self.metadata.row_groups:
                col = rg.columns[idx]
                header_raw = self._storage.pread(
                    col.data_page_offset, PAGE_HEADER_SIZE
                )
                header = PageHeader.unpack(header_raw)
                payload = self._storage.pread(
                    col.data_page_offset + PAGE_HEADER_SIZE,
                    header.payload_len,
                )
                parts.append(decode_blob(payload))
            first = parts[0]
            if isinstance(first, np.ndarray):
                out[name] = np.concatenate(parts)
            else:
                merged: list = []
                for p in parts:
                    merged.extend(p)
                out[name] = merged
        return Table(out)
