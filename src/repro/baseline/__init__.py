"""Parquet-like baseline format (the Fig 5 / deletion-bench comparator).

A faithful structural stand-in for Apache Parquet: same file layout,
same Thrift-compact-style footer that must be fully deserialized on
open. Data pages share Bullion's encoding catalog so experiments
isolate exactly the metadata-design variable. See DESIGN.md §3.
"""

from repro.baseline.format import (
    PARQUET_MAGIC,
    ParquetLikeReader,
    ParquetLikeWriter,
)
from repro.baseline.metadata import (
    ColumnMetaData,
    FileMetaData,
    RowGroup,
    SchemaElement,
    parse_metadata,
    serialize_metadata,
)

__all__ = [
    "PARQUET_MAGIC",
    "ParquetLikeReader",
    "ParquetLikeWriter",
    "ColumnMetaData",
    "FileMetaData",
    "RowGroup",
    "SchemaElement",
    "parse_metadata",
    "serialize_metadata",
]
