"""Synthetic multimodal training samples (paper §2.5 workload).

Generates :class:`repro.multimodal.MultimodalSample` batches: quality
scores from a beta distribution (most web data is mediocre, a thin
high-quality head — which is what makes quality-aware presorting pay),
compressible synthetic "video" bytes, highlight frames at reduced size,
captions and audio snippets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.multimodal.dataset import MultimodalSample


@dataclass
class MultimodalConfig:
    n_samples: int = 500
    video_bytes: int = 4096  # full-resolution media payload
    frame_bytes: int = 128  # reduced-resolution highlight frame
    frames_per_video: int = 100
    highlights_per_video: int = 3
    audio_bytes: int = 256
    quality_alpha: float = 2.0  # Beta(a,b): right tail is the good data
    quality_beta: float = 5.0
    seed: int = 0


def generate_samples(config: MultimodalConfig) -> list:
    rng = np.random.default_rng(config.seed)
    samples = []
    for sid in range(config.n_samples):
        quality = float(rng.beta(config.quality_alpha, config.quality_beta))
        frame_idx = np.sort(
            rng.choice(
                config.frames_per_video,
                size=min(config.highlights_per_video, config.frames_per_video),
                replace=False,
            )
        ).astype(np.int64)
        # repetitive payloads so general-purpose compression has traction
        motif = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        video = (motif * (config.video_bytes // 16 + 1))[: config.video_bytes]
        frames = [
            (motif * (config.frame_bytes // 16 + 1))[: config.frame_bytes]
            for _ in frame_idx
        ]
        samples.append(
            MultimodalSample(
                sample_id=sid,
                text_hash=int(rng.integers(0, 2**62)),
                tags=f"tag{sid % 11}".encode(),
                caption=f"caption for sample {sid}".encode(),
                audio=bytes(rng.integers(0, 256, config.audio_bytes, dtype=np.uint8)),
                quality=quality,
                frame_index=frame_idx,
                highlight_frames=frames,
                video=video,
            )
        )
    return samples
