"""Sliding-window sparse feature generator (paper §2.2, Fig 3).

``clk_seq_cids`` is "a vector of 256 int64 elements where each element
signifies an ad ID ... data is categorized and sorted by user ID and
timestamp before being written into columnar storage. Given the
evolving nature of user interests over time, this sorting leads to the
emergence of **sliding window patterns** between vectors within the
same feature column for individual users."

The generator emits exactly that: per user, a window of recent click
IDs; each time step pushes a few new IDs at the head and drops the
oldest from the tail; occasionally a user re-anchors (interest shift).
Rows come out sorted by (uid, time), i.e. column order = Fig 3's order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SlidingWindowConfig:
    n_users: int = 100
    events_per_user: int = 20
    window_size: int = 256
    id_space: int = 10_000_000
    mean_new_per_event: float = 1.5
    reanchor_prob: float = 0.02  # interest shift: fresh window
    repeat_prob: float = 0.15  # event adds nothing (identical window)
    seed: int = 0


def generate_click_sequences(
    config: SlidingWindowConfig,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Returns (rows, uids): the clk_seq_cids column plus its sort key."""
    rng = np.random.default_rng(config.seed)
    rows: list[np.ndarray] = []
    uids: list[int] = []
    for uid in range(config.n_users):
        window = list(
            rng.integers(0, config.id_space, config.window_size).astype(np.int64)
        )
        for _t in range(config.events_per_user):
            roll = rng.random()
            if roll < config.reanchor_prob:
                window = list(
                    rng.integers(
                        0, config.id_space, config.window_size
                    ).astype(np.int64)
                )
            elif roll >= config.reanchor_prob + config.repeat_prob:
                n_new = int(rng.poisson(config.mean_new_per_event))
                if n_new:
                    fresh = list(
                        rng.integers(0, config.id_space, n_new).astype(np.int64)
                    )
                    window = (fresh + window)[: config.window_size]
            rows.append(np.array(window, dtype=np.int64))
            uids.append(uid)
    return rows, np.array(uids, dtype=np.int64)


def overlap_profile(rows: list[np.ndarray]) -> dict[str, float]:
    """Summary of consecutive-row overlap (validates the Fig 3 pattern)."""
    from repro.encodings.sparse_delta import find_overlap

    if len(rows) < 2:
        return {"mean_overlap_fraction": 0.0, "identical_fraction": 0.0}
    overlaps = []
    identical = 0
    for prev, cur in zip(rows, rows[1:]):
        ov = find_overlap(prev, cur)
        overlaps.append(ov.length / max(1, len(cur)))
        if len(prev) == len(cur) and np.array_equal(prev, cur):
            identical += 1
    return {
        "mean_overlap_fraction": float(np.mean(overlaps)),
        "identical_fraction": identical / (len(rows) - 1),
    }
