"""Ads-table workload generator (paper Table 1 and Fig 1).

Table 1 is "a statistical breakdown of column types in an Ad Parquet
file" from ByteDance's production ads table; this module reproduces the
census *exactly* and can generate data for any sampled subset of the
schema. Fig 1 is the top-10 ad table size distribution in the CN region
(largest ≈ 100 PB), modelled with a calibrated power law.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import Field, LogicalType, Schema
from repro.core.table import Table

#: Table 1, verbatim: logical type string -> column count
TABLE1_BREAKDOWN: dict[str, int] = {
    "list<int64>": 16256,
    "list<float>": 812,
    "list<list<int64>>": 277,
    "struct<list<int64>, list<float>>": 143,
    "struct<list<int64>>": 120,
    "struct<list<binary>>": 46,
    "struct<list<float>>": 29,
    "struct<list<binary>, list<binary>>": 18,
    "struct<list<double>>": 10,
    "list<binary>": 8,
    "struct<list<list<int64>>>": 5,
    "struct<list<binary>, list<float>>": 5,
    "string": 3,
    "int64": 1,
}

TABLE1_TOTAL_COLUMNS = sum(TABLE1_BREAKDOWN.values())  # 17,733


def build_ads_schema(scale: float = 1.0) -> Schema:
    """Schema with Table 1's exact type census (scaled down if asked).

    ``scale=1.0`` gives all 17,733 logical columns; smaller scales keep
    the same type *mix* with at least one column per type, for tests
    and data generation at laptop sizes.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    fields: list[Field] = []
    for type_str, count in TABLE1_BREAKDOWN.items():
        n = max(1, round(count * scale)) if scale < 1.0 else count
        logical = LogicalType.parse(type_str)
        slug = (
            type_str.replace("<", "_")
            .replace(">", "")
            .replace(", ", "_")
            .replace(",", "_")
        )
        for i in range(n):
            fields.append(Field(f"{slug}_{i}", logical))
    return Schema(fields)


def census_of(schema: Schema) -> dict[str, int]:
    """Type census of a schema (should equal TABLE1_BREAKDOWN at scale 1)."""
    return schema.census()


@dataclass
class AdsDataConfig:
    """Shape parameters for synthetic ads feature data."""

    rows: int = 1000
    seq_length: int = 64  # sparse-feature vector length
    id_space: int = 1_000_000
    seed: int = 7


def generate_ads_table(schema: Schema, config: AdsDataConfig) -> Table:
    """Synthesize data for every physical column of the (sub)schema.

    ``list<int64>`` features get sliding-window sequences (the Fig 3
    pattern), floats get embedding-like values, binaries get tag blobs.
    """
    rng = np.random.default_rng(config.seed)
    columns: dict[str, object] = {}
    for col in schema.physical_columns():
        prim = col.type.primitive.type_name
        if col.type.list_depth == 0:
            if prim == "int64":
                columns[col.name] = rng.integers(
                    0, config.id_space, config.rows
                ).astype(np.int64)
            elif prim in ("string", "binary"):
                columns[col.name] = [
                    f"ctx_{i % 37}".encode() for i in range(config.rows)
                ]
            else:
                columns[col.name] = rng.normal(size=config.rows)
        elif col.type.list_depth == 1:
            if prim == "int64":
                columns[col.name] = _sliding_window_rows(rng, config)
            elif prim in ("float", "double"):
                dtype = np.float32 if prim == "float" else np.float64
                columns[col.name] = [
                    rng.normal(size=8).astype(dtype)
                    for _ in range(config.rows)
                ]
            else:  # binary lists
                columns[col.name] = [
                    [f"tag{j}".encode() for j in range(int(rng.integers(0, 4)))]
                    for _ in range(config.rows)
                ]
        else:  # list<list<int64>>
            columns[col.name] = [
                [
                    rng.integers(0, config.id_space, 4).astype(np.int64)
                    for _ in range(int(rng.integers(0, 3)))
                ]
                for _ in range(config.rows)
            ]
    return Table(columns)


def _sliding_window_rows(rng: np.random.Generator, config: AdsDataConfig):
    from repro.workloads.sparse import SlidingWindowConfig, generate_click_sequences

    rows, _uids = generate_click_sequences(
        SlidingWindowConfig(
            n_users=max(1, config.rows // 8),
            events_per_user=8,
            window_size=config.seq_length,
            id_space=config.id_space,
            seed=int(rng.integers(0, 2**31)),
        )
    )
    return rows[: config.rows] + rows[: max(0, config.rows - len(rows))]


# ---------------------------------------------------------------------------
# Fig 1: top-10 ad table sizes
# ---------------------------------------------------------------------------

FIG1_MAX_PB = 97.0
FIG1_ALPHA = 0.68


def top10_table_sizes_pb(
    max_pb: float = FIG1_MAX_PB, alpha: float = FIG1_ALPHA
) -> list[float]:
    """Calibrated power-law model of Fig 1's bars (A..J, descending).

    The paper reports "individual tables in ByteDance's CN region can
    approach 100PB"; ranks follow a long-tail. ``size(r) = max * r^-a``
    keeps bar A ≈ 97 PB and bar J ≈ 20 PB, matching the figure's shape.
    """
    return [max_pb * (rank + 1) ** (-alpha) for rank in range(10)]


def estimate_table_size_pb(
    rows: float,
    n_columns: int = TABLE1_TOTAL_COLUMNS,
    avg_list_length: float = 48.0,
    bytes_per_element: float = 8.0,
    compression_ratio: float = 0.35,
) -> float:
    """First-principles size model: rows x features x element bytes.

    Used by the Fig 1 bench to show ~10^13 rows of the Table 1 schema
    lands in the ~100 PB regime the paper reports.
    """
    raw = rows * n_columns * avg_list_length * bytes_per_element
    return raw * compression_ratio / 1e15
