"""User-centric event sequences for Generative Recommendation (§2.2).

The paper's "Challenge" paragraph: "recent advances in Generative
Recommendation mandate a paradigm shift from impression-centric to
user-centric data modeling. This transition replaces discrete binary
labels with temporal event sequences, where each user record
encapsulates a comprehensive interaction history spanning both organic
activities and advertising events (requests, impressions, and
conversions) ... as a single training example per user."

This module generates both representations from one underlying event
stream, so the storage comparison (rows, bytes, retrieval pattern) the
challenge motivates can be measured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.table import Table


class EventType(enum.IntEnum):
    ORGANIC = 0
    AD_REQUEST = 1
    AD_IMPRESSION = 2
    AD_CONVERSION = 3


@dataclass
class EventLogConfig:
    n_users: int = 200
    mean_events_per_user: float = 40.0
    item_space: int = 100_000
    conversion_rate: float = 0.05
    seed: int = 0


@dataclass
class EventLog:
    """Flat (uid, ts, type, item) stream sorted by (uid, ts)."""

    uid: np.ndarray
    timestamp: np.ndarray
    event_type: np.ndarray
    item_id: np.ndarray

    def __len__(self) -> int:
        return len(self.uid)


def generate_event_log(config: EventLogConfig) -> EventLog:
    rng = np.random.default_rng(config.seed)
    uids, ts, types, items = [], [], [], []
    for uid in range(config.n_users):
        n = max(1, int(rng.poisson(config.mean_events_per_user)))
        t = np.sort(rng.integers(0, 10**6, n))
        kinds = rng.choice(
            [
                EventType.ORGANIC,
                EventType.AD_REQUEST,
                EventType.AD_IMPRESSION,
            ],
            size=n,
            p=[0.5, 0.2, 0.3],
        ).astype(np.int64)
        convert = (kinds == EventType.AD_IMPRESSION) & (
            rng.random(n) < config.conversion_rate
        )
        kinds[convert] = EventType.AD_CONVERSION
        uids.append(np.full(n, uid, dtype=np.int64))
        ts.append(t.astype(np.int64))
        types.append(kinds)
        items.append(rng.integers(0, config.item_space, n).astype(np.int64))
    return EventLog(
        uid=np.concatenate(uids),
        timestamp=np.concatenate(ts),
        event_type=np.concatenate(types),
        item_id=np.concatenate(items),
    )


def impression_centric_table(log: EventLog) -> Table:
    """Classic training data: one row per ad impression, binary label.

    "a user with n ad impressions generates n distinct training
    records" — the label is whether a conversion followed.
    """
    mask = np.isin(
        log.event_type,
        [int(EventType.AD_IMPRESSION), int(EventType.AD_CONVERSION)],
    )
    labels = (log.event_type[mask] == int(EventType.AD_CONVERSION)).astype(
        np.int64
    )
    return Table(
        {
            "uid": log.uid[mask],
            "timestamp": log.timestamp[mask],
            "item_id": log.item_id[mask],
            "label": labels,
        }
    )


def user_centric_table(log: EventLog) -> Table:
    """Generative-rec data: one row per user, full temporal sequences."""
    order = np.lexsort((log.timestamp, log.uid))
    uid = log.uid[order]
    boundaries = np.concatenate(
        ([0], np.flatnonzero(uid[1:] != uid[:-1]) + 1, [len(uid)])
    )
    uids, times, types, items = [], [], [], []
    for i in range(len(boundaries) - 1):
        lo, hi = boundaries[i], boundaries[i + 1]
        uids.append(int(uid[lo]))
        times.append(log.timestamp[order][lo:hi])
        types.append(log.event_type[order][lo:hi])
        items.append(log.item_id[order][lo:hi])
    return Table(
        {
            "uid": np.array(uids, dtype=np.int64),
            "event_times": times,
            "event_types": types,
            "event_items": items,
        }
    )


def storage_comparison(log: EventLog) -> dict[str, float]:
    """Rows and raw bytes of the two modelings (the challenge's delta)."""
    imp = impression_centric_table(log)
    usr = user_centric_table(log)

    def raw_bytes(table: Table) -> int:
        total = 0
        for values in table.columns.values():
            if isinstance(values, np.ndarray):
                total += values.nbytes
            else:
                total += sum(np.asarray(v).nbytes for v in values)
        return total

    return {
        "impression_rows": imp.num_rows,
        "user_rows": usr.num_rows,
        "impression_bytes": raw_bytes(imp),
        "user_bytes": raw_bytes(usr),
        "rows_ratio": imp.num_rows / max(1, usr.num_rows),
    }
