"""Workload generators standing in for the paper's production data.

Each generator reproduces the *structure* the corresponding experiment
depends on (see DESIGN.md §3): the Table 1 type census, Fig 1 size
distribution, Fig 3 sliding windows, user-centric event sequences,
multimodal samples with long-tail quality, and low-rank embeddings.
"""

from repro.workloads.ads import (
    AdsDataConfig,
    TABLE1_BREAKDOWN,
    TABLE1_TOTAL_COLUMNS,
    build_ads_schema,
    census_of,
    estimate_table_size_pb,
    generate_ads_table,
    top10_table_sizes_pb,
)
from repro.workloads.embeddings import (
    EmbeddingConfig,
    embedding_table,
    generate_embeddings,
)
from repro.workloads.events import (
    EventLog,
    EventLogConfig,
    EventType,
    generate_event_log,
    impression_centric_table,
    storage_comparison,
    user_centric_table,
)
from repro.workloads.multimodal_gen import MultimodalConfig, generate_samples
from repro.workloads.sparse import (
    SlidingWindowConfig,
    generate_click_sequences,
    overlap_profile,
)

__all__ = [
    "TABLE1_BREAKDOWN",
    "TABLE1_TOTAL_COLUMNS",
    "AdsDataConfig",
    "build_ads_schema",
    "census_of",
    "generate_ads_table",
    "top10_table_sizes_pb",
    "estimate_table_size_pb",
    "SlidingWindowConfig",
    "generate_click_sequences",
    "overlap_profile",
    "EventLog",
    "EventLogConfig",
    "EventType",
    "generate_event_log",
    "impression_centric_table",
    "user_centric_table",
    "storage_comparison",
    "MultimodalConfig",
    "generate_samples",
    "EmbeddingConfig",
    "generate_embeddings",
    "embedding_table",
]
