"""Embedding workload generator (paper §2.4 / LLM serving).

Embedding vectors are "typically normalized to (-1, 1)"; real embedding
matrices also have correlated dimensions (low-rank structure), which is
what gives BF16-aware and XOR-style encodings traction. The generator
produces both the normalized vectors and a low-rank + noise variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EmbeddingConfig:
    n_vectors: int = 1000
    dim: int = 64
    rank: int = 8  # effective rank of the low-rank component
    noise: float = 0.05
    seed: int = 0


def generate_embeddings(config: EmbeddingConfig) -> np.ndarray:
    """(n, dim) float32 matrix, rows normalized into (-1, 1)."""
    rng = np.random.default_rng(config.seed)
    factors = rng.normal(size=(config.n_vectors, config.rank))
    basis = rng.normal(size=(config.rank, config.dim))
    mat = factors @ basis + config.noise * rng.normal(
        size=(config.n_vectors, config.dim)
    )
    # squash into (-1, 1) like cosine-normalized embeddings
    mat = np.tanh(mat / np.abs(mat).max())
    return mat.astype(np.float32)


def embedding_table(config: EmbeddingConfig) -> dict[str, np.ndarray]:
    """Per-dimension columns, the storage layout Bullion would use."""
    mat = generate_embeddings(config)
    return {f"dim_{d}": mat[:, d].copy() for d in range(config.dim)}
