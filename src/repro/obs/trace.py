"""Span tracer: nested wall-clock spans with flame-chart exporters.

Usage::

    from repro.obs import trace

    trace.enable()
    with trace.span("query.snapshot", table="events"):
        with trace.span("query.file", file="f-0001.bln"):
            ...
    trace.export_chrome("out.trace.json")   # chrome://tracing / Perfetto
    trace.export_jsonl("out.spans.jsonl")

Tracing is **disabled by default**.  When disabled, :func:`span`
returns a shared no-op context manager — no :class:`Span` object is
constructed at all, which the ``Span.constructed`` class counter makes
testable (the overhead guardrail asserts a full scan allocates zero
spans).

Nesting is per-thread (a thread-local stack records the parent), so
spans opened on scan worker threads nest correctly on their own
timeline row.  Spans measure wall time between enter and exit; a span
held open across a generator ``yield`` will include the consumer's
time — prefer spans around synchronous regions.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanRecord",
    "Tracer",
    "default_tracer",
    "span",
    "enable",
    "disable",
    "enabled",
    "reset",
    "records",
    "export_jsonl",
    "export_chrome",
    "summarize",
    "load_trace",
    "summarize_events",
]


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    sid: int
    parent: int | None
    name: str
    tid: int
    start: float  # seconds relative to tracer epoch
    dur: float    # seconds
    attrs: dict = field(default_factory=dict)


class Span:
    """A live span; context manager. Constructed only while tracing is on."""

    __slots__ = ("_tracer", "name", "attrs", "sid", "parent", "_t0")

    #: Total Span constructions in this process — the zero-allocation
    #: guardrail for disabled tracing reads this.
    constructed = 0

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        Span.constructed += 1
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.sid = next(tracer._ids)
        self.parent = None
        self._t0 = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent = stack[-1]
        stack.append(self.sid)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.sid:
            stack.pop()
        rec = SpanRecord(
            sid=self.sid,
            parent=self.parent,
            name=self.name,
            tid=threading.get_ident(),
            start=self._t0 - tracer._epoch,
            dur=t1 - self._t0,
            attrs=self.attrs,
        )
        with tracer._lock:
            tracer._records.append(rec)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs: object) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects finished spans; one process-wide instance by default."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._ids = itertools.count()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: object):
        if not self.enabled:
            return _NOOP
        return Span(self, name, attrs)

    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    # Exporters --------------------------------------------------------------
    def _events(self) -> list[dict]:
        """Normalized event dicts (µs timestamps), sorted by start."""
        evs = [
            {
                "name": r.name,
                "sid": r.sid,
                "parent": r.parent,
                "tid": r.tid,
                "ts_us": r.start * 1e6,
                "dur_us": r.dur * 1e6,
                "attrs": r.attrs,
            }
            for r in self.records()
        ]
        evs.sort(key=lambda e: e["ts_us"])
        return evs

    def export_jsonl(self, path) -> None:
        """One JSON object per line, µs timestamps, parent span ids."""
        with open(path, "w", encoding="utf-8") as fh:
            for ev in self._events():
                fh.write(json.dumps(ev, default=str) + "\n")

    def export_chrome(self, path) -> None:
        """Chrome trace-event format: load in chrome://tracing or Perfetto."""
        events = [
            {
                "name": ev["name"],
                "cat": "repro",
                "ph": "X",
                "ts": ev["ts_us"],
                "dur": ev["dur_us"],
                "pid": 1,
                "tid": ev["tid"],
                "args": {k: str(v) for k, v in ev["attrs"].items()},
            }
            for ev in self._events()
        ]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)

    def summarize(self) -> list[dict]:
        return summarize_events(self._events())


def summarize_events(events: list[dict]) -> list[dict]:
    """Per-name totals with self-time, sorted by self-time descending.

    Self-time is a span's duration minus its direct children's
    durations.  Parentage uses explicit ``parent`` ids when present
    (JSONL exports) and falls back to per-thread interval containment
    (Chrome exports carry no parent ids).
    """
    child_time: dict[object, float] = {}
    have_parents = any(e.get("parent") is not None for e in events)
    if have_parents:
        for e in events:
            p = e.get("parent")
            if p is not None:
                child_time[p] = child_time.get(p, 0.0) + e["dur_us"]
        keyed = [(e.get("sid"), e) for e in events]
    else:
        # Containment nesting per tid: a span's parent is the innermost
        # earlier span on the same thread that still covers it.
        keyed = []
        by_tid: dict[object, list[dict]] = {}
        for i, e in enumerate(events):
            by_tid.setdefault(e.get("tid", 0), []).append(dict(e, _k=i))
            keyed.append((i, e))
        for evs in by_tid.values():
            evs.sort(key=lambda e: (e["ts_us"], -e["dur_us"]))
            stack: list[dict] = []
            for e in evs:
                end = e["ts_us"] + e["dur_us"]
                while stack and (
                    stack[-1]["ts_us"] + stack[-1]["dur_us"] < end
                    or stack[-1]["ts_us"] > e["ts_us"]
                ):
                    stack.pop()
                if stack:
                    k = stack[-1]["_k"]
                    child_time[k] = child_time.get(k, 0.0) + e["dur_us"]
                stack.append(e)
    agg: dict[str, dict] = {}
    for key, e in keyed:
        row = agg.setdefault(
            e["name"], {"name": e["name"], "count": 0, "total_us": 0.0, "self_us": 0.0}
        )
        row["count"] += 1
        row["total_us"] += e["dur_us"]
        row["self_us"] += max(0.0, e["dur_us"] - child_time.get(key, 0.0))
    return sorted(agg.values(), key=lambda r: -r["self_us"])


def load_trace(path) -> list[dict]:
    """Load a JSONL or Chrome trace file into normalized event dicts."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return [
                {
                    "name": e.get("name", "?"),
                    "tid": e.get("tid", 0),
                    "ts_us": float(e.get("ts", 0.0)),
                    "dur_us": float(e.get("dur", 0.0)),
                    "attrs": e.get("args", {}),
                }
                for e in payload["traceEvents"]
                if e.get("ph") == "X"
            ]
        if isinstance(payload, list):
            return [
                {
                    "name": e.get("name", "?"),
                    "tid": e.get("tid", 0),
                    "ts_us": float(e.get("ts", 0.0)),
                    "dur_us": float(e.get("dur", 0.0)),
                    "attrs": e.get("args", {}),
                }
                for e in payload
                if e.get("ph") == "X"
            ]
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        e = json.loads(line)
        if not isinstance(e, dict) or "name" not in e:
            raise ValueError(
                "not a trace export (expected JSONL span records or a "
                "Chrome traceEvents file)"
            )
        events.append(
            {
                "name": e.get("name", "?"),
                "sid": e.get("sid"),
                "parent": e.get("parent"),
                "tid": e.get("tid", 0),
                "ts_us": float(e.get("ts_us", 0.0)),
                "dur_us": float(e.get("dur_us", 0.0)),
                "attrs": e.get("attrs", {}),
            }
        )
    return events


_DEFAULT = Tracer()


def default_tracer() -> Tracer:
    return _DEFAULT


def span(name: str, **attrs: object):
    """Open a span on the default tracer (no-op while tracing is off)."""
    if not _DEFAULT.enabled:
        return _NOOP
    return Span(_DEFAULT, name, attrs)


def enable() -> None:
    _DEFAULT.enable()


def disable() -> None:
    _DEFAULT.disable()


def enabled() -> bool:
    return _DEFAULT.enabled


def reset() -> None:
    _DEFAULT.reset()


def records() -> list[SpanRecord]:
    return _DEFAULT.records()


def export_jsonl(path) -> None:
    _DEFAULT.export_jsonl(path)


def export_chrome(path) -> None:
    _DEFAULT.export_chrome(path)


def summarize() -> list[dict]:
    return _DEFAULT.summarize()
