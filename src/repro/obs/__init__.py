"""Unified observability layer: metrics registry + span tracer.

Every subsystem in the repo keeps per-call stats objects (``ScanStats``,
``QueryStats``, ``WriterStats``, ``IOStats``) that are born and die with
a single call.  This package adds the process-wide view on top:

``repro.obs.metrics``
    A thread-safe :class:`Registry` of counters, gauges and fixed-bucket
    histograms with labeled families, snapshot/delta semantics for
    tests, and Prometheus-text + JSON exports.

``repro.obs.trace``
    A span tracer — ``with trace.span("scan.file", file_id=...):`` —
    with nested spans, per-span attributes, near-zero overhead when
    disabled, and exporters to JSON-lines and Chrome
    ``chrome://tracing`` trace-event format.

``repro.obs.families``
    The canonical metric families (named ``<subsystem>_<noun>_<unit>``)
    and the :class:`StatsMirror` bridge that folds per-call stats
    counters into registry families at the original increment sites.

Instrumentation in the core/catalog/query layers honours a single
process-wide switch: :func:`set_enabled` / :func:`enabled`.  Metrics
default to **on** (counter bumps at group/file granularity are
negligible); tracing defaults to **off** and is enabled separately via
``trace.enable()``.
"""

from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    RegistrySnapshot,
    SIZE_BUCKETS,
    default_registry,
    enabled,
    set_enabled,
)
from repro.obs import families
from repro.obs import trace
from repro.obs.trace import span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "RegistrySnapshot",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "default_registry",
    "enabled",
    "set_enabled",
    "families",
    "trace",
    "span",
]
