"""Thread-safe process-wide metrics registry.

Three instrument kinds, all label-aware:

* :class:`Counter` — monotonically increasing float (``_total`` names).
* :class:`Gauge` — set/add value that can go up and down.
* :class:`Histogram` — fixed-bucket latency/size distribution from
  which p50/p90/p99 are derivable without storing samples.

Instruments are grouped into :class:`MetricFamily` objects keyed by a
metric name that must follow the repo convention documented in
ARCHITECTURE.md: ``<subsystem>_<noun>_<unit>`` — lowercase snake case,
ending in one of the recognised unit suffixes (``total``, ``bytes``,
``seconds``, ``rows``, ``ratio``, ``current``).  The registry rejects
nonconforming names at registration time, so a drive-by counter cannot
silently drift from the convention.

Registration is idempotent: calling ``registry.counter("x_y_total")``
twice returns the same family, so modules can resolve their handles at
import time.  :meth:`Registry.reset` zeroes values but keeps family and
child objects alive — cached handles stay valid across resets, which is
what makes snapshot/reset/delta semantics usable from tests.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "Registry",
    "RegistrySnapshot",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "default_registry",
    "enabled",
    "set_enabled",
    "validate_metric_name",
]

# Process-wide instrumentation switch.  Checked by the instrumentation
# sites in core/catalog/query (not by the registry itself, so direct
# registry users always work).
_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Turn core-layer instrumentation on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    return _ENABLED


#: Latency buckets (seconds): ~10µs to 10s, roughly 1-2.5-5 per decade.
DURATION_BUCKETS = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: Size buckets (bytes): 64 B to 64 MiB in powers of four.
SIZE_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536,
    262144, 1048576, 4194304, 16777216, 67108864,
)

#: Unit suffixes the naming convention recognises.
UNIT_SUFFIXES = ("total", "bytes", "seconds", "rows", "ratio", "current")

_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def validate_metric_name(name: str) -> None:
    """Raise ``ValueError`` unless *name* is ``<subsystem>_<noun>_<unit>``."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be snake_case with at least "
            "three segments: <subsystem>_<noun>_<unit>"
        )
    unit = name.rsplit("_", 1)[1]
    if unit not in UNIT_SUFFIXES:
        raise ValueError(
            f"metric name {name!r} must end in a unit suffix "
            f"{UNIT_SUFFIXES}, got {unit!r}"
        )


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock):
        self._value = 0.0
        self._lock = lock

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (e.g. bytes currently buffered)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock):
        self._value = 0.0
        self._lock = lock

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def add(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def set_max(self, v: float) -> None:
        """Record a high-water mark."""
        with self._lock:
            if v > self._value:
                self._value = float(v)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram: bucket counts + sum + count, no samples.

    Quantiles are derived by linear interpolation inside the bucket that
    contains the target rank, the same estimate Prometheus'
    ``histogram_quantile`` computes server-side.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, lock: threading.Lock, buckets: Iterable[float]):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, v: float) -> None:
        idx = bisect_left(self._bounds, v)
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1); 0.0 when empty."""
        return _bucket_quantile(self._bounds, self._counts, self._count, q)


def _bucket_quantile(
    bounds: tuple[float, ...], counts: Iterable[int], total: int, q: float
) -> float:
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0:
        return 0.0
    target = q * total
    cum = 0
    lower = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            if i < len(bounds):
                lower = bounds[i]
            continue
        if cum + c >= target:
            if i >= len(bounds):  # +Inf bucket: clamp to last finite bound
                return bounds[-1]
            upper = bounds[i]
            frac = (target - cum) / c
            return lower + (upper - lower) * frac
        cum += c
        if i < len(bounds):
            lower = bounds[i]
    return bounds[-1]


_TYPE_FACTORIES = {
    "counter": lambda lock, _buckets: Counter(lock),
    "gauge": lambda lock, _buckets: Gauge(lock),
    "histogram": lambda lock, buckets: Histogram(lock, buckets),
}


class MetricFamily:
    """A named metric plus its per-label-set children.

    An unlabeled family proxies ``inc``/``set``/``add``/``observe`` to
    its single implicit child, so ``registry.counter("a_b_total").inc()``
    works without a ``labels()`` hop.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = (),
    ):
        validate_metric_name(name)
        for ln in label_names:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"bad label name {ln!r} for metric {name!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            self._children[()] = _TYPE_FACTORIES[kind](self._lock, buckets)

    def labels(self, **labels: object):
        """Return the child instrument for this label set (creating it)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[ln]) for ln in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _TYPE_FACTORIES[self.kind](self._lock, self.buckets)
                    self._children[key] = child
        return child

    def _sole(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "use .labels(...)"
            )
        return self._children[()]

    # Unlabeled conveniences -------------------------------------------------
    def inc(self, n: float = 1.0) -> None:
        self._sole().inc(n)

    def set(self, v: float) -> None:
        self._sole().set(v)

    def add(self, n: float = 1.0) -> None:
        self._sole().add(n)

    def set_max(self, v: float) -> None:
        self._sole().set_max(v)

    def observe(self, v: float) -> None:
        self._sole().observe(v)

    @property
    def value(self) -> float:
        return self._sole().value

    def quantile(self, q: float) -> float:
        return self._sole().quantile(q)

    # Introspection ----------------------------------------------------------
    def children(self) -> dict[tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)

    def _reset(self) -> None:
        """Zero values in place, keeping child objects alive."""
        with self._lock:
            for child in self._children.values():
                if isinstance(child, Histogram):
                    child._counts[:] = [0] * len(child._counts)
                    child._sum = 0.0
                    child._count = 0
                else:
                    child._value = 0.0


class Registry:
    """Thread-safe collection of metric families."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] = (),
    ) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind or fam.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {fam.kind} "
                        f"with labels {fam.label_names}"
                    )
                return fam
            fam = MetricFamily(name, kind, help, tuple(labels), buckets)
            self._families[name] = fam
            return fam

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DURATION_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            name, "histogram", help, tuple(labels), tuple(buckets)
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Zero every value; families and children stay registered."""
        for fam in self.families():
            fam._reset()

    # Snapshot / delta -------------------------------------------------------
    def snapshot(self) -> "RegistrySnapshot":
        data = {}
        for fam in self.families():
            samples = {}
            for key, child in fam.children().items():
                if isinstance(child, Histogram):
                    samples[key] = {
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": list(child.bucket_counts),
                    }
                else:
                    samples[key] = child.value
            data[fam.name] = {
                "kind": fam.kind,
                "help": fam.help,
                "label_names": fam.label_names,
                "buckets": fam.buckets,
                "samples": samples,
            }
        return RegistrySnapshot(data)

    def delta(self, since: "RegistrySnapshot") -> "RegistrySnapshot":
        return self.snapshot().delta(since)

    # Exports ----------------------------------------------------------------
    def export_text(self) -> str:
        """Prometheus text exposition format."""
        return self.snapshot().export_text()

    def export_dict(self) -> dict:
        return self.snapshot().export_dict()

    def export_json(self, indent: int | None = None) -> str:
        return json.dumps(self.export_dict(), indent=indent, sort_keys=True)

    def write_snapshot(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_json(indent=2))
            fh.write("\n")


def _escape_label(v: str) -> str:
    return v.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(v: float) -> str:
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


class RegistrySnapshot:
    """Point-in-time copy of a registry's values.

    Supports ``delta`` against an older snapshot (counter and histogram
    values subtract; gauges keep the newer reading) so tests can assert
    on exactly the increments their code produced.
    """

    SCHEMA = "repro_metrics/v1"

    def __init__(self, data: dict):
        self.data = data

    def _sample(self, name: str, labels: Mapping[str, object]):
        fam = self.data.get(name)
        if fam is None:
            return None
        key = tuple(str(labels[ln]) for ln in fam["label_names"])
        return fam["samples"].get(key)

    def value(self, name: str, **labels: object) -> float:
        """Counter/gauge value, or histogram observation count; 0 if absent."""
        s = self._sample(name, labels)
        if s is None:
            return 0.0
        if isinstance(s, dict):
            return float(s["count"])
        return float(s)

    def sum(self, name: str, **labels: object) -> float:
        """Histogram sum of observations; 0 if absent."""
        s = self._sample(name, labels)
        if isinstance(s, dict):
            return float(s["sum"])
        return 0.0

    def quantile(self, name: str, q: float, **labels: object) -> float:
        fam = self.data.get(name)
        s = self._sample(name, labels)
        if not isinstance(s, dict) or fam is None:
            return 0.0
        return _bucket_quantile(
            tuple(fam["buckets"]), s["buckets"], s["count"], q
        )

    def delta(self, older: "RegistrySnapshot") -> "RegistrySnapshot":
        out = {}
        for name, fam in self.data.items():
            old_fam = older.data.get(name, {"samples": {}})
            samples = {}
            for key, s in fam["samples"].items():
                old = old_fam["samples"].get(key)
                if isinstance(s, dict):
                    if isinstance(old, dict):
                        samples[key] = {
                            "count": s["count"] - old["count"],
                            "sum": s["sum"] - old["sum"],
                            "buckets": [
                                a - b
                                for a, b in zip(s["buckets"], old["buckets"])
                            ],
                        }
                    else:
                        samples[key] = dict(s)
                elif fam["kind"] == "counter":
                    samples[key] = s - (
                        old if isinstance(old, (int, float)) else 0.0
                    )
                else:  # gauge: keep the newer reading
                    samples[key] = s
            out[name] = dict(fam, samples=samples)
        return RegistrySnapshot(out)

    # Exports ----------------------------------------------------------------
    def export_dict(self) -> dict:
        metrics = []
        for name in sorted(self.data):
            fam = self.data[name]
            samples = []
            for key in sorted(fam["samples"]):
                s = fam["samples"][key]
                labels = dict(zip(fam["label_names"], key))
                if isinstance(s, dict):
                    samples.append(
                        {
                            "labels": labels,
                            "count": s["count"],
                            "sum": s["sum"],
                            "buckets": [
                                {"le": le, "n": n}
                                for le, n in zip(fam["buckets"], s["buckets"])
                            ]
                            + [{"le": "+Inf", "n": s["buckets"][-1]}],
                            "p50": _bucket_quantile(
                                tuple(fam["buckets"]), s["buckets"],
                                s["count"], 0.50,
                            ),
                            "p90": _bucket_quantile(
                                tuple(fam["buckets"]), s["buckets"],
                                s["count"], 0.90,
                            ),
                            "p99": _bucket_quantile(
                                tuple(fam["buckets"]), s["buckets"],
                                s["count"], 0.99,
                            ),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": s})
            metrics.append(
                {
                    "name": name,
                    "type": fam["kind"],
                    "help": fam["help"],
                    "samples": samples,
                }
            )
        return {"schema": self.SCHEMA, "metrics": metrics}

    def export_json(self, indent: int | None = None) -> str:
        return json.dumps(self.export_dict(), indent=indent, sort_keys=True)

    def export_text(self) -> str:
        lines = []
        for name in sorted(self.data):
            fam = self.data[name]
            if fam["help"]:
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['kind']}")
            for key in sorted(fam["samples"]):
                s = fam["samples"][key]
                pairs = [
                    f'{ln}="{_escape_label(v)}"'
                    for ln, v in zip(fam["label_names"], key)
                ]
                base = "{" + ",".join(pairs) + "}" if pairs else ""
                if isinstance(s, dict):
                    cum = 0
                    for le, n in zip(fam["buckets"], s["buckets"]):
                        cum += n
                        lp = pairs + [f'le="{_fmt(le)}"']
                        lines.append(
                            f"{name}_bucket{{{','.join(lp)}}} {cum}"
                        )
                    lp = pairs + ['le="+Inf"']
                    lines.append(
                        f"{name}_bucket{{{','.join(lp)}}} {s['count']}"
                    )
                    lines.append(f"{name}_sum{base} {_fmt(s['sum'])}")
                    lines.append(f"{name}_count{base} {s['count']}")
                else:
                    lines.append(f"{name}{base} {_fmt(s)}")
        return "\n".join(lines) + "\n"


_DEFAULT = Registry()


def default_registry() -> Registry:
    """The process-wide registry all built-in instrumentation targets."""
    return _DEFAULT


def load_snapshot(obj) -> "RegistrySnapshot":
    """Rehydrate an ``export_dict()`` payload into a queryable snapshot.

    Accepts the payload itself or any dict embedding one under a
    ``"metrics"`` key whose value has the export schema (as the
    ``BENCH_*.json`` bench reports do).
    """
    if isinstance(obj, dict) and obj.get("schema") != RegistrySnapshot.SCHEMA:
        inner = obj.get("metrics")
        if isinstance(inner, dict) and inner.get("schema") == RegistrySnapshot.SCHEMA:
            obj = inner
    if not isinstance(obj, dict) or obj.get("schema") != RegistrySnapshot.SCHEMA:
        raise ValueError(
            f"not a {RegistrySnapshot.SCHEMA} metrics export"
        )
    data = {}
    for m in obj["metrics"]:
        label_names = ()
        samples = {}
        buckets = ()
        for smp in m["samples"]:
            label_names = tuple(smp["labels"].keys())
            key = tuple(str(v) for v in smp["labels"].values())
            if "buckets" in smp:
                finite = [b for b in smp["buckets"] if b["le"] != "+Inf"]
                buckets = tuple(b["le"] for b in finite)
                samples[key] = {
                    "count": smp["count"],
                    "sum": smp["sum"],
                    "buckets": [b["n"] for b in finite]
                    + [smp["count"] - sum(b["n"] for b in finite)],
                }
            else:
                samples[key] = float(smp["value"])
        data[m["name"]] = {
            "kind": m["type"],
            "help": m.get("help", ""),
            "label_names": label_names,
            "buckets": buckets,
            "samples": samples,
        }
    return RegistrySnapshot(data)
