"""Canonical metric families and the per-call-stats → registry bridge.

Every metric the built-in instrumentation emits is declared here, in
one place, so the naming-convention lint test and the ARCHITECTURE.md
inventory have a single source of truth.  Names follow
``<subsystem>_<noun>_<unit>`` (see :func:`repro.obs.metrics.validate_metric_name`).

:class:`StatsMirror` folds the existing per-call stats dataclasses
(``ScanStats``, ``QueryStats``) into registry counter families *at the
original increment sites*: the stats objects grow a ``bump(**deltas)``
method that updates the per-call fields exactly as ``+=`` did and, when
instrumentation is enabled, adds the same deltas to the process-wide
counters.  ``merge()``-style bulk copies between stats objects stay raw
attribute writes, so a value is published to the registry exactly once
— this is what makes the global counters reconcile exactly with the
summed per-call stats.
"""

from __future__ import annotations

from repro.obs import metrics as _m

__all__ = [
    "StatsMirror",
    "SCAN_MIRROR",
    "QUERY_MIRROR",
    "WRITER_MIRROR",
    "STANDARD_FAMILIES",
    "backend_label",
]

_REG = _m.default_registry()


class StatsMirror:
    """Maps per-call stats field names onto registry counter families."""

    def __init__(self, field_to_metric: dict[str, str], help_prefix: str):
        self._handles = {
            fld: _REG.counter(name, f"{help_prefix}: {fld} (process-wide)")
            for fld, name in field_to_metric.items()
        }
        self.field_to_metric = dict(field_to_metric)

    def bump(self, deltas: dict[str, int]) -> None:
        if not _m.enabled():
            return
        handles = self._handles
        for fld, n in deltas.items():
            if n:
                handles[fld].inc(n)


#: ScanStats fields → registry counters (decode-path pushdown layers).
SCAN_MIRROR = StatsMirror(
    {
        "files_scanned": "scan_files_scanned_total",
        "files_pruned": "scan_files_pruned_total",
        # ``groups_total`` would render as ``scan_groups_total_total``;
        # the registry name says what the field means instead.
        "groups_total": "scan_groups_considered_total",
        "groups_pruned": "scan_groups_pruned_total",
        "groups_scanned": "scan_groups_scanned_total",
        "groups_empty": "scan_groups_empty_total",
        "rows_pruned": "scan_rows_pruned_total",
        "rows_scanned": "scan_rows_scanned_total",
        "rows_matched": "scan_rows_matched_total",
        "chunks_fetched": "scan_chunks_fetched_total",
        "chunks_skipped": "scan_chunks_skipped_total",
    },
    "Scan pushdown",
)

#: QueryStats fields → registry counters (answer-path split).
QUERY_MIRROR = StatsMirror(
    {
        "files_total": "query_files_considered_total",
        "files_pruned": "query_files_pruned_total",
        "files_meta_answered": "query_files_meta_answered_total",
        "files_footer_answered": "query_files_footer_answered_total",
        "files_decoded": "query_files_decoded_total",
        "groups_meta_answered": "query_groups_meta_answered_total",
        "groups_decoded": "query_groups_decoded_total",
        "rows_from_metadata": "query_rows_from_metadata_total",
    },
    "Query answer paths",
)

#: WriterStats counter fields → registry counters (gauge-like peaks are
#: per-call evidence and stay per-call).
WRITER_MIRROR = StatsMirror(
    {
        "groups_flushed": "writer_groups_flushed_total",
        "pages_written": "writer_pages_written_total",
    },
    "Streaming writer",
)

# --- Cache / reader -----------------------------------------------------
CACHE_HITS = _REG.counter(
    "scan_cache_hits_total", "ChunkCache lookups served from memory"
)
CACHE_MISSES = _REG.counter(
    "scan_cache_misses_total", "ChunkCache lookups that fell through to storage"
)
CACHE_EVICTIONS = _REG.counter(
    "scan_cache_evictions_total", "ChunkCache LRU evictions"
)
READER_OPENS = _REG.counter(
    "scan_files_opened_total", "BullionReader constructions (footer reads)"
)
CHUNK_FETCH_SECONDS = _REG.histogram(
    "scan_chunk_fetch_seconds",
    "Latency of one raw chunk fetch (cache miss included)",
    labels=("backend",),
)

# --- Storage (InstrumentedStorage wrapper) ------------------------------
STORAGE_READ_OPS = _REG.counter(
    "storage_read_ops_total", "preads issued", labels=("backend",)
)
STORAGE_READ_BYTES = _REG.counter(
    "storage_read_bytes_total", "bytes returned by pread", labels=("backend",)
)
STORAGE_READ_SECONDS = _REG.histogram(
    "storage_read_seconds", "pread latency", labels=("backend",)
)
STORAGE_WRITE_OPS = _REG.counter(
    "storage_write_ops_total",
    "pwrites/appends issued",
    labels=("backend",),
)
STORAGE_WRITE_BYTES = _REG.counter(
    "storage_write_bytes_total",
    "bytes handed to pwrite/append",
    labels=("backend",),
)
STORAGE_WRITE_SECONDS = _REG.histogram(
    "storage_write_seconds", "pwrite/append latency", labels=("backend",)
)
STORAGE_SYNC_OPS = _REG.counter(
    "storage_sync_ops_total", "fsync-style syncs issued", labels=("backend",)
)
STORAGE_SYNC_SECONDS = _REG.histogram(
    "storage_sync_seconds", "sync latency", labels=("backend",)
)
STORAGE_IO_SIZE_BYTES = _REG.histogram(
    "storage_io_bytes",
    "Distribution of I/O request sizes",
    labels=("backend", "op"),
    buckets=_m.SIZE_BUCKETS,
)

# --- Object store (ObjectStorage backend) -------------------------------
OBJECT_REQUESTS = _REG.counter(
    "objectstore_requests_total",
    "Ranged GET / PUT requests issued to the modelled object store",
    labels=("op",),
)
OBJECT_REQUEST_BYTES = _REG.counter(
    "objectstore_request_bytes_total",
    "Bytes moved by object-store requests",
    labels=("op",),
)
OBJECT_REQUEST_SECONDS = _REG.histogram(
    "objectstore_request_seconds",
    "Modelled per-request cost (fixed latency + bandwidth + jitter)",
    labels=("op",),
)

# --- Coalescing fetch planner -------------------------------------------
SCAN_COALESCED_REQUESTS = _REG.counter(
    "scan_coalesced_requests_total",
    "Ranged reads issued by the chunk-fetch coalescing planner",
)
SCAN_COALESCED_CHUNKS = _REG.counter(
    "scan_coalesced_chunks_total",
    "Chunks served out of coalesced ranged reads",
)
SCAN_COALESCE_WASTE_BYTES = _REG.counter(
    "scan_coalesce_waste_bytes_total",
    "Gap bytes fetched by coalescing and discarded after slicing",
)

# --- Tiered chunk cache (repro.core.chunk_cache) ------------------------
CACHE_TIER_HITS = _REG.counter(
    "cache_tier_hits_total",
    "TieredChunkCache lookups served per tier",
    labels=("tier",),
)
CACHE_TIER_MISSES = _REG.counter(
    "cache_tier_misses_total",
    "TieredChunkCache lookups that fell through to the backend",
)
CACHE_TIER_EVICTIONS = _REG.counter(
    "cache_tier_evictions_total",
    "TieredChunkCache LRU evictions per tier",
    labels=("tier",),
)
CACHE_SPILLS = _REG.counter(
    "cache_spills_total",
    "Memory-tier entries spilled to the disk tier",
)
CACHE_SPILL_BYTES = _REG.counter(
    "cache_spill_bytes_total",
    "Bytes spilled from the memory tier to the disk tier",
)
CACHE_SINGLEFLIGHT_WAITS = _REG.counter(
    "cache_singleflight_waits_total",
    "Lookups that blocked on another thread's in-flight fetch",
)
CACHE_CHECKSUM_FAILURES = _REG.counter(
    "cache_checksum_failures_total",
    "Disk-tier entries rejected (truncated or corrupt spill file)",
)
CACHE_TIER_BYTES = _REG.gauge(
    "cache_tier_bytes",
    "Bytes currently resident per cache tier",
    labels=("cache", "tier"),
)

# --- Writer timings -----------------------------------------------------
WRITER_FLUSH_SECONDS = _REG.histogram(
    "writer_flush_seconds", "Row-group flush latency (encode + append)"
)
WRITER_ENCODE_SECONDS = _REG.histogram(
    "writer_encode_seconds", "Single page encode latency"
)

# --- Query timings ------------------------------------------------------
QUERY_SECONDS = _REG.histogram(
    "query_aggregate_seconds", "End-to-end aggregate query latency"
)

# --- Catalog / transactions ---------------------------------------------
COMMIT_ATTEMPTS = _REG.counter(
    "catalog_commit_attempts_total", "CAS commit attempts (one per loop turn)"
)
COMMIT_CONFLICTS = _REG.counter(
    "catalog_commit_conflicts_total", "CAS attempts lost to a concurrent commit"
)
COMMIT_REPLAYS = _REG.counter(
    "catalog_commit_replays_total",
    "Conflicts revalidated and replayed against the new base snapshot",
)
COMMITS = _REG.counter(
    "catalog_commits_total", "Transactions committed", labels=("operation",)
)
COMMIT_ABORTS = _REG.counter(
    "catalog_commit_aborts_total", "Transactions aborted"
)
COMMIT_SECONDS = _REG.histogram(
    "catalog_commit_seconds", "Commit latency including conflict replays"
)

# --- Maintenance --------------------------------------------------------
MAINT_CYCLES = _REG.counter(
    "maintenance_cycles_total", "run_once invocations"
)
MAINT_CYCLE_SECONDS = _REG.histogram(
    "maintenance_cycle_seconds", "Full maintenance cycle latency"
)
MAINT_JOBS_RUN = _REG.counter(
    "maintenance_jobs_run_total", "Jobs executed", labels=("kind",)
)
MAINT_JOBS_SKIPPED = _REG.counter(
    "maintenance_jobs_skipped_total", "Jobs planned but skipped", labels=("kind",)
)
MAINT_BYTES_RECLAIMED = _REG.counter(
    "maintenance_bytes_reclaimed_total", "Bytes deleted by expiry GC"
)
MAINT_ROWS_DELETED = _REG.counter(
    "maintenance_rows_deleted_total", "Rows hard-deleted by compliance rewrites"
)
MAINT_FILES_DELETED = _REG.counter(
    "maintenance_files_deleted_total", "Data files deleted by expiry GC"
)
MAINT_SNAPSHOTS_EXPIRED = _REG.counter(
    "maintenance_snapshots_expired_total", "Snapshots expired"
)
MAINT_GC_REFUSALS = _REG.counter(
    "maintenance_gc_refusals_total",
    "Expiry candidates refused (pinned snapshot or gc-grace)",
    labels=("reason",),
)

# --- Serving layer (repro.server) ---------------------------------------
SERVER_REQUESTS = _REG.counter(
    "server_requests_total",
    "Requests received (wire frames and HTTP probes), by operation",
    labels=("op",),
)
SERVER_RESPONSES = _REG.counter(
    "server_responses_total",
    "Requests finished, partitioned by outcome (ok/error/rejected/cancelled)",
    labels=("outcome",),
)
SERVER_REQUEST_SECONDS = _REG.histogram(
    "server_request_seconds",
    "End-to-end request latency on the server (parse to last byte)",
    labels=("op",),
)
SERVER_REJECTED = _REG.counter(
    "server_requests_rejected_total",
    "Requests refused by admission control, by reason",
    labels=("reason",),
)
SERVER_ERRORS = _REG.counter(
    "server_request_errors_total",
    "Typed error responses sent, by error code",
    labels=("code",),
)
SERVER_CANCELLED = _REG.counter(
    "server_requests_cancelled_total",
    "Requests abandoned because the client disconnected mid-response",
)
SERVER_DEADLINE_EXPIRED = _REG.counter(
    "server_deadline_expirations_total",
    "Requests that hit their deadline before completing",
)
SERVER_INFLIGHT = _REG.gauge(
    "server_inflight_requests_current",
    "scan/query requests currently executing",
)
SERVER_QUEUED = _REG.gauge(
    "server_queued_requests_current",
    "scan/query requests waiting for a worker slot",
)
SERVER_CONNS_OPENED = _REG.counter(
    "server_connections_opened_total", "Client connections accepted"
)
SERVER_CONNS_CLOSED = _REG.counter(
    "server_connections_closed_total", "Client connections torn down"
)
SERVER_CONNS = _REG.gauge(
    "server_connections_current", "Client connections currently open"
)
SERVER_BYTES_SENT = _REG.counter(
    "server_bytes_sent_total", "Payload bytes written to clients"
)
SERVER_BYTES_RECEIVED = _REG.counter(
    "server_bytes_received_total", "Payload bytes read from clients"
)
SERVER_SCAN_BATCHES = _REG.counter(
    "server_scan_batches_total", "Scan batch frames streamed to clients"
)
SERVER_SCAN_ROWS = _REG.counter(
    "server_scan_rows_total", "Rows streamed to clients in scan batches"
)
SERVER_RESULT_CACHE_HITS = _REG.counter(
    "server_result_cache_hits_total",
    "Query results served from the (snapshot_id, plan) result cache",
)
SERVER_RESULT_CACHE_MISSES = _REG.counter(
    "server_result_cache_misses_total",
    "Query results computed because the result cache missed",
)
SERVER_PLAN_CACHE_HITS = _REG.counter(
    "server_plan_cache_hits_total",
    "Scan plans (pruned file sets) served from the plan cache",
)
SERVER_PLAN_CACHE_MISSES = _REG.counter(
    "server_plan_cache_misses_total",
    "Scan plans pruned afresh because the plan cache missed",
)
SERVER_PIN_CACHE_HITS = _REG.counter(
    "server_pin_cache_hits_total",
    "Requests that reused a cached pinned snapshot",
)
SERVER_PIN_CACHE_MISSES = _REG.counter(
    "server_pin_cache_misses_total",
    "Requests that had to pin a snapshot afresh",
)
SERVER_FOOTER_CACHE_HITS = _REG.counter(
    "server_footer_cache_hits_total",
    "Reader-pool lookups served without re-reading a footer",
)
SERVER_FOOTER_CACHE_MISSES = _REG.counter(
    "server_footer_cache_misses_total",
    "Reader-pool lookups that opened a file (footer read)",
)
SERVER_CACHE_INVALIDATIONS = _REG.counter(
    "server_cache_invalidations_total",
    "Entries dropped from server caches by mutation/commit invalidation",
    labels=("cache",),
)
SERVER_POOLED_READERS = _REG.gauge(
    "server_pooled_readers_current",
    "Open BullionReaders held by server reader pools",
)

#: Every family above, for the lint test and the docs inventory.
STANDARD_FAMILIES = tuple(sorted(f.name for f in _REG.families()))


def backend_label(storage) -> str:
    """A low-cardinality backend label for a storage object.

    Class-derived (``file``, ``memory``, ``latency``), never the file
    name — per-file labels would explode label cardinality.
    """
    inner = getattr(storage, "inner", None)
    if inner is not None and type(storage).__name__ == "InstrumentedStorage":
        return backend_label(inner)
    cls = type(storage).__name__
    return {
        "FileStorage": "file",
        "SimulatedStorage": "memory",
        "LatencyModelledStorage": "latency",
        "ObjectStorage": "object",
    }.get(cls, cls.lower().removesuffix("storage") or "unknown")
