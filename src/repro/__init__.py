"""Bullion: a column store for machine learning — full reproduction.

Reproduction of Liao, Liu, Chen & Abadi, *Bullion: A Column Store for
Machine Learning* (CIDR 2025). See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    import numpy as np
    from repro import BullionWriter, BullionReader, Table, SimulatedStorage

    storage = SimulatedStorage()
    table = Table({"clicks": np.arange(1000, dtype=np.int64)})
    BullionWriter(storage).write(table)
    reader = BullionReader(storage)
    clicks = reader.read_column("clicks")

Subpackages
-----------
``repro.core``          the Bullion file format (footer, pages, Merkle
                        checksums, deletion compliance)
``repro.catalog``       transactional table catalog: snapshots, atomic
                        commits, time travel, background maintenance
``repro.expr``          unified expression engine: predicate AST with
                        vectorized, interval (pruning) and JSON
                        evaluators, pushed down through catalog
                        manifests, footer zone maps and decode-time
                        filtering
``repro.query``         vectorized aggregation engine
                        (count/sum/min/max/mean, where, group-by)
                        with metadata-only fast paths: provable
                        extents answer from manifest/footer stats
                        with zero data I/O
``repro.encodings``     the Table 2 cascading encoding catalog
``repro.cascading``     sampling-based encoding selection (§2.6)
``repro.quantization``  storage quantization (§2.4, Fig 6)
``repro.multimodal``    dual-table multimodal layout (§2.5, Fig 7)
``repro.baseline``      Parquet-like comparator format (Fig 5)
``repro.workloads``     synthetic stand-ins for the production data
``repro.iosim``         pluggable storage backends (simulated, real
                        file, latency-modelled) with I/O stats
"""

from repro.core import (
    BullionReader,
    BullionWriter,
    Field,
    LogicalType,
    Predicate,
    Scan,
    ScanStats,
    Schema,
    ShardedDataset,
    Table,
    WriterOptions,
    delete_rows,
    rewrite_without_rows,
    write_table,
)
from repro.expr import Expr, col, parse
from repro.iosim import FileStorage, LatencyModelledStorage, SimulatedStorage

__version__ = "1.2.0"

__all__ = [
    "BullionReader",
    "BullionWriter",
    "WriterOptions",
    "write_table",
    "delete_rows",
    "rewrite_without_rows",
    "Table",
    "Schema",
    "Field",
    "LogicalType",
    "Scan",
    "ScanStats",
    "Predicate",
    "Expr",
    "col",
    "parse",
    "ShardedDataset",
    "SimulatedStorage",
    "FileStorage",
    "LatencyModelledStorage",
    "__version__",
]
