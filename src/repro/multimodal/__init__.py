"""Multimodal storage (paper §2.5, Fig 7).

Dual-table layout: columnar meta table with inlined highlight frames +
Avro-like row-oriented media table for full-resolution video, plus the
quality-aware row reordering and recsys column reordering strategies.
"""

from repro.multimodal.dataset import (
    BatchReadReport,
    MultimodalDataset,
    MultimodalSample,
)
from repro.multimodal.media import (
    MediaReader,
    MediaRef,
    MediaWriter,
)
from repro.multimodal.quality import (
    contiguous_run_stats,
    reorder_columns,
    sort_rows_by_quality,
)

__all__ = [
    "MultimodalDataset",
    "MultimodalSample",
    "BatchReadReport",
    "MediaWriter",
    "MediaReader",
    "MediaRef",
    "sort_rows_by_quality",
    "reorder_columns",
    "contiguous_run_stats",
]
