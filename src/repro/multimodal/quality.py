"""Quality-aware and access-aware data organization (paper §2.5).

Two reordering strategies, on orthogonal axes of the storage structure:

* **row reordering for LLM training** — "incoming row data is presorted
  by quality score in descending order prior to insertion into the
  storage. This presorting approach improves contiguous access to
  high-quality video frames during training."
* **column reordering for recommendation systems** — "the system
  prioritizes frequently accessed, important features through column
  reordering, ensuring these features (columns) are stored contiguously
  within row groups" (the Meta-Alpha-style feature reordering of §3).
"""

from __future__ import annotations

import numpy as np

from repro.core.table import Table


def sort_rows_by_quality(table: Table, quality_column: str) -> tuple[Table, np.ndarray]:
    """Reorder rows by descending quality score.

    Returns the reordered table and the permutation applied (original
    row index per new position), so callers can keep external
    references (e.g. media refs) aligned.
    """
    scores = np.asarray(table.column(quality_column), dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    reordered: dict[str, object] = {}
    for name, values in table.columns.items():
        if isinstance(values, np.ndarray):
            reordered[name] = values[order]
        else:
            reordered[name] = [values[i] for i in order]
    return Table(reordered), order


def reorder_columns(table: Table, hot_columns: list[str]) -> Table:
    """Place frequently-accessed features first (contiguous on disk).

    Bullion lays columns out in insertion order within each row group,
    so dict order is physical adjacency.
    """
    missing = [c for c in hot_columns if c not in table.columns]
    if missing:
        raise KeyError(f"hot columns not in table: {missing}")
    cold = [c for c in table.columns if c not in hot_columns]
    return Table(
        {name: table.columns[name] for name in list(hot_columns) + cold}
    )


def contiguous_run_stats(selected_rows: np.ndarray) -> tuple[int, float]:
    """(number of contiguous runs, mean run length) of selected row ids.

    The quality-presort benchmark's figure of merit: fewer, longer runs
    mean fewer seeks for the same training sample set.
    """
    rows = np.sort(np.asarray(selected_rows, dtype=np.int64))
    if len(rows) == 0:
        return 0, 0.0
    breaks = int(np.count_nonzero(np.diff(rows) > 1))
    runs = breaks + 1
    return runs, len(rows) / runs
