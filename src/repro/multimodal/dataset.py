"""The Fig 7 dual-table multimodal layout, end to end.

Meta table (Bullion, columnar): text hash, tags, captions, audio bytes,
quality score, frame index (``list<int64>``), **highlight frames inlined
as binary columns**, and a (block_offset, index, size) video-lookup
reference into the media table.

Media table (Avro-like, row-oriented): the full-resolution video bytes,
touched "only [in] rare cases".

Training read path: filter meta rows by quality, read text + audio +
highlight frames from the columnar store alone; optionally bounce to
the media table per sample (the pre-Bullion layout the paper calls
"fragmented I/O"). The benchmark contrasts:

* inline highlights vs. per-sample media lookups (Fig 7's point), and
* quality-presorted vs. unsorted row order (§2.5's presorting claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reader import BullionReader
from repro.core.table import Table
from repro.core.writer import BullionWriter, WriterOptions
from repro.iosim import IOStats, SeekModel, SimulatedStorage
from repro.multimodal.media import MediaReader, MediaRef, MediaWriter
from repro.multimodal.quality import contiguous_run_stats, sort_rows_by_quality


@dataclass
class MultimodalSample:
    """One training sample before ingestion."""

    sample_id: int
    text_hash: int
    tags: bytes
    caption: bytes
    audio: bytes
    quality: float
    frame_index: np.ndarray  # indices of highlight frames in the video
    highlight_frames: list[bytes]  # reduced-resolution frames, inlined
    video: bytes  # full-size video, media table only


@dataclass
class BatchReadReport:
    """I/O accounting for one training epoch of reads."""

    samples_read: int
    meta: IOStats
    media: IOStats
    selected_runs: int
    mean_run_length: float

    def modelled_time(self, model: SeekModel | None = None) -> float:
        return self.meta.modelled_time(model) + self.media.modelled_time(model)


class MultimodalDataset:
    """Ingest samples into the dual-table layout; read like a trainer."""

    def __init__(
        self,
        meta_storage: SimulatedStorage | None = None,
        media_storage: SimulatedStorage | None = None,
        presort_by_quality: bool = True,
        rows_per_page: int = 256,
        rows_per_group: int = 4096,
    ) -> None:
        self.meta_storage = meta_storage or SimulatedStorage("meta")
        self.media_storage = media_storage or SimulatedStorage("media")
        self._presort = presort_by_quality
        self._rows_per_page = rows_per_page
        self._rows_per_group = rows_per_group
        self._num_samples = 0

    # -- ingest ---------------------------------------------------------
    def ingest(self, samples: list[MultimodalSample]) -> None:
        """Write media first (refs), then the columnar meta table."""
        media_writer = MediaWriter(
            self.media_storage, field_names=["sample_id", "video"]
        )
        for s in samples:
            media_writer.append(
                {
                    "sample_id": s.sample_id.to_bytes(8, "little"),
                    "video": s.video,
                }
            )
        refs = media_writer.close()

        table = Table(
            {
                "sample_id": np.array(
                    [s.sample_id for s in samples], dtype=np.int64
                ),
                "text_hash": np.array(
                    [s.text_hash for s in samples], dtype=np.int64
                ),
                "tags": [s.tags for s in samples],
                "caption": [s.caption for s in samples],
                "audio": [s.audio for s in samples],
                "quality": np.array(
                    [s.quality for s in samples], dtype=np.float64
                ),
                "frame_index": [
                    np.asarray(s.frame_index, dtype=np.int64) for s in samples
                ],
                "highlight_frames": [s.highlight_frames for s in samples],
                "video_block": np.array(
                    [r.block_offset for r in refs], dtype=np.int64
                ),
                "video_index": np.array(
                    [r.index_in_block for r in refs], dtype=np.int64
                ),
                "video_bytes": np.array(
                    [r.approx_bytes for r in refs], dtype=np.int64
                ),
            }
        )
        if self._presort:
            table, _order = sort_rows_by_quality(table, "quality")
        BullionWriter(
            self.meta_storage,
            options=WriterOptions(
                rows_per_page=self._rows_per_page,
                rows_per_group=self._rows_per_group,
            ),
        ).write(table)
        self._num_samples = len(samples)

    # -- training reads ---------------------------------------------------
    def train_epoch(
        self,
        quality_threshold: float,
        use_inline_highlights: bool = True,
        reset_stats: bool = True,
    ) -> BatchReadReport:
        """Read every sample above the quality bar, counting I/O.

        ``use_inline_highlights=False`` models the pre-Bullion hybrid
        layout: each selected sample bounces to the media table for its
        frames ("bouncing back and forth across both meta and media
        tables ... scattered data layout leads to random I/O patterns").
        """
        if reset_stats:
            self.meta_storage.stats.reset()
            self.media_storage.stats.reset()
        reader = BullionReader(self.meta_storage)
        footer = reader.footer

        # footer-stats row-group pruning: with the quality presort the
        # qualifying groups are a prefix of the file, and this costs
        # zero data I/O (§2.5 + the stats section of the footer)
        candidates = reader.prune_row_groups(
            "quality", min_value=quality_threshold
        )
        touched_groups = []
        selected_local: list[np.ndarray] = []
        selected_global: list[np.ndarray] = []
        for g in candidates:
            rg = footer.row_group(g)
            quality = np.asarray(
                reader.project(
                    ["quality"], row_groups=[g], drop_deleted=False
                ).column("quality"),
                dtype=np.float64,
            )
            local = np.flatnonzero(quality >= quality_threshold)
            if len(local):
                touched_groups.append(g)
                selected_local.append(local)
                selected_global.append(local + rg.row_start)
        selected = (
            np.concatenate(selected_global)
            if selected_global
            else np.zeros(0, dtype=np.int64)
        )
        runs, mean_run = contiguous_run_stats(selected)

        columns = ["sample_id", "caption", "audio", "frame_index"]
        if use_inline_highlights:
            columns.append("highlight_frames")
        else:
            columns.extend(["video_block", "video_index"])
        table = (
            reader.project(columns, row_groups=touched_groups)
            if touched_groups
            else Table({c: np.zeros(0, dtype=np.int64) for c in ["sample_id"]})
        )

        if not use_inline_highlights and touched_groups:
            # per-sample bounce to the row-oriented media table
            offsets = []
            row_base = 0
            for g, local in zip(touched_groups, selected_local):
                offsets.append(local + row_base)
                row_base += footer.row_group(g).n_rows
            picked = np.concatenate(offsets)
            media = MediaReader(self.media_storage)
            blocks = np.asarray(table.column("video_block"))[picked]
            indices = np.asarray(table.column("video_index"))[picked]
            for b, i in zip(blocks, indices):
                media.read_record(MediaRef(int(b), int(i), 0))
        return BatchReadReport(
            samples_read=int(len(selected)),
            meta=_copy_stats(self.meta_storage.stats),
            media=_copy_stats(self.media_storage.stats),
            selected_runs=runs,
            mean_run_length=mean_run,
        )

    def lookup_full_video(self, sample_row: int) -> bytes:
        """The rare full-resolution path via the meta table's video ref."""
        reader = BullionReader(self.meta_storage)
        table = reader.project(["video_block", "video_index"])
        ref = MediaRef(
            int(np.asarray(table.column("video_block"))[sample_row]),
            int(np.asarray(table.column("video_index"))[sample_row]),
            0,
        )
        return MediaReader(self.media_storage).read_record(ref)["video"]


def _copy_stats(stats: IOStats) -> IOStats:
    return IOStats(
        reads=stats.reads,
        writes=stats.writes,
        bytes_read=stats.bytes_read,
        bytes_written=stats.bytes_written,
        read_seeks=stats.read_seeks,
        write_seeks=stats.write_seeks,
    )
