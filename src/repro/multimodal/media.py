"""Avro-like row-oriented media file (paper §1, §2.5).

"we adopt a hybrid storage architecture: leveraging columnar storage
for structured metadata and embeddings, while utilizing Avro — a
row-oriented binary format with schema support — for chunked storage of
large media objects (e.g., video and audio content)."

The structural essentials of an Avro object container file are kept:
a JSON-ish header with the record schema, then a sequence of blocks,
each ``(record_count, byte_length, records..., 16-byte sync marker)``.
Records are field-length-prefixed in schema order. Random access is by
``(block_offset, index_in_block)`` references, which is exactly the
``video lookup`` pointer the Fig 7 meta table stores.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass

from repro.iosim import SimulatedStorage

MEDIA_MAGIC = b"Obj\x01"
SYNC_SIZE = 16
DEFAULT_BLOCK_RECORDS = 16


@dataclass(frozen=True)
class MediaRef:
    """Pointer to one record: the meta table's video-lookup handle."""

    block_offset: int
    index_in_block: int
    approx_bytes: int


class MediaWriter:
    """Append records (dicts of bytes fields) in blocks."""

    def __init__(
        self,
        storage: SimulatedStorage,
        field_names: list[str],
        block_records: int = DEFAULT_BLOCK_RECORDS,
        sync_seed: bytes = b"\x42" * SYNC_SIZE,
    ) -> None:
        self._storage = storage
        self._fields = list(field_names)
        self._block_records = block_records
        self._sync = sync_seed[:SYNC_SIZE].ljust(SYNC_SIZE, b"\x00")
        header = MEDIA_MAGIC + _encode_header(self._fields) + self._sync
        storage.append(header)
        self._pending: list[dict[str, bytes]] = []
        self._refs: list[MediaRef] = []

    def append(self, record: dict[str, bytes]) -> None:
        missing = [f for f in self._fields if f not in record]
        if missing:
            raise ValueError(f"record missing fields {missing}")
        self._pending.append(record)
        if len(self._pending) >= self._block_records:
            self._flush_block()

    def close(self) -> list[MediaRef]:
        """Flush and return one MediaRef per appended record, in order."""
        if self._pending:
            self._flush_block()
        return list(self._refs)

    def _flush_block(self) -> None:
        payload_parts = []
        sizes = []
        for record in self._pending:
            body = b"".join(
                struct.pack("<I", len(record[f])) + record[f]
                for f in self._fields
            )
            payload_parts.append(body)
            sizes.append(len(body))
        payload = b"".join(payload_parts)
        block = (
            struct.pack("<II", len(self._pending), len(payload))
            + payload
            + self._sync
        )
        offset = self._storage.append(block)
        for i, size in enumerate(sizes):
            self._refs.append(MediaRef(offset, i, size))
        self._pending = []


class MediaReader:
    """Random access by MediaRef plus full sequential scan."""

    def __init__(self, storage: SimulatedStorage) -> None:
        self._storage = storage
        head = storage.pread(0, 4 + 4)
        if head[:4] != MEDIA_MAGIC:
            raise ValueError(f"bad media magic {head[:4]!r}")
        (schema_len,) = struct.unpack_from("<I", head, 4)
        schema_raw = storage.pread(8, schema_len)
        self._fields = json.loads(schema_raw.decode())["fields"]
        self._data_start = 8 + schema_len + SYNC_SIZE

    @property
    def field_names(self) -> list[str]:
        return list(self._fields)

    def read_record(self, ref: MediaRef) -> dict[str, bytes]:
        """Seek to the block and walk to the record (counts real I/O)."""
        head = self._storage.pread(ref.block_offset, 8)
        count, payload_len = struct.unpack("<II", head)
        if ref.index_in_block >= count:
            raise IndexError("record index beyond block")
        payload = self._storage.pread(ref.block_offset + 8, payload_len)
        pos = 0
        for _ in range(ref.index_in_block):  # row format: walk predecessors
            for _f in self._fields:
                (flen,) = struct.unpack_from("<I", payload, pos)
                pos += 4 + flen
        record = {}
        for f in self._fields:
            (flen,) = struct.unpack_from("<I", payload, pos)
            pos += 4
            record[f] = payload[pos : pos + flen]
            pos += flen
        return record

    def scan(self):
        """Yield every record sequentially (training-ingest order)."""
        pos = self._data_start
        size = self._storage.size
        while pos + 8 <= size:
            head = self._storage.pread(pos, 8)
            count, payload_len = struct.unpack("<II", head)
            payload = self._storage.pread(pos + 8, payload_len)
            cursor = 0
            for _ in range(count):
                record = {}
                for f in self._fields:
                    (flen,) = struct.unpack_from("<I", payload, cursor)
                    cursor += 4
                    record[f] = payload[cursor : cursor + flen]
                    cursor += flen
                yield record
            pos += 8 + payload_len + SYNC_SIZE


def _encode_header(fields: list[str]) -> bytes:
    schema = json.dumps({"type": "record", "fields": fields}).encode()
    return struct.pack("<I", len(schema)) + schema
