"""Codec throughput scoreboard: MB/s encode + decode per codec × workload.

The Table 2 reproduction (``benchmarks/bench_table2_encodings.py``)
measures compression *ratio*; this harness measures *speed* on the same
paper workload shapes (small-range ints, zipf-skewed ids, sorted ids,
runs, time-series floats, decimal floats, URL-like strings, sparse
bools, §2.2 sliding-window click sequences from
:mod:`repro.workloads.sparse`).

Three consumers share it:

* ``benchmarks/bench_codecs.py`` — the CI smoke bench, which also
  persists the machine-readable ``BENCH_codecs.json`` trajectory file;
* ``repro-inspect codecs --bench`` — a quick self-benchmark;
* ad-hoc use: ``python -m repro.tools.codec_bench``.

Throughput is min-of-``repeats`` wall time over the *raw* (decoded)
bytes, so ratios and MB/s are comparable across codecs.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.encodings import decode_blob, encode_blob


@dataclass(frozen=True)
class CodecBenchResult:
    """One scoreboard row: a (codec, dtype, distribution) cell."""

    codec: str
    dtype: str
    distribution: str
    n_values: int
    raw_bytes: int
    encoded_bytes: int
    ratio: float
    encode_mb_s: float
    decode_mb_s: float


def _raw_bytes(values) -> int:
    if isinstance(values, np.ndarray):
        return values.nbytes
    if values and isinstance(values[0], np.ndarray):
        return sum(v.nbytes for v in values)
    return sum(len(v) for v in values if v is not None)


def _n_values(values) -> int:
    return len(values)


def _click_windows(scale: float):
    from repro.workloads.sparse import (
        SlidingWindowConfig,
        generate_click_sequences,
    )

    config = SlidingWindowConfig(
        n_users=max(4, int(32 * scale)), events_per_user=12, seed=7
    )
    rows, _uids = generate_click_sequences(config)
    return rows


def scoreboard_workloads(scale: float = 1.0):
    """(codec name, encoding factory, dtype, distribution, data) rows.

    ``scale`` multiplies the value counts; 1.0 is the CI default and
    stays under a second per cell for vectorized kernels.
    """
    from repro.encodings import (
        ALP,
        Chimp,
        Delta,
        Dictionary,
        FastBP128,
        FastPFOR,
        FixedBitWidth,
        FrameOfReference,
        FSST,
        Gorilla,
        Huffman,
        ListEncoding,
        Pseudodecimal,
        RLE,
        Roaring,
        SparseBool,
        SparseListDelta,
        Trivial,
        Varint,
        ZigZag,
    )

    rng = np.random.default_rng(2025)
    n_int = max(256, int(65536 * scale))
    n_float = max(256, int(16384 * scale))
    n_str = max(64, int(4000 * scale))
    n_bool = max(1024, int(262144 * scale))

    small = rng.integers(0, 64, n_int).astype(np.int64)
    zipf = np.minimum(rng.zipf(1.5, n_int), 10**6).astype(np.int64)
    signed = rng.integers(-(10**6), 10**6, n_int).astype(np.int64)
    sorted_ids = np.sort(rng.integers(0, 10**12, n_int)).astype(np.int64)
    runs = np.repeat(
        rng.integers(0, 8, max(1, n_int // 32)), 32
    ).astype(np.int64)[:n_int]
    outliers = np.where(
        rng.random(n_int) < 0.05,
        rng.integers(10**6, 10**9, n_int),
        rng.integers(0, 100, n_int),
    ).astype(np.int64)
    series = 20.0 + np.cumsum(rng.normal(0, 0.01, n_float))
    series32 = series.astype(np.float32)
    decimals = np.round(rng.uniform(-1000, 1000, n_float), 2)
    sparse_bools = rng.random(n_bool) < 0.005
    dense_bools = rng.random(n_bool) < 0.6
    urls = [
        f"https://ads.example.com/c?cid={int(rng.integers(0, 400))}"
        f"&uid={int(rng.integers(0, 1000))}".encode()
        for _ in range(n_str)
    ]
    windows = _click_windows(scale)

    return [
        ("trivial", Trivial, "int64", "signed", signed),
        ("fixed_bit_width", FixedBitWidth, "int64", "small", small),
        ("varint", Varint, "int64", "small", small),
        ("varint", Varint, "int64", "outliers", outliers),
        ("zigzag", ZigZag, "int64", "signed", signed),
        ("rle", RLE, "int64", "runs", runs),
        ("dictionary", Dictionary, "int64", "small", small),
        ("dictionary", Dictionary, "bytes", "urls", urls),
        ("delta", Delta, "int64", "sorted_ids", sorted_ids),
        ("for", FrameOfReference, "int64", "signed", signed),
        ("huffman", Huffman, "int64", "small", small),
        ("huffman", Huffman, "int64", "zipf", zipf),
        ("fastpfor", FastPFOR, "int64", "small", small),
        ("fastpfor", FastPFOR, "int64", "outliers", outliers),
        ("fastbp128", FastBP128, "int64", "small", small),
        ("sparse_bool", SparseBool, "bool", "sparse", sparse_bools),
        ("roaring", Roaring, "bool", "sparse", sparse_bools),
        ("roaring", Roaring, "bool", "dense", dense_bools),
        ("fsst", FSST, "bytes", "urls", urls),
        ("gorilla", Gorilla, "float64", "timeseries", series),
        ("gorilla", Gorilla, "float32", "timeseries", series32),
        ("chimp", Chimp, "float64", "timeseries", series),
        ("chimp", Chimp, "float32", "timeseries", series32),
        ("pseudodecimal", Pseudodecimal, "float64", "decimals", decimals),
        ("alp", ALP, "float64", "decimals", decimals),
        ("list", ListEncoding, "list<int64>", "click_windows", windows),
        (
            "sparse_list_delta",
            SparseListDelta,
            "list<int64>",
            "click_windows",
            windows,
        ),
    ]


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def run_scoreboard(
    scale: float = 1.0,
    repeats: int = 3,
    codecs: set[str] | None = None,
) -> list[CodecBenchResult]:
    """Run the scoreboard; ``codecs`` optionally restricts by name."""
    results = []
    for name, factory, dtype, distribution, data in scoreboard_workloads(
        scale
    ):
        if codecs is not None and name not in codecs:
            continue
        encoding = factory()
        raw = _raw_bytes(data)
        blob = encode_blob(data, encoding)  # warm-up + blob for decode
        enc_s = _best_seconds(lambda: encode_blob(data, encoding), repeats)
        decode_blob(blob)
        dec_s = _best_seconds(lambda: decode_blob(blob), repeats)
        results.append(
            CodecBenchResult(
                codec=name,
                dtype=dtype,
                distribution=distribution,
                n_values=_n_values(data),
                raw_bytes=raw,
                encoded_bytes=len(blob),
                ratio=round(raw / len(blob), 3),
                encode_mb_s=round(raw / enc_s / 1e6, 2),
                decode_mb_s=round(raw / dec_s / 1e6, 2),
            )
        )
    return results


def format_scoreboard(results: list[CodecBenchResult]) -> list[str]:
    lines = [
        f"{'codec':18s} {'dtype':11s} {'distribution':14s} "
        f"{'ratio':>7s} {'enc MB/s':>9s} {'dec MB/s':>9s}"
    ]
    for r in results:
        lines.append(
            f"{r.codec:18s} {r.dtype:11s} {r.distribution:14s} "
            f"{r.ratio:6.1f}x {r.encode_mb_s:9.1f} {r.decode_mb_s:9.1f}"
        )
    return lines


def scoreboard_json(results: list[CodecBenchResult]) -> str:
    """The BENCH_codecs.json trajectory payload (machine-readable)."""
    return json.dumps(
        {
            "schema": "bench_codecs/v1",
            "unit": "MB/s over raw (decoded) bytes, min-of-repeats",
            "rows": [asdict(r) for r in results],
        },
        indent=2,
    )


def main() -> None:  # pragma: no cover - manual entry point
    import argparse

    parser = argparse.ArgumentParser(description="codec throughput scoreboard")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("codecs", nargs="*", help="restrict to these codecs")
    args = parser.parse_args()
    results = run_scoreboard(
        scale=args.scale,
        repeats=args.repeats,
        codecs=set(args.codecs) or None,
    )
    print("\n".join(format_scoreboard(results)))
    if args.json:
        with open(args.json, "w") as f:
            f.write(scoreboard_json(results) + "\n")


if __name__ == "__main__":  # pragma: no cover
    main()
