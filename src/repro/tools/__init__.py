"""Operational tooling: file inspection and layout reports."""

from repro.tools.inspect import ColumnReport, FileReport, describe, inspect_file

__all__ = ["inspect_file", "describe", "FileReport", "ColumnReport"]
