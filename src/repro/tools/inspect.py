"""File inspector: the parquet-tools equivalent for Bullion files.

``inspect_file`` returns a structured :class:`FileReport` (per-column
sizes, encodings observed in page blobs, deletion state, checksum
health); ``describe`` renders it as text. Both read only the footer
plus one byte per page (the encoding id), so inspection is cheap even
for wide files.

Command-line usage (installed as the ``repro-inspect`` console script
via ``pyproject.toml``, or run as ``python -m repro.tools.inspect``)::

    repro-inspect FILE [--max-columns N] [--no-verify]
    repro-inspect scan FILE --where EXPR [--columns A,B,...]
    repro-inspect scan FILE --backend object [--gap BYTES]
                 [--no-coalesce] [--where EXPR] [--columns A,B,...]
    repro-inspect cache
    repro-inspect query DIR --agg SPECS [--where EXPR]
                 [--group-by A,B,...] [--snapshot ID] [--no-metadata]
    repro-inspect catalog log DIR
    repro-inspect catalog snapshot DIR ID
    repro-inspect catalog files DIR [--snapshot ID] [--where EXPR]
    repro-inspect metrics [SNAPSHOT.json] [--format table|text|json]
    repro-inspect trace FILE [--top N]
    repro-inspect server health|tables HOST:PORT
    repro-inspect server query HOST:PORT TABLE --agg SPECS [--where EXPR]
    repro-inspect server scan HOST:PORT TABLE --columns A,B [--where EXPR]

Observability surfaces (:mod:`repro.obs`): ``metrics`` renders a
written registry snapshot (``Registry.write_snapshot`` /
``export_json``, or a ``BENCH_*.json`` embedding one) — or, with no
file, whatever the live in-process registry accumulated. Any other
subcommand accepts a global ``--metrics`` flag that dumps the registry
in Prometheus text format after the command's own output, so
``repro-inspect query DIR --agg count --metrics`` shows the I/O and
pushdown counters the query itself incremented. ``trace`` summarizes
a span export (JSON-lines or Chrome trace-event JSON, see
:mod:`repro.obs.trace`) as a top-spans-by-self-time table.

``FILE`` is a Bullion file on the local filesystem, opened through
:class:`~repro.iosim.FileStorage`. ``--max-columns`` caps the listed
columns (default 20); ``--no-verify`` skips the Merkle checksum pass,
which touches every page of large files.

``scan`` dry-runs a filtered scan and reports what each pushdown
layer skipped: row groups pruned from footer zone maps, rows filtered
at decode time, residual chunks never fetched (late materialization).
``EXPR`` uses the :mod:`repro.expr.parse` syntax, e.g.
``"price > 100 and region in (3, 5)"``. With ``--backend object`` the
same file is replayed through the modelled
:class:`~repro.iosim.ObjectStorage` instead and the per-request GET/PUT
log is printed — request count, bytes moved and modelled wall-clock —
so the effect of the coalescing planner is directly visible.
``--gap BYTES`` sets the coalescing gap threshold; ``--no-coalesce``
disables merging entirely (one GET per chunk) for comparison.

``cache`` prints the process-wide tiered chunk cache
(:func:`repro.core.chunk_cache.process_cache`): per-tier occupancy
against budget, hit/miss/spill counters, single-flight waits and disk
checksum failures.

``query`` runs an aggregation (``repro.query``) over a catalog table
directory: ``--agg "count, sum(clicks), min(price)"`` with optional
``--where`` / ``--group-by``, reporting the result rows plus which
answer path (manifest-only / footer-stats-only / decode) handled each
file. ``--no-metadata`` forces the decode path for comparison.

The ``catalog`` subcommands inspect a transactional table rooted at a
directory (see :class:`~repro.catalog.DirectoryCatalogStore`):
``log`` prints the retained snapshot history, ``snapshot`` dumps one
snapshot's manifest (files, stats, summary), and ``files`` lists the
data files a snapshot references — plus any orphans awaiting GC when
run against HEAD, and with ``--where`` a kept/pruned verdict per file
from the manifest column statistics alone (no file opens). (The
literal subcommand words like ``catalog``/``scan``/``cache`` select
subcommand mode;
a Bullion file with one of those names is still inspectable as
``./scan``.)

Exit status: 0 on success, 2 for a malformed or inapplicable
expression/aggregate (one-line message, never a traceback), 1 for
everything else (missing files, corrupt data, ...).
"""

from __future__ import annotations

import argparse
import datetime
import os
import sys
from dataclasses import dataclass, field

from repro.core.page import PAGE_HEADER_SIZE, PageHeader
from repro.core.reader import BullionReader
from repro.encodings import encoding_by_id
from repro.iosim import FileStorage, Storage


@dataclass
class ColumnReport:
    name: str
    type: str
    encoded_bytes: int
    n_pages: int
    encodings: dict[str, int] = field(default_factory=dict)


@dataclass
class FileReport:
    file_bytes: int
    num_rows: int
    num_columns: int
    num_row_groups: int
    num_pages: int
    compliance_level: int
    deleted_rows: int
    footer_bytes: int
    checksums_valid: bool
    columns: list[ColumnReport] = field(default_factory=list)

    @property
    def data_bytes(self) -> int:
        return sum(c.encoded_bytes for c in self.columns)


def inspect_file(
    storage: Storage, verify_checksums: bool = True
) -> FileReport:
    reader = BullionReader(storage)
    footer = reader.footer
    columns = footer.physical_columns()
    report = FileReport(
        file_bytes=storage.size,
        num_rows=footer.num_rows,
        num_columns=footer.num_columns,
        num_row_groups=footer.num_row_groups,
        num_pages=footer.num_pages,
        compliance_level=footer.compliance_level,
        deleted_rows=footer.deleted_count(),
        footer_bytes=storage.size - footer.file_offset - 8,
        checksums_valid=reader.verify() if verify_checksums else True,
    )
    for c, col in enumerate(columns):
        col_report = ColumnReport(
            name=col.name, type=str(col.type), encoded_bytes=0, n_pages=0
        )
        for g in range(footer.num_row_groups):
            chunk = footer.chunk(c, g)
            col_report.encoded_bytes += chunk.size
            col_report.n_pages += chunk.n_pages
            for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
                meta = footer.page(pid)
                header_raw = storage.pread(meta.offset, PAGE_HEADER_SIZE + 1)
                header = PageHeader.unpack(header_raw)
                if header.payload_len:
                    enc_id = header_raw[PAGE_HEADER_SIZE]
                    name = encoding_by_id(enc_id).name
                    col_report.encodings[name] = (
                        col_report.encodings.get(name, 0) + 1
                    )
        report.columns.append(col_report)
    return report


def describe(
    storage: Storage, max_columns: int = 20, verify_checksums: bool = True
) -> str:
    """Human-readable layout summary of a Bullion file."""
    report = inspect_file(storage, verify_checksums=verify_checksums)
    lines = [
        f"bullion file: {report.file_bytes:,} bytes "
        f"({report.data_bytes:,} data, {report.footer_bytes:,} footer)",
        f"rows: {report.num_rows:,} ({report.deleted_rows:,} deleted), "
        f"columns: {report.num_columns}, "
        f"row groups: {report.num_row_groups}, pages: {report.num_pages}",
        f"compliance level: {report.compliance_level}, "
        f"checksums: {'OK' if report.checksums_valid else 'INVALID'}",
        "",
        f"{'column':28s} {'type':20s} {'bytes':>12} {'pages':>6}  encodings",
    ]
    for col in report.columns[:max_columns]:
        encs = ", ".join(
            f"{name} x{count}" for name, count in sorted(col.encodings.items())
        )
        lines.append(
            f"{col.name[:28]:28s} {col.type[:20]:20s} "
            f"{col.encoded_bytes:>12,} {col.n_pages:>6}  {encs}"
        )
    if len(report.columns) > max_columns:
        lines.append(f"... and {len(report.columns) - max_columns} more columns")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared CLI plumbing
# ---------------------------------------------------------------------------

def _parse_where_arg(parser: argparse.ArgumentParser, text: str):
    """Parse ``--where`` or exit 2 with a one-line message.

    A malformed expression is a usage error, not a crash: report the
    parser's own message on one line and exit with status 2 so shell
    callers can tell "bad query" from "broken table" (status 1).
    """
    from repro.expr import ExprError, parse as parse_expr

    try:
        return parse_expr(text)
    except ExprError as exc:
        parser.exit(2, f"repro-inspect: invalid --where expression: {exc}\n")


def _run_guarded(parser: argparse.ArgumentParser, fn) -> int:
    """Run a subcommand body with the shared error-to-exit mapping."""
    from repro.expr import ExprError, VectorEvalError
    from repro.query import PlanError

    try:
        fn()
    except (ExprError, PlanError, VectorEvalError) as exc:
        # a well-formed table asked a malformed question: usage error
        parser.exit(2, f"repro-inspect: {exc}\n")
    except (OSError, ValueError, LookupError) as exc:
        parser.exit(1, f"repro-inspect: {exc}\n")
    return 0


# ---------------------------------------------------------------------------
# codecs subcommand (the Table 2 catalog + throughput scoreboard)
# ---------------------------------------------------------------------------

def describe_codecs() -> str:
    """The registered encoding catalog: id, name, accepted kinds."""
    from repro.encodings import catalog

    lines = [f"{'id':>4}  {'codec':18s}  kinds"]
    for name, cls in sorted(catalog().items(), key=lambda kv: kv[1].id):
        kinds = ", ".join(sorted(k.value for k in cls.kinds))
        lines.append(f"{cls.id:>4}  {name:18s}  {kinds}")
    return "\n".join(lines)


def _codecs_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="repro-inspect codecs",
        description="List the encoding catalog; --bench runs the "
        "throughput scoreboard on paper workload shapes.",
    )
    sub.add_argument(
        "--bench", action="store_true",
        help="measure encode/decode MB/s per codec x workload",
    )
    sub.add_argument(
        "--scale", type=float, default=0.25, metavar="F",
        help="workload size multiplier for --bench (default: 0.25)",
    )
    sub.add_argument(
        "--repeats", type=int, default=2, metavar="N",
        help="timing repeats for --bench, best kept (default: 2)",
    )
    sub.add_argument(
        "codecs", nargs="*", metavar="CODEC",
        help="restrict --bench to these codec names",
    )
    args = sub.parse_args(argv)

    def run() -> None:
        if not args.bench:
            print(describe_codecs())
            return
        from repro.tools.codec_bench import format_scoreboard, run_scoreboard

        results = run_scoreboard(
            scale=args.scale,
            repeats=args.repeats,
            codecs=set(args.codecs) or None,
        )
        print("\n".join(format_scoreboard(results)))

    return _run_guarded(parser, run)


# ---------------------------------------------------------------------------
# filtered-scan subcommand (the pushdown-layer report)
# ---------------------------------------------------------------------------

def describe_scan(
    storage: Storage, where, columns: list[str] | None = None
) -> str:
    """Run a filtered scan and report what every layer skipped."""
    from repro.core.reader import ScanStats

    reader = BullionReader(storage)
    if columns is None:
        columns = reader.column_names()
    stats = ScanStats()
    scan = reader.scan(columns, where=where, scan_stats=stats)
    matched = sum(batch.num_rows for batch in scan)
    total_groups = reader.footer.num_row_groups
    lines = [
        f"scan of {storage.name}: {len(columns)} columns, "
        f"filter columns: {', '.join(sorted(where.columns()))}",
        f"row groups: {total_groups} total, "
        f"{stats.groups_pruned} pruned by zone maps, "
        f"{stats.groups_scanned} scanned, "
        f"{stats.groups_empty} matched nothing after decode",
        f"rows: {stats.rows_pruned:,} pruned without I/O, "
        f"{stats.rows_scanned:,} scanned, {matched:,} matched",
        f"chunks: {stats.chunks_fetched:,} fetched, "
        f"{stats.chunks_skipped:,} skipped by late materialization",
    ]
    return "\n".join(lines)


def describe_object_replay(
    storage,
    columns: list[str] | None = None,
    where=None,
    coalesce_gap: int = 0,
    max_requests: int = 100,
) -> str:
    """Replay a scan through a modelled object store, log every request.

    ``storage`` is an :class:`~repro.iosim.ObjectStorage`. The reader
    runs cacheless so the request log is exactly what the coalescing
    planner asked the backend for — the knob being tuned.
    """
    reader = BullionReader(
        storage, chunk_cache_size=0, coalesce_gap=coalesce_gap
    )
    if columns is None:
        columns = reader.column_names()
    matched = sum(
        batch.num_rows for batch in reader.scan(columns, where=where)
    )
    gets = [r for r in storage.requests if r.op == "GET"]
    puts = [r for r in storage.requests if r.op == "PUT"]
    mode = "off" if coalesce_gap < 0 else f"gap={coalesce_gap}"
    lines = [
        f"object-store replay of {storage.name}: "
        f"{len(columns)} columns, {matched:,} rows, coalescing {mode}",
        f"requests: {len(storage.requests)} "
        f"({len(gets)} GET, {len(puts)} PUT), "
        f"{storage.bytes_moved():,} bytes moved, "
        f"modelled time {storage.elapsed_s * 1e3:.2f} ms",
        "",
        f"{'#':>4} {'op':4} {'offset':>12} {'bytes':>10} {'cost':>10}",
    ]
    for i, r in enumerate(storage.requests[:max_requests]):
        lines.append(
            f"{i:>4} {r.op:4} {r.offset:>12,} {r.nbytes:>10,} "
            f"{r.cost_s * 1e3:>8.2f}ms"
        )
    if len(storage.requests) > max_requests:
        lines.append(
            f"... and {len(storage.requests) - max_requests} more requests"
        )
    return "\n".join(lines)


def _scan_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    sub = argparse.ArgumentParser(
        prog="repro-inspect scan",
        description="Report per-layer pushdown skipping for a filter, "
        "or (--backend object) replay the scan against a modelled "
        "object store and print its request log.",
    )
    sub.add_argument("file", help="path to a Bullion file")
    sub.add_argument(
        "--where", default=None, metavar="EXPR",
        help="filter expression, e.g. \"price > 100 and region in (3, 5)\"",
    )
    sub.add_argument(
        "--columns", default=None, metavar="A,B,...",
        help="projection (default: every column)",
    )
    sub.add_argument(
        "--backend", choices=("file", "object"), default="file",
        help="file (default): pushdown report; object: request-log replay",
    )
    sub.add_argument(
        "--gap", type=int, default=0, metavar="BYTES",
        help="coalescing gap threshold for --backend object (default: 0, "
        "merge only adjacent chunks)",
    )
    sub.add_argument(
        "--no-coalesce", action="store_true",
        help="disable ranged-get coalescing: one GET per chunk",
    )
    args = sub.parse_args(argv)
    if args.backend == "file" and args.where is None:
        sub.error("--where is required unless --backend object")
    where = (
        _parse_where_arg(parser, args.where)
        if args.where is not None
        else None
    )
    columns = (
        [c.strip() for c in args.columns.split(",") if c.strip()]
        if args.columns is not None
        else None
    )

    def run() -> None:
        with FileStorage(args.file, readonly=True) as storage:
            if args.backend == "object":
                from repro.iosim import ObjectStorage

                gap = -1 if args.no_coalesce else args.gap
                obj = ObjectStorage(storage)
                print(
                    describe_object_replay(
                        obj, columns, where, coalesce_gap=gap
                    )
                )
            else:
                print(describe_scan(storage, where, columns))

    return _run_guarded(parser, run)


# ---------------------------------------------------------------------------
# cache subcommand (the process-wide tiered chunk cache)
# ---------------------------------------------------------------------------

def describe_cache(cache) -> str:
    """Tier occupancy and counters of a ``TieredChunkCache``."""
    sizes = cache.tier_sizes()
    s = cache.stats
    lookups = s.hits + s.misses
    rate = f"{100.0 * s.hits / lookups:.1f}%" if lookups else "n/a"
    lines = [
        f"tiered chunk cache {cache.name!r}:",
        f"{'tier':8s} {'entries':>8} {'bytes':>14} {'budget':>14}",
    ]
    for tier in ("memory", "disk"):
        t = sizes[tier]
        budget = (
            f"{t['budget_bytes']:,}" if t["budget_bytes"] else "disabled"
        )
        lines.append(
            f"{tier:8s} {t['entries']:>8,} {t['bytes']:>14,} {budget:>14}"
        )
    lines += [
        "",
        f"lookups: {lookups:,} — {s.memory_hits:,} memory hits, "
        f"{s.disk_hits:,} disk hits, {s.misses:,} misses "
        f"(hit rate {rate})",
        f"spills: {s.spills:,} ({s.spill_bytes:,} bytes); evictions: "
        f"{s.memory_evictions:,} memory, {s.disk_evictions:,} disk",
        f"single-flight waits: {s.singleflight_waits:,}; "
        f"disk checksum failures: {s.checksum_failures:,}",
    ]
    return "\n".join(lines)


def _cache_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    from repro.core.chunk_cache import process_cache

    sub = argparse.ArgumentParser(
        prog="repro-inspect cache",
        description="Show the process-wide tiered chunk cache: tier "
        "occupancy, hit/miss/spill counters, single-flight waits.",
    )
    sub.parse_args(argv)

    def run() -> None:
        print(describe_cache(process_cache()))

    return _run_guarded(parser, run)


# ---------------------------------------------------------------------------
# query subcommand (aggregation over a catalog table)
# ---------------------------------------------------------------------------

def _format_value(v) -> str:
    if v is None:
        return "null"
    if isinstance(v, bytes):
        return v.decode("utf-8", "backslashreplace")
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def describe_query(result) -> str:
    """Aggregation rows plus the answer-path accounting."""
    plan = result.plan
    names = list(plan.group_by) + [a.name for a in plan.aggregates]
    cells = [
        [_format_value(row[name]) for name in names] for row in result.rows
    ]
    widths = [
        max(len(name), *(len(r[i]) for r in cells)) if cells else len(name)
        for i, name in enumerate(names)
    ]
    lines = [
        "  ".join(name.rjust(w) for name, w in zip(names, widths)),
    ]
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    stats = result.stats
    lines += [
        "",
        f"answer paths: {stats.files_meta_answered} file(s) manifest-only, "
        f"{stats.files_footer_answered} footer-stats-only, "
        f"{stats.files_decoded} decoded, {stats.files_pruned} pruned "
        f"(of {stats.files_total})",
        f"rows from metadata: {stats.rows_from_metadata:,}; "
        f"row groups metadata-answered: {stats.groups_meta_answered}; "
        f"data chunks fetched: {stats.data_chunks_fetched:,}",
    ]
    return "\n".join(lines)


def _query_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    from repro.catalog import CatalogTable, DirectoryCatalogStore
    from repro.query import PlanError, as_aggregate

    sub = argparse.ArgumentParser(
        prog="repro-inspect query",
        description="Run an aggregation query over a catalog table.",
    )
    sub.add_argument("dir", help="table root directory")
    sub.add_argument(
        "--agg", required=True, metavar="SPECS",
        help="comma-separated aggregates, e.g. "
        "\"count, sum(clicks), min(price)\"",
    )
    sub.add_argument(
        "--where", default=None, metavar="EXPR",
        help="filter expression (repro.expr.parse syntax)",
    )
    sub.add_argument(
        "--group-by", default=None, metavar="A,B,...",
        help="grouping columns",
    )
    sub.add_argument(
        "--snapshot", type=int, default=None, metavar="ID",
        help="snapshot to query (default: HEAD)",
    )
    sub.add_argument(
        "--no-metadata", action="store_true",
        help="force the decode path (skip metadata fast paths)",
    )
    args = sub.parse_args(argv)
    try:
        aggregates = [
            as_aggregate(part.strip())
            for part in args.agg.split(",")
            if part.strip()
        ]
        if not aggregates:
            raise PlanError("--agg names no aggregates")
    except PlanError as exc:
        parser.exit(2, f"repro-inspect: invalid --agg: {exc}\n")
    where = (
        _parse_where_arg(parser, args.where)
        if args.where is not None
        else None
    )
    group_by = (
        [c.strip() for c in args.group_by.split(",") if c.strip()]
        if args.group_by is not None
        else None
    )

    def run() -> None:
        if not os.path.isdir(os.path.join(args.dir, "snapshots")):
            raise FileNotFoundError(f"no catalog table at {args.dir!r}")
        table = CatalogTable(DirectoryCatalogStore(args.dir))
        result = table.query(
            aggregates,
            snapshot_id=args.snapshot,
            where=where,
            group_by=group_by,
            use_metadata=not args.no_metadata,
        )
        print(describe_query(result))

    return _run_guarded(parser, run)


# ---------------------------------------------------------------------------
# observability subcommands (metrics registry + span traces)
# ---------------------------------------------------------------------------

def describe_metrics(snapshot) -> str:
    """Render a :class:`~repro.obs.metrics.RegistrySnapshot` as a table.

    Counters and gauges print one row per labeled child; histograms
    print observation count, sum, and the bucket-interpolated
    p50/p90/p99. Families that have recorded nothing are summarized in
    one trailing line instead of padding the table with zeros.
    """
    rows: list[tuple[str, str, str]] = []
    silent: list[str] = []
    for name in sorted(snapshot.data):
        fam = snapshot.data[name]
        samples = fam["samples"]
        live = {
            key: s
            for key, s in samples.items()
            if (s["count"] if isinstance(s, dict) else s)
        }
        if not live:
            silent.append(name)
            continue
        for key in sorted(live):
            s = live[key]
            pairs = ",".join(
                f"{ln}={v}" for ln, v in zip(fam["label_names"], key)
            )
            label = f"{name}{{{pairs}}}" if pairs else name
            if isinstance(s, dict):
                q = lambda p: _bucket_quantile_text(fam, s, p)  # noqa: E731
                rows.append(
                    (
                        label,
                        fam["kind"],
                        f"count={s['count']} sum={s['sum']:.6g} "
                        f"p50={q(0.50)} p90={q(0.90)} p99={q(0.99)}",
                    )
                )
            else:
                v = s
                rows.append(
                    (
                        label,
                        fam["kind"],
                        str(int(v)) if float(v).is_integer() else f"{v:.6g}",
                    )
                )
    width = max((len(r[0]) for r in rows), default=20)
    lines = [f"{'metric':{width}s}  {'type':9s}  value"]
    for label, kind, value in rows:
        lines.append(f"{label:{width}s}  {kind:9s}  {value}")
    if silent:
        lines.append("")
        lines.append(
            f"{len(silent)} families with no recorded samples: "
            + ", ".join(silent)
        )
    return "\n".join(lines)


def _bucket_quantile_text(fam: dict, s: dict, q: float) -> str:
    from repro.obs.metrics import _bucket_quantile

    v = _bucket_quantile(tuple(fam["buckets"]), s["buckets"], s["count"], q)
    return f"{v:.3g}"


def _load_metrics_file(path: str):
    import json

    from repro.obs.metrics import load_snapshot

    with open(path, "r", encoding="utf-8") as fh:
        return load_snapshot(json.load(fh))


def _metrics_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    from repro.obs.metrics import default_registry

    sub = argparse.ArgumentParser(
        prog="repro-inspect metrics",
        description="Render a metrics registry snapshot (a file written "
        "by Registry.write_snapshot / export_json, or a BENCH_*.json "
        "embedding one); with no file, the live in-process registry.",
    )
    sub.add_argument(
        "snapshot", nargs="?", default=None,
        help="path to a metrics snapshot JSON (default: live registry)",
    )
    sub.add_argument(
        "--format", choices=("table", "text", "json"), default="table",
        help="table (default), Prometheus text exposition, or JSON",
    )
    args = sub.parse_args(argv)

    def run() -> None:
        snap = (
            default_registry().snapshot()
            if args.snapshot is None
            else _load_metrics_file(args.snapshot)
        )
        if args.format == "text":
            print(snap.export_text(), end="")
        elif args.format == "json":
            print(snap.export_json(indent=2))
        else:
            print(describe_metrics(snap))

    return _run_guarded(parser, run)


def describe_trace(rows: list[dict], top: int = 15) -> str:
    """Top spans by self-time from ``summarize_events`` rows."""
    lines = [
        f"{'span':28s} {'count':>7} {'total':>12} {'self':>12}  % self"
    ]
    total_self = sum(r["self_us"] for r in rows) or 1
    for r in rows[:top]:
        lines.append(
            f"{r['name'][:28]:28s} {r['count']:>7} "
            f"{r['total_us'] / 1e3:>10.3f}ms {r['self_us'] / 1e3:>10.3f}ms "
            f" {100.0 * r['self_us'] / total_self:>5.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... and {len(rows) - top} more span names")
    return "\n".join(lines)


def _trace_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    from repro.obs.trace import load_trace, summarize_events

    sub = argparse.ArgumentParser(
        prog="repro-inspect trace",
        description="Summarize a span trace export (JSON-lines or "
        "Chrome trace-event JSON) as top spans by self-time.",
    )
    sub.add_argument("file", help="path to a trace export")
    sub.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="span names to list (default: 15)",
    )
    args = sub.parse_args(argv)

    def run() -> None:
        events = load_trace(args.file)
        if not events:
            print("empty trace: no spans recorded")
            return
        print(describe_trace(summarize_events(events), top=args.top))

    return _run_guarded(parser, run)


# ---------------------------------------------------------------------------
# catalog subcommands
# ---------------------------------------------------------------------------

def _fmt_ts(timestamp_ms: int) -> str:
    return datetime.datetime.fromtimestamp(
        timestamp_ms / 1000, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S")


def describe_catalog_log(table) -> str:
    """One line per retained snapshot, oldest first."""
    lines = [
        f"{'id':>6} {'parent':>6} {'timestamp (utc)':19} "
        f"{'operation':16} {'files':>5} {'live rows':>10} {'bytes':>12}  summary"
    ]
    for snap in table.history():
        summary = ", ".join(
            f"{k}={v}" for k, v in sorted(snap.summary.items())
        )
        parent = "-" if snap.parent_id is None else str(snap.parent_id)
        lines.append(
            f"{snap.snapshot_id:>6} {parent:>6} {_fmt_ts(snap.timestamp_ms):19} "
            f"{snap.operation[:16]:16} {len(snap.files):>5} "
            f"{snap.live_rows:>10,} {snap.total_bytes:>12,}  {summary}"
        )
    return "\n".join(lines)


def _file_table(files, log=None) -> list[str]:
    lines = [
        f"{'file id':24} {'rows':>10} {'deleted':>8} {'live':>10} "
        f"{'bytes':>12}  schema"
    ]
    for f in files:
        if f.schema_id is not None:
            schema_ref = f"s{f.schema_id}"
        elif log is not None and log.current_id is not None:
            # legacy file inside an evolved snapshot: not yet adopted
            schema_ref = f"(legacy {f.schema_fingerprint:#018x})"
        else:
            schema_ref = f"{f.schema_fingerprint:#018x}"
        lines.append(
            f"{f.file_id[:24]:24} {f.row_count:>10,} {f.deleted_count:>8,} "
            f"{f.live_rows:>10,} {f.byte_size:>12,}  {schema_ref}"
        )
    return lines


def _schema_legend(log) -> list[str]:
    """One line per logged schema: id, current marker, column list."""
    if log is None or not log.schemas:
        return []
    lines = ["", "schemas:"]
    for schema_id in sorted(log.schemas):
        schema = log.schemas[schema_id]
        marker = "*" if schema_id == log.current_id else " "
        cols = ", ".join(f"{c.name}:{c.type}" for c in schema.columns)
        lines.append(f"{marker} s{schema_id}: {cols}")
    return lines


def describe_catalog_snapshot(table, snapshot_id: int) -> str:
    """One snapshot's manifest in full."""
    from repro.catalog import SchemaLog

    snap = table.snapshot(snapshot_id)
    log = SchemaLog.from_snapshot(snap)
    parent = "-" if snap.parent_id is None else str(snap.parent_id)
    lines = [
        f"snapshot {snap.snapshot_id} (parent {parent}), "
        f"operation: {snap.operation}, "
        f"committed {_fmt_ts(snap.timestamp_ms)} UTC",
        f"rows: {snap.total_rows:,} total, {snap.live_rows:,} live; "
        f"files: {len(snap.files)}, bytes: {snap.total_bytes:,}",
    ]
    if snap.summary:
        lines.append(
            "summary: "
            + ", ".join(f"{k}={v}" for k, v in sorted(snap.summary.items()))
        )
    lines.append("")
    lines.extend(_file_table(snap.files, log))
    lines.extend(_schema_legend(log))
    return "\n".join(lines)


def describe_catalog_files(
    table, snapshot_id: int | None = None, where=None
) -> str:
    """Data files referenced by a snapshot; orphans flagged at HEAD.

    With ``where``, each file gets a kept/pruned verdict from its
    manifest column statistics — the catalog pushdown layer, decided
    without opening a single file. On evolved snapshots the verdicts
    go through each file's schema resolution, so stats recorded under
    old column names or narrower types still prune correctly.
    """
    from repro.catalog import SchemaLog

    snap = (
        table.current_snapshot()
        if snapshot_id is None
        else table.snapshot(snapshot_id)
    )
    log = SchemaLog.from_snapshot(snap)
    lines = [f"data files of snapshot {snap.snapshot_id}:"]
    if where is not None:
        kept = {
            f.file_id: f.might_match(where, log.resolution(f))
            for f in snap.files
        }
        pruned = [f for f in snap.files if not kept[f.file_id]]
        lines[0] += (
            f" (filter prunes {len(pruned)} of {len(snap.files)} files, "
            f"{sum(f.row_count for f in pruned):,} rows, "
            f"{sum(f.byte_size for f in pruned):,} bytes — "
            f"manifest stats only, zero file opens)"
        )
        body = _file_table(snap.files, log)
        lines.append(body[0] + "  verdict")
        for f, row in zip(snap.files, body[1:]):
            verdict = "scan" if kept[f.file_id] else "PRUNED"
            lines.append(f"{row}  {verdict}")
    else:
        lines.extend(_file_table(snap.files, log))
    lines.extend(_schema_legend(log))
    if snapshot_id is None:
        referenced: set[str] = set()
        for s in table.history():
            referenced |= s.file_ids()
        orphans = [
            fid for fid in table.store.list_data() if fid not in referenced
        ]
        if orphans:
            lines.append("")
            lines.append(
                f"orphans (no retained snapshot, awaiting GC): "
                f"{', '.join(orphans)}"
            )
    return "\n".join(lines)


def _catalog_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    from repro.catalog import CatalogTable, DirectoryCatalogStore

    sub = argparse.ArgumentParser(
        prog="repro-inspect catalog",
        description="Inspect a transactional catalog table directory.",
    )
    commands = sub.add_subparsers(dest="command", required=True)
    log_p = commands.add_parser("log", help="snapshot history")
    log_p.add_argument("dir", help="table root directory")
    snap_p = commands.add_parser("snapshot", help="one snapshot's manifest")
    snap_p.add_argument("dir", help="table root directory")
    snap_p.add_argument("id", type=int, help="snapshot id")
    files_p = commands.add_parser("files", help="data files of a snapshot")
    files_p.add_argument("dir", help="table root directory")
    files_p.add_argument(
        "--snapshot", type=int, default=None, metavar="ID",
        help="snapshot to list (default: HEAD, with orphan detection)",
    )
    files_p.add_argument(
        "--where", default=None, metavar="EXPR",
        help="filter expression: report which files manifest stats prune",
    )
    args = sub.parse_args(argv)
    where = None
    if getattr(args, "where", None) is not None:
        where = _parse_where_arg(parser, args.where)

    def run() -> None:
        if not os.path.isdir(os.path.join(args.dir, "snapshots")):
            # refuse before DirectoryCatalogStore mkdir-p's a tree at
            # a mistyped path: inspection must not create directories
            raise FileNotFoundError(f"no catalog table at {args.dir!r}")
        table = CatalogTable(DirectoryCatalogStore(args.dir))
        if args.command == "log":
            print(describe_catalog_log(table))
        elif args.command == "snapshot":
            print(describe_catalog_snapshot(table, args.id))
        else:
            print(describe_catalog_files(table, args.snapshot, where=where))

    return _run_guarded(parser, run)


def _server_main(parser: argparse.ArgumentParser, argv: list[str]) -> int:
    """Client for a running ``repro-serve`` instance."""
    sub = argparse.ArgumentParser(
        prog="repro-inspect server",
        description="Talk to a running Bullion scan/query server.",
    )
    sub.add_argument(
        "command", choices=["health", "tables", "query", "scan"]
    )
    sub.add_argument("address", metavar="HOST:PORT")
    sub.add_argument("table", nargs="?", help="served table name")
    sub.add_argument("--agg", help="aggregate specs, comma separated")
    sub.add_argument("--columns", help="scan projection, comma separated")
    sub.add_argument("--where", help="filter expression")
    sub.add_argument("--group-by", help="group-by columns, comma separated")
    sub.add_argument("--snapshot", type=int, default=None)
    sub.add_argument("--deadline-ms", type=int, default=None)
    args = sub.parse_args(argv)
    host, sep, port_text = args.address.rpartition(":")
    if not sep or not port_text.isdigit():
        sub.exit(2, "repro-inspect: address must be HOST:PORT\n")
    where = _parse_where_arg(sub, args.where) if args.where else None

    def run() -> None:
        from repro.server import ServerClient, ServerError

        with ServerClient(host, int(port_text), timeout=30.0) as client:
            try:
                if args.command == "health":
                    doc = client.health()
                    for key in sorted(doc):
                        if key not in ("ok", "op"):
                            print(f"{key:16s} {doc[key]}")
                elif args.command == "tables":
                    for entry in client.tables():
                        print(
                            f"{entry['name']:20s} "
                            f"snapshot={entry.get('snapshot_id', '?')} "
                            f"files={entry.get('files', '?')} "
                            f"rows={entry.get('rows', '?')}"
                        )
                elif args.command == "query":
                    if not args.table or not args.agg:
                        sub.exit(
                            2, "repro-inspect: query needs TABLE --agg\n"
                        )
                    reply = client.query(
                        args.table,
                        [a.strip() for a in args.agg.split(",")],
                        where=where,
                        group_by=(
                            [g.strip() for g in args.group_by.split(",")]
                            if args.group_by
                            else None
                        ),
                        snapshot_id=args.snapshot,
                        deadline_ms=args.deadline_ms,
                    )
                    print(f"snapshot {reply.snapshot_id}")
                    for row in reply.rows:
                        print("  " + ", ".join(
                            f"{k}={v}" for k, v in row.items()
                        ))
                else:  # scan
                    if not args.table or not args.columns:
                        sub.exit(
                            2, "repro-inspect: scan needs TABLE --columns\n"
                        )
                    reply = client.scan(
                        args.table,
                        [c.strip() for c in args.columns.split(",")],
                        where=where,
                        snapshot_id=args.snapshot,
                        deadline_ms=args.deadline_ms,
                    )
                    print(
                        f"snapshot {reply.snapshot_id}: "
                        f"{reply.rows} rows in "
                        f"{len(reply.batches)} batches"
                    )
            except ServerError as exc:
                sub.exit(1, f"repro-inspect: server error: {exc}\n")

    return _run_guarded(sub, run)


def main(argv: list[str] | None = None) -> int:
    """Console entry point: inspect a Bullion file or catalog table."""
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Describe the layout of a Bullion file.",
    )
    raw = list(sys.argv[1:] if argv is None else argv)
    # global --metrics: run the command, then dump what the in-process
    # registry accumulated while it ran (Prometheus text exposition)
    dump_metrics = "--metrics" in raw
    if dump_metrics:
        raw = [a for a in raw if a != "--metrics"]
    status: int | None = None
    if raw[:1] == ["catalog"]:
        status = _catalog_main(parser, raw[1:])
    elif raw[:1] == ["codecs"]:
        status = _codecs_main(parser, raw[1:])
    elif raw[:1] == ["scan"]:
        status = _scan_main(parser, raw[1:])
    elif raw[:1] == ["query"]:
        status = _query_main(parser, raw[1:])
    elif raw[:1] == ["metrics"]:
        status = _metrics_main(parser, raw[1:])
    elif raw[:1] == ["trace"]:
        status = _trace_main(parser, raw[1:])
    elif raw[:1] == ["cache"]:
        status = _cache_main(parser, raw[1:])
    elif raw[:1] == ["server"]:
        status = _server_main(parser, raw[1:])
    if status is not None:
        if dump_metrics:
            from repro.obs.metrics import default_registry

            print()
            print(default_registry().export_text(), end="")
        return status
    parser.add_argument("file", help="path to a Bullion file")
    parser.add_argument(
        "--max-columns",
        type=int,
        default=20,
        metavar="N",
        help="columns to list before truncating (default: 20)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the Merkle checksum pass (reads every page)",
    )
    args = parser.parse_args(raw)
    try:
        with FileStorage(args.file, readonly=True) as storage:
            print(
                describe(
                    storage,
                    max_columns=args.max_columns,
                    verify_checksums=not args.no_verify,
                )
            )
    except (OSError, ValueError) as exc:
        parser.exit(1, f"repro-inspect: {exc}\n")
    if dump_metrics:
        from repro.obs.metrics import default_registry

        print()
        print(default_registry().export_text(), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
