"""File inspector: the parquet-tools equivalent for Bullion files.

``inspect_file`` returns a structured :class:`FileReport` (per-column
sizes, encodings observed in page blobs, deletion state, checksum
health); ``describe`` renders it as text. Both read only the footer
plus one byte per page (the encoding id), so inspection is cheap even
for wide files.

Command-line usage (installed as the ``repro-inspect`` console script
via ``pyproject.toml``, or run as ``python -m repro.tools.inspect``)::

    repro-inspect FILE [--max-columns N] [--no-verify]

``FILE`` is a Bullion file on the local filesystem, opened through
:class:`~repro.iosim.FileStorage`. ``--max-columns`` caps the listed
columns (default 20); ``--no-verify`` skips the Merkle checksum pass,
which touches every page of large files.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.core.page import PAGE_HEADER_SIZE, PageHeader
from repro.core.reader import BullionReader
from repro.encodings import encoding_by_id
from repro.iosim import FileStorage, Storage


@dataclass
class ColumnReport:
    name: str
    type: str
    encoded_bytes: int
    n_pages: int
    encodings: dict[str, int] = field(default_factory=dict)


@dataclass
class FileReport:
    file_bytes: int
    num_rows: int
    num_columns: int
    num_row_groups: int
    num_pages: int
    compliance_level: int
    deleted_rows: int
    footer_bytes: int
    checksums_valid: bool
    columns: list[ColumnReport] = field(default_factory=list)

    @property
    def data_bytes(self) -> int:
        return sum(c.encoded_bytes for c in self.columns)


def inspect_file(
    storage: Storage, verify_checksums: bool = True
) -> FileReport:
    reader = BullionReader(storage)
    footer = reader.footer
    columns = footer.physical_columns()
    report = FileReport(
        file_bytes=storage.size,
        num_rows=footer.num_rows,
        num_columns=footer.num_columns,
        num_row_groups=footer.num_row_groups,
        num_pages=footer.num_pages,
        compliance_level=footer.compliance_level,
        deleted_rows=footer.deleted_count(),
        footer_bytes=storage.size - footer.file_offset - 8,
        checksums_valid=reader.verify() if verify_checksums else True,
    )
    for c, col in enumerate(columns):
        col_report = ColumnReport(
            name=col.name, type=str(col.type), encoded_bytes=0, n_pages=0
        )
        for g in range(footer.num_row_groups):
            chunk = footer.chunk(c, g)
            col_report.encoded_bytes += chunk.size
            col_report.n_pages += chunk.n_pages
            for pid in range(chunk.first_page, chunk.first_page + chunk.n_pages):
                meta = footer.page(pid)
                header_raw = storage.pread(meta.offset, PAGE_HEADER_SIZE + 1)
                header = PageHeader.unpack(header_raw)
                if header.payload_len:
                    enc_id = header_raw[PAGE_HEADER_SIZE]
                    name = encoding_by_id(enc_id).name
                    col_report.encodings[name] = (
                        col_report.encodings.get(name, 0) + 1
                    )
        report.columns.append(col_report)
    return report


def describe(
    storage: Storage, max_columns: int = 20, verify_checksums: bool = True
) -> str:
    """Human-readable layout summary of a Bullion file."""
    report = inspect_file(storage, verify_checksums=verify_checksums)
    lines = [
        f"bullion file: {report.file_bytes:,} bytes "
        f"({report.data_bytes:,} data, {report.footer_bytes:,} footer)",
        f"rows: {report.num_rows:,} ({report.deleted_rows:,} deleted), "
        f"columns: {report.num_columns}, "
        f"row groups: {report.num_row_groups}, pages: {report.num_pages}",
        f"compliance level: {report.compliance_level}, "
        f"checksums: {'OK' if report.checksums_valid else 'INVALID'}",
        "",
        f"{'column':28s} {'type':20s} {'bytes':>12} {'pages':>6}  encodings",
    ]
    for col in report.columns[:max_columns]:
        encs = ", ".join(
            f"{name} x{count}" for name, count in sorted(col.encodings.items())
        )
        lines.append(
            f"{col.name[:28]:28s} {col.type[:20]:20s} "
            f"{col.encoded_bytes:>12,} {col.n_pages:>6}  {encs}"
        )
    if len(report.columns) > max_columns:
        lines.append(f"... and {len(report.columns) - max_columns} more columns")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Console entry point: inspect a Bullion file on disk."""
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Describe the layout of a Bullion file.",
    )
    parser.add_argument("file", help="path to a Bullion file")
    parser.add_argument(
        "--max-columns",
        type=int,
        default=20,
        metavar="N",
        help="columns to list before truncating (default: 20)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the Merkle checksum pass (reads every page)",
    )
    args = parser.parse_args(argv)
    try:
        with FileStorage(args.file, readonly=True) as storage:
            print(
                describe(
                    storage,
                    max_columns=args.max_columns,
                    verify_checksums=not args.no_verify,
                )
            )
    except (OSError, ValueError) as exc:
        parser.exit(1, f"repro-inspect: {exc}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
