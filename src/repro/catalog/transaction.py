"""Transactions: stage new files, commit a snapshot, retry on races.

Every mutation follows the same two-phase shape:

1. **stage** — write new *immutable* data files through the existing
   streaming writer (``append``), copy-on-write + in-place scrub
   (``delete``), or rewrite (``compact``). Nothing is visible yet: a
   data file only becomes part of the table when a committed snapshot
   names it, so no committed snapshot can ever reference a
   half-written file.
2. **commit** — serialize ``base snapshot − removed files + added
   files`` as snapshot ``HEAD+1`` and publish it with the store's
   put-if-absent CAS. Losing the race means another committer moved
   HEAD first: the transaction re-reads HEAD, re-validates (every file
   it removes must still be live — if a conflicting committer already
   replaced one, the transaction aborts), and replays its edit on top.
   Pure appends always replay; delete/compact/rollup abort iff their
   input files were concurrently compacted away, and a delete also
   aborts when files were appended concurrently (its predicate never
   scanned their rows, so replaying could leave matches live).

``abort()`` (called automatically on conflict exhaustion or
validation failure) deletes the staged data files so nothing leaks.
"""

from __future__ import annotations

import time
from dataclasses import replace as _replace

import numpy as np

from repro.catalog.schema_evolution import (
    EvolutionOp,
    ResolvedReader,
    SchemaLog,
    SchemaLogError,
    TableSchema,
    apply_ops,
    schema_from_footer,
)
from repro.catalog.snapshot import ColumnStats, DataFile, Snapshot, snapshot_name
from repro.core.compact import CompactionReport, compact as compact_file
from repro.core.dataset import ShardedDataset
from repro.core.deletion import delete_rows
from repro.core.reader import BullionReader, Predicate
from repro.core.schema import Schema, stats_kind
from repro.core.table import Table
from repro.core.writer import BullionWriter, WriterOptions
from repro.expr import Expr, as_expr, col, evaluate as evaluate_expr
from repro.iosim import Storage
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import (
    COMMIT_ABORTS,
    COMMIT_ATTEMPTS,
    COMMIT_CONFLICTS,
    COMMIT_REPLAYS,
    COMMIT_SECONDS,
    COMMITS,
)


class CommitConflict(RuntimeError):
    """The transaction lost its race and could not be replayed."""


def close_storage(storage: Storage) -> None:
    """Release a storage's OS resources, if it holds any.

    ``FileStorage`` keeps an fd open; the simulated backends hold
    nothing and expose no ``close``.
    """
    close = getattr(storage, "close", None)
    if close is not None:
        close()


def data_file_entry(storage: Storage, file_id: str) -> DataFile:
    """Manifest entry for a finished Bullion file, stats from its footer.

    Folds the footer's per-chunk zone maps into per-file column
    [min, max] — the statistics ``CatalogTable.scan(where=...)`` uses
    to prune whole files before opening them.
    """
    reader = BullionReader(storage)
    footer = reader.footer
    column_stats: dict[str, ColumnStats] = {}
    for col_idx, col in enumerate(footer.physical_columns()):
        kind = stats_kind(col.type)
        if kind is None:
            continue
        stats = footer.column_stats_range(col_idx)
        if stats is None:
            continue
        column_stats[col.name] = ColumnStats(
            stats.min_value, stats.max_value, kind
        )
    return DataFile(
        file_id=file_id,
        row_count=reader.num_rows,
        deleted_count=reader.footer.deleted_count(),
        byte_size=storage.size,
        schema_fingerprint=reader.schema_fingerprint(),
        column_stats=column_stats,
    )


def _adopt_legacy_files(
    files: list[DataFile], schemas: dict[int, TableSchema]
) -> list[DataFile]:
    """Tag files that predate the schema log with the version whose
    fingerprint they match (the bootstrap guarantees one exists for
    every legacy file); unmatched files stay untagged and read as-is.
    """
    by_fingerprint = {s.fingerprint(): s.schema_id for s in schemas.values()}
    out = []
    for f in files:
        if f.schema_id is None:
            sid = by_fingerprint.get(f.schema_fingerprint)
            if sid is not None:
                f = _replace(f, schema_id=sid)
        out.append(f)
    return out


class Transaction:
    """One atomic mutation of a :class:`~repro.catalog.CatalogTable`."""

    def __init__(self, table) -> None:
        self._table = table
        self._store = table.store
        self._base = table.current_snapshot()
        self._added: list[DataFile] = []
        self._removed: set[str] = set()
        self._staged_ids: list[str] = []
        self._staged_storages: list[Storage] = []
        self._ops: list[str] = []
        self._summary: dict = {}
        self._state = "open"  # open -> committed | aborted
        # schema log as this transaction sees it: the base snapshot's
        # log, plus any version evolve() stages. Empty + None for
        # legacy tables that never evolved.
        self._schemas: dict[int, TableSchema] = {
            s.schema_id: s for s in self._base.schemas
        }
        self._current_schema_id: int | None = self._base.current_schema_id
        self._evolved = False

    # -- staging helpers ------------------------------------------------
    def _require_open(self) -> None:
        if self._state != "open":
            raise RuntimeError(f"transaction already {self._state}")

    def staged_files(self) -> list[DataFile]:
        """The file list this transaction would commit right now."""
        kept = [
            f for f in self._base.files if f.file_id not in self._removed
        ]
        return kept + list(self._added)

    def new_data_file(self) -> tuple[str, Storage]:
        """Allocate a staged data file (deleted again if we abort)."""
        self._require_open()
        file_id = self._store.new_file_id()
        # register BEFORE creating: GC lists its candidates from the
        # store, so the file must be protected the moment it exists
        self._table._register_inflight(file_id)
        try:
            storage = self._store.create_data(file_id)
        except BaseException:
            self._table._unregister_inflight([file_id])
            raise
        self._staged_ids.append(file_id)
        self._staged_storages.append(storage)
        return file_id, storage

    def _close_staged(self) -> None:
        for storage in self._staged_storages:
            close_storage(storage)
        self._staged_storages = []

    def add_file(
        self,
        storage: Storage,
        file_id: str,
        *,
        schema_id: int | None = None,
    ) -> DataFile:
        """Stage a finished Bullion file written via :meth:`new_data_file`.

        ``schema_id`` carries a rewrite's source version forward
        (delete/compact copies keep the layout they were written
        under); new files instead validate against — and adopt — the
        table's current schema version.
        """
        entry = data_file_entry(storage, file_id)
        if schema_id is not None:
            entry = _replace(entry, schema_id=schema_id)
            self._added.append(entry)
            return entry
        current = self.current_schema()
        if current is not None:
            if entry.schema_fingerprint != current.fingerprint():
                raise ValueError(
                    f"schema fingerprint mismatch: file {entry.file_id!r} "
                    f"({entry.schema_fingerprint:#x}) vs current schema "
                    f"{current.schema_id} ({current.fingerprint():#x}); "
                    f"evolve() the schema before appending a new layout"
                )
            entry = _replace(entry, schema_id=current.schema_id)
        else:
            self._check_fingerprint(entry)
        self._added.append(entry)
        return entry

    def _check_fingerprint(self, entry: DataFile) -> None:
        for existing in self.staged_files():
            if existing.schema_fingerprint != entry.schema_fingerprint:
                raise ValueError(
                    f"schema fingerprint mismatch: file {entry.file_id!r} "
                    f"({entry.schema_fingerprint:#x}) vs table "
                    f"({existing.schema_fingerprint:#x})"
                )
            break

    # -- schema log -----------------------------------------------------
    def current_schema(self) -> TableSchema | None:
        """The schema version new appends must match (None: legacy)."""
        if self._current_schema_id is None:
            return None
        return self._schemas[self._current_schema_id]

    def schema_log(self) -> SchemaLog:
        """The schema log as this transaction sees it."""
        return SchemaLog(dict(self._schemas), self._current_schema_id)

    def _bootstrap_schema(self) -> TableSchema:
        """First evolution on a legacy table: reconstruct version 0
        from a live file's footer (legacy snapshots guarantee every
        file shares one frozen layout)."""
        for entry in self.staged_files():
            source = self._store.open_data(entry.file_id)
            try:
                footer = BullionReader(source).footer
                return schema_from_footer(footer, schema_id=0)
            finally:
                close_storage(source)
        raise SchemaLogError(
            "cannot evolve an empty table with no schema history; "
            "append data first to establish the base schema"
        )

    def evolve(self, *ops: EvolutionOp) -> TableSchema:
        """Stage a schema evolution (add/drop/rename/widen columns).

        Derives the next schema version from the current one and makes
        it this transaction's current — subsequent appends must match
        it, while every already-committed file keeps its own version
        and is resolved at read time. The new version becomes a
        committed evolution entry in the snapshot's schema log.
        """
        self._require_open()
        if not ops:
            raise SchemaLogError("evolve() needs at least one operation")
        if self._current_schema_id is None:
            base = self._bootstrap_schema()
            self._schemas[base.schema_id] = base
            self._current_schema_id = base.schema_id
        current = self.current_schema()
        next_field_id = (
            max(s.max_field_id() for s in self._schemas.values()) + 1
        )
        new_schema = apply_ops(
            current,
            ops,
            new_schema_id=max(self._schemas) + 1,
            next_field_id=next_field_id,
        )
        self._schemas[new_schema.schema_id] = new_schema
        self._current_schema_id = new_schema.schema_id
        self._evolved = True
        self._ops.append("evolve")
        self._bump("schema_evolutions", 1)
        return new_schema

    def _bump(self, key: str, amount: int) -> None:
        self._summary[key] = self._summary.get(key, 0) + amount

    # -- mutations ------------------------------------------------------
    def append(
        self,
        table: Table,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> DataFile:
        """Write one new file holding ``table`` and stage it."""
        self._require_open()
        if schema is None:
            current = self.current_schema()
            if current is not None:
                # write the current version's exact physical layout —
                # dtype inference must not drift from the schema log
                schema = current.write_schema()
        file_id, storage = self.new_data_file()
        writer = BullionWriter(storage, schema=schema, options=options)
        writer.open()
        writer.write_batch(table)
        writer.finish()
        entry = self.add_file(storage, file_id)
        self._ops.append("append")
        self._bump("rows_added", table.num_rows)
        return entry

    def add_shards(
        self,
        table: Table,
        rows_per_shard: int,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> list[DataFile]:
        """Split ``table`` into shard files and stage them all.

        Reuses :meth:`ShardedDataset.write` with this transaction's
        staged storages as the shard factory, so one commit publishes
        the whole shard set atomically.
        """
        self._require_open()
        ids: list[str] = []

        def factory(i: int) -> Storage:
            file_id, storage = self.new_data_file()
            ids.append(file_id)
            return storage

        dataset = ShardedDataset.write(
            table,
            rows_per_shard=rows_per_shard,
            storage_factory=factory,
            schema=schema,
            options=options,
        )
        entries = [
            self.add_file(storage, file_id)
            for file_id, storage in zip(ids, dataset.shards)
        ]
        self._ops.append("add-shards")
        self._bump("rows_added", table.num_rows)
        self._bump("shards_added", len(entries))
        return entries

    def delete(self, predicate: "Expr | Predicate") -> int:
        """Delete matching rows via copy-on-write + in-place scrub.

        ``predicate`` is an expression (:mod:`repro.expr`) or a legacy
        :class:`Predicate` range — both run through the same unified
        evaluator the scan path uses, so ``delete(e)`` removes exactly
        the rows ``scan(where=e)`` would return. The same pushdown
        layers apply: files whose manifest stats can't match are
        skipped unopened, row groups are pruned via footer zone maps,
        and only surviving groups decode their filter columns.

        Each affected file is copied byte-for-byte to a new file and
        the §2.1 page-granular scrub (:func:`delete_rows`) runs on the
        copy — the original stays immutable, so readers pinned to
        earlier snapshots are safe by construction. Files whose rows
        don't match are carried over untouched. Returns rows deleted.
        """
        self._require_open()
        where = as_expr(predicate)
        filter_columns = sorted(where.columns())
        log = self.schema_log()
        total = 0
        for entry in self.staged_files():
            resolution = log.resolution(entry)
            if not entry.might_match(where, resolution):
                continue  # manifest-level prune: file never opened
            source = self._store.open_data(entry.file_id)
            try:
                reader = BullionReader(source)
                if resolution is not None:
                    # old-schema file: filter in current coordinates —
                    # renames resolve, narrow values widen, absent
                    # columns fill (so e.g. a predicate on an added
                    # column simply matches its typed-null fill)
                    reader = ResolvedReader(reader, resolution)
                # a missing filter column raises, exactly like
                # scan(where=...) — a typo'd name must not silently
                # delete nothing
                groups = reader.prune_row_groups_expr(where)
                deleted_bitmap = None
                rows_parts: list[np.ndarray] = []
                for g in groups:
                    batch = reader.project(
                        filter_columns,
                        drop_deleted=False,
                        row_groups=[g],
                        widen_quantized=True,
                    )
                    mask = evaluate_expr(where, batch.columns)
                    if not mask.any():
                        continue
                    if deleted_bitmap is None:
                        deleted_bitmap = reader.footer.deletion_bitmap()
                    rg = reader.footer.row_group(g)
                    live = ~deleted_bitmap[
                        rg.row_start : rg.row_start + rg.n_rows
                    ]
                    rows_parts.append(
                        rg.row_start + np.flatnonzero(mask & live)
                    )
                rows = (
                    np.concatenate(rows_parts)
                    if rows_parts
                    else np.zeros(0, dtype=np.int64)
                )
                if len(rows) == 0:
                    continue
                new_id, copy = self.new_data_file()
                copy.append(source.pread(0, source.size))
                delete_rows(copy, rows)
            finally:
                close_storage(source)
            if entry.file_id in {f.file_id for f in self._added}:
                self._added = [
                    f for f in self._added if f.file_id != entry.file_id
                ]
            else:
                self._removed.add(entry.file_id)
            # the copy is byte-identical modulo scrubbed pages: it
            # keeps the source's schema version
            self._added.append(
                _replace(
                    data_file_entry(copy, new_id), schema_id=entry.schema_id
                )
            )
            total += len(rows)
        if total:  # zero matches stage nothing: no no-op snapshot
            self._ops.append("delete")
            self._bump("rows_deleted", total)
        return total

    def upsert(
        self,
        table: Table,
        key: str,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> DataFile:
        """Keyed upsert: replace rows matching ``table``'s keys, insert
        the rest — one atomic snapshot.

        Composes the existing machinery: manifest + zone-map pushdown
        finds the victim files for ``key IN (batch keys)``, the §2.1
        copy-on-write scrub deletes the old versions, and the batch is
        appended as one new file. Keys must be exact-match types (int,
        bool, string, bytes — float keys are rejected: NaN and rounding
        make float equality a correctness trap) and unique within the
        batch (duplicate keys would make the surviving row ambiguous).

        Commits replay like deletes: concurrent appends abort the
        transaction, because rows added after our key scan could hold a
        key this batch claims to have replaced.
        """
        self._require_open()
        if table.num_rows == 0:
            raise ValueError("upsert of an empty batch")
        if key not in table.columns:
            raise ValueError(f"upsert key column {key!r} not in batch")
        current = self.current_schema()
        if current is not None and current.maybe_column(key) is None:
            raise ValueError(
                f"upsert key column {key!r} not in current schema"
            )
        raw_keys = table.column(key)
        if isinstance(raw_keys, np.ndarray):
            if raw_keys.dtype.kind == "f":
                raise ValueError(
                    f"upsert key column {key!r} is floating point; "
                    f"float equality is not a safe upsert key"
                )
            keys = [v.item() for v in raw_keys]
        else:
            keys = list(raw_keys)
            if any(isinstance(v, float) for v in keys):
                raise ValueError(
                    f"upsert key column {key!r} is floating point; "
                    f"float equality is not a safe upsert key"
                )
        if len(set(keys)) != len(keys):
            raise ValueError(
                f"duplicate keys in upsert batch for {key!r}; "
                f"the surviving row would be ambiguous"
            )
        # stage via delete + append, then relabel the pair as one
        # logical "upsert" with its own summary counters
        ops_mark = len(self._ops)
        summary_before = dict(self._summary)
        replaced = self.delete(col(key).isin(keys))
        entry = self.append(table, schema=schema, options=options)
        del self._ops[ops_mark:]
        self._ops.append("upsert")
        self._summary = summary_before
        self._bump("rows_upserted", table.num_rows)
        self._bump("rows_replaced", replaced)
        return entry

    def compact(
        self,
        file_ids: list[str] | None = None,
        min_deleted_fraction: float = 0.0,
        options: WriterOptions | None = None,
    ) -> CompactionReport:
        """Rewrite deletion-scrubbed files without their dead rows.

        By default every staged file carrying deletions at or above
        ``min_deleted_fraction`` is rewritten; ``file_ids`` narrows the
        set explicitly. Returns the aggregate report.
        """
        self._require_open()
        rows_in = rows_out = bytes_in = bytes_out = 0
        rewrote = False
        for entry in self.staged_files():
            if file_ids is not None and entry.file_id not in file_ids:
                continue
            if file_ids is None and (
                entry.deleted_count == 0
                or entry.deleted_fraction < min_deleted_fraction
            ):
                continue
            new_id, target = self.new_data_file()
            source = self._store.open_data(entry.file_id)
            try:
                report = compact_file(source, target, options=options)
            finally:
                close_storage(source)
            rewrote = True
            if entry.file_id in {f.file_id for f in self._added}:
                self._added = [
                    f for f in self._added if f.file_id != entry.file_id
                ]
            else:
                self._removed.add(entry.file_id)
            if report.rows_out > 0:
                # compaction preserves layout: keep the source version
                self._added.append(
                    _replace(
                        data_file_entry(target, new_id),
                        schema_id=entry.schema_id,
                    )
                )
            # else: every row was deleted — drop the file from the
            # table; the staged empty rewrite is swept at commit
            rows_in += report.rows_in
            rows_out += report.rows_out
            bytes_in += report.bytes_in
            bytes_out += report.bytes_out
        if rewrote:  # nothing to rewrite stages no no-op snapshot
            self._ops.append("compact")
            self._bump("bytes_reclaimed", bytes_in - bytes_out)
        return CompactionReport(
            rows_in=rows_in,
            rows_out=rows_out,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
        )

    def replace_files(
        self,
        removed_ids: list[str],
        added: list[DataFile],
        operation: str,
        summary: dict | None = None,
    ) -> None:
        """Stage an arbitrary file-set edit (the maintenance surface)."""
        self._require_open()
        live = {f.file_id for f in self.staged_files()}
        missing = [fid for fid in removed_ids if fid not in live]
        if missing:
            raise ValueError(f"cannot remove unknown files {missing}")
        self._removed.update(removed_ids)
        self._added.extend(added)
        self._ops.append(operation)
        for key, value in (summary or {}).items():
            self._bump(key, value)

    # -- commit protocol ------------------------------------------------
    def commit(self, max_retries: int = 20) -> Snapshot:
        """Publish the staged edit as the next snapshot (CAS + retry)."""
        obs_on = obs_metrics.enabled()
        t0 = time.perf_counter() if obs_on else 0.0
        with obs_trace.span("catalog.commit", ops=",".join(self._ops)):
            snap = self._commit_impl(max_retries, obs_on)
        if obs_on:
            COMMIT_SECONDS.observe(time.perf_counter() - t0)
            COMMITS.labels(operation=snap.operation).inc()
        return snap

    def _commit_impl(self, max_retries: int, obs_on: bool) -> Snapshot:
        self._require_open()
        if not self._ops and not self._added and not self._removed:
            raise ValueError("empty transaction: nothing staged")
        # durability first: staged data must be on disk before the
        # manifest that references it — put_metadata only makes the
        # small snapshot JSON durable
        for storage in self._staged_storages:
            sync = getattr(storage, "sync", None)
            if sync is not None:  # FileStorage; simulators need none
                sync()
        self._store.sync_data()
        table = self._table
        head = self._base
        for _attempt in range(max_retries + 1):
            if obs_on:
                COMMIT_ATTEMPTS.inc()
                if _attempt:  # turn N>0 replays the edit on a new HEAD
                    COMMIT_REPLAYS.inc()
            # re-validate against (possibly moved) HEAD: every file we
            # replace must still be live
            head_ids = head.file_ids()
            gone = self._removed - head_ids
            if gone:
                self.abort()
                raise CommitConflict(
                    f"files {sorted(gone)} were replaced by a concurrent "
                    f"commit; transaction aborted"
                )
            if (self._evolved or self._added) and (
                head.schemas != self._base.schemas
                or head.current_schema_id != self._base.current_schema_id
            ):
                # staged files were fingerprint-validated (and tagged)
                # against our base's schema log; a concurrent evolution
                # invalidates that — abort rather than commit files
                # under a schema they were never checked against
                self.abort()
                raise CommitConflict(
                    "the schema log changed under a concurrent commit; "
                    "transaction aborted"
                )
            if {"delete", "upsert"} & set(self._ops):
                # a delete's (or upsert's key-scan) predicate never
                # scanned files appended after its base snapshot —
                # replaying over them would silently leave matching
                # rows live, so abort instead
                unseen = (
                    head_ids
                    - self._base.file_ids()
                    - {f.file_id for f in self._added}
                )
                if unseen:
                    self.abort()
                    raise CommitConflict(
                        f"files {sorted(unseen)} were added concurrently; "
                        f"a delete cannot replay without re-scanning them; "
                        f"transaction aborted"
                    )
            files = [
                f for f in head.files if f.file_id not in self._removed
            ] + list(self._added)
            # schema log for the new snapshot: ours if we evolved,
            # otherwise carried forward from HEAD
            if self._evolved:
                schemas, current_id = self._schemas, self._current_schema_id
            else:
                schemas = {s.schema_id: s for s in head.schemas}
                current_id = head.current_schema_id
            if current_id is not None:
                files = _adopt_legacy_files(files, schemas)
                referenced = {
                    f.schema_id for f in files if f.schema_id is not None
                }
                referenced.add(current_id)
                kept_schemas = tuple(
                    schemas[i] for i in sorted(referenced) if i in schemas
                )
            else:
                kept_schemas = ()
            snap = Snapshot(
                snapshot_id=head.snapshot_id + 1,
                parent_id=head.snapshot_id,
                timestamp_ms=table._next_timestamp_ms(head.timestamp_ms),
                # bare new_data_file()+add_file() staging records no op
                operation=",".join(dict.fromkeys(self._ops)) or "add-files",
                files=tuple(files),
                summary=dict(self._summary),
                schemas=kept_schemas,
                current_schema_id=current_id,
            )
            if self._store.put_metadata(
                snapshot_name(snap.snapshot_id), snap.to_json()
            ):
                self._state = "committed"
                table._note_commit(snap)
                table._unregister_inflight(self._staged_ids)
                self._close_staged()  # readers re-open via open_data
                # staged files superseded within this very transaction
                # (e.g. delete-then-compact) are unreferenced: drop them
                referenced = snap.file_ids()
                for file_id in self._staged_ids:
                    if file_id not in referenced:
                        self._store.delete_data(file_id)
                return snap
            table._count("conflicts")
            if obs_on:
                COMMIT_CONFLICTS.inc()
            head = table.current_snapshot()
        self.abort()
        raise CommitConflict(f"commit failed after {max_retries} retries")

    def abort(self) -> None:
        """Drop the transaction and delete its staged data files."""
        if self._state != "open":
            return
        self._state = "aborted"
        self._close_staged()
        for file_id in self._staged_ids:
            self._store.delete_data(file_id)
        self._table._unregister_inflight(self._staged_ids)
        self._table._count("aborts")
        if obs_metrics.enabled():
            COMMIT_ABORTS.inc()
