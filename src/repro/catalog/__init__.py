"""Transactional table catalog: snapshots, atomic commits, time travel.

The control plane over Bullion data files. A **table** is a log of
immutable **snapshots** held in a :class:`CatalogStore`; every
mutation — ``append``, ``add_shards``, ``delete(predicate)``,
``compact`` — is a :class:`Transaction` that writes new files through
the streaming writer and publishes the next snapshot with an atomic
put-if-absent commit, retrying optimistically when another committer
moved HEAD. Reads pin a snapshot (``pin()`` / ``scan(snapshot_id=…)``
/ ``as_of(ts)``), which fixes an immutable file set — the existing
``Scan``/``ChunkCache``/``TrainingDataLoader`` machinery is safe by
construction on top. :class:`MaintenanceService` rolls small ingests
into training-sized files, compacts deletion-scrubbed files, and
expires unreferenced snapshots without ever touching pinned files.

Quickstart::

    from repro.catalog import CatalogTable, MemoryCatalogStore

    table = CatalogTable.create(MemoryCatalogStore())
    table.append(some_table)
    with table.pin() as snap:            # immutable view
        loader = snap.loader(["clicks"]) # reproducible epochs
"""

from repro.catalog.maintenance import (
    MaintenanceJob,
    MaintenancePolicy,
    MaintenanceReport,
    MaintenanceService,
)
from repro.catalog.schema_evolution import (
    AddColumn,
    CatalogMetadataError,
    DropColumn,
    FileResolution,
    RenameColumn,
    ResolvedReader,
    SchemaColumn,
    SchemaLog,
    SchemaLogError,
    TableSchema,
    WidenColumn,
)
from repro.catalog.snapshot import (
    ColumnStats,
    DataFile,
    Snapshot,
    parse_snapshot_name,
    snapshot_name,
)
from repro.catalog.store import (
    CatalogStore,
    DirectoryCatalogStore,
    MemoryCatalogStore,
)
from repro.catalog.table import CatalogStats, CatalogTable, PinnedSnapshot
from repro.catalog.transaction import (
    CommitConflict,
    Transaction,
    data_file_entry,
)

__all__ = [
    "CatalogTable",
    "CatalogStats",
    "PinnedSnapshot",
    "Transaction",
    "CommitConflict",
    "data_file_entry",
    "Snapshot",
    "DataFile",
    "ColumnStats",
    "TableSchema",
    "SchemaColumn",
    "SchemaLog",
    "FileResolution",
    "ResolvedReader",
    "AddColumn",
    "DropColumn",
    "RenameColumn",
    "WidenColumn",
    "CatalogMetadataError",
    "SchemaLogError",
    "snapshot_name",
    "parse_snapshot_name",
    "CatalogStore",
    "MemoryCatalogStore",
    "DirectoryCatalogStore",
    "MaintenanceService",
    "MaintenancePolicy",
    "MaintenanceJob",
    "MaintenanceReport",
]
