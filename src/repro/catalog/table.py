"""CatalogTable: the transactional control plane over Bullion files.

A table is a log of immutable :class:`~repro.catalog.Snapshot`\\ s in a
:class:`~repro.catalog.CatalogStore`. HEAD is simply the highest
committed snapshot id; commits race through the store's put-if-absent
CAS (see :mod:`repro.catalog.transaction`).

Reads never touch HEAD directly — they **pin** a snapshot:
``pin()``/``scan()``/``as_of()`` resolve to one immutable file set and
hold a refcount the garbage collector respects, which is what makes
the existing :class:`~repro.core.reader.Scan` and ``ChunkCache`` safe
by construction (a pinned file is never mutated, and never deleted
while pinned). :meth:`PinnedSnapshot.loader` hands the pinned reader
set straight to :class:`~repro.core.dataset.TrainingDataLoader`, so
training epochs are reproducible while ingest keeps committing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.catalog.schema_evolution import (
    EvolutionOp,
    ResolvedReader,
    SchemaLog,
    TableSchema,
    fill_values,
)
from repro.catalog.snapshot import (
    Snapshot,
    parse_snapshot_name,
    snapshot_name,
)
from repro.catalog.store import CatalogStore
from repro.catalog.transaction import Transaction
from repro.core.compact import CompactionReport
from repro.core.dataset import LoaderOptions, TrainingDataLoader, rebatch
from repro.core.reader import BullionReader, Predicate
from repro.expr import Expr
from repro.core.schema import Schema
from repro.core.table import Table, concat_tables
from repro.core.writer import WriterOptions
from repro.obs import trace as obs_trace

#: parsed-snapshot cache bound (oldest ids evicted first; pinned
#: snapshots are unaffected — each PinnedSnapshot holds its own copy)
_SNAP_CACHE_MAX = 128


@dataclass
class CatalogStats:
    """Control-plane counters for one table handle."""

    commits: int = 0
    conflicts: int = 0
    aborts: int = 0


class PinnedSnapshot:
    """An immutable file set held open for reading.

    Refcounts on the owning table keep the snapshot's metadata and
    data files out of GC's reach until :meth:`release` (or context
    exit). Readers are opened lazily and cached, so repeat scans share
    each file's chunk cache across epochs.
    """

    def __init__(self, table: "CatalogTable", snapshot: Snapshot) -> None:
        self._table = table
        self.snapshot = snapshot
        #: file_id -> open reader; populated lazily, and only for files
        #: a scan actually needs (pruned files are never opened)
        self._reader_cache: dict[str, BullionReader] = {}
        #: file_id -> ResolvedReader facade for old-schema files
        self._resolved_cache: dict[str, ResolvedReader] = {}
        self._log: SchemaLog | None = None
        self._storages: list = []
        #: readers borrowed from ``table.reader_provider`` rather than
        #: opened by this pin — returned, not closed, on release
        self._pooled: list[str] = []
        self._provider = table.reader_provider
        #: concurrent requests (the serving layer) may race to open a
        #: reader; the lock makes "parse each footer once per pin" hold
        #: under concurrency instead of best-effort
        self._reader_lock = threading.RLock()
        self._released = False

    # -- lifecycle ------------------------------------------------------
    def release(self) -> None:
        if not self._released:
            self._released = True
            with self._reader_lock:
                pooled = [
                    (fid, self._reader_cache.get(fid))
                    for fid in self._pooled
                ]
                self._pooled = []
                self._reader_cache = {}
                self._resolved_cache = {}
                storages, self._storages = self._storages, []
            for fid, reader in pooled:
                self._provider.release(fid, reader)
            for storage in storages:
                close = getattr(storage, "close", None)
                if close is not None:  # FileStorage holds an fd
                    close()
            self._table._unpin(self.snapshot.snapshot_id)

    def __enter__(self) -> "PinnedSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # -- reading --------------------------------------------------------
    def _reader_for(self, file_id: str) -> BullionReader:
        if self._released:
            raise RuntimeError("pinned snapshot already released")
        with self._reader_lock:
            reader = self._reader_cache.get(file_id)
            if reader is None:
                if self._provider is not None:
                    # borrow from the shared pool: footers are parsed
                    # once per *file*, not once per pin
                    reader = self._provider.acquire(file_id)
                    self._pooled.append(file_id)
                else:
                    storage = self._table.store.open_data(file_id)
                    self._storages.append(storage)
                    reader = BullionReader(
                        storage,
                        chunk_cache=self._table.chunk_cache,
                        **self._table.reader_options,
                    )
                self._reader_cache[file_id] = reader
        return reader

    def schema_log(self) -> SchemaLog:
        """The snapshot's schema log (legacy snapshots: empty log)."""
        if self._log is None:
            self._log = SchemaLog.from_snapshot(self.snapshot)
        return self._log

    def current_schema(self) -> TableSchema | None:
        return self.schema_log().current()

    def _resolved_reader_for(self, data_file):
        """The reader every read path uses: the raw reader when the
        file is already at the current schema, else a
        :class:`ResolvedReader` presenting it as the current schema."""
        resolution = self.schema_log().resolution(data_file)
        if resolution is None:
            return self._reader_for(data_file.file_id)
        with self._reader_lock:
            resolved = self._resolved_cache.get(data_file.file_id)
            if resolved is None:
                resolved = ResolvedReader(
                    self._reader_for(data_file.file_id), resolution
                )
                self._resolved_cache[data_file.file_id] = resolved
        return resolved

    def readers(self) -> list[BullionReader]:
        return [self._resolved_reader_for(f) for f in self.snapshot.files]

    def prune_files(self, where) -> tuple[list, list]:
        """Split the snapshot's files into (kept, pruned) for ``where``.

        Decided purely from manifest column statistics — the first
        pushdown layer; pruned files are never opened. Conservative:
        files without stats are always kept, and a column an
        old-schema file never stored yields no interval (``MAYBE``).
        """
        log = self.schema_log()
        kept, pruned = [], []
        for f in self.snapshot.files:
            (kept if f.might_match(where, log.resolution(f)) else pruned
             ).append(f)
        return kept, pruned

    def scan(self, columns: list[str], **scan_kwargs):
        """Chained lazy scan over the pinned file set (one stream).

        With ``where=`` the full pushdown applies: files are pruned
        from manifest stats before any open, then each surviving
        file's scan prunes row groups via zone maps and row-filters
        decoded batches. Pass ``scan_stats=`` a shared
        :class:`~repro.core.reader.ScanStats` to collect per-layer
        skip counts across the whole read.
        """
        batch_size = scan_kwargs.pop("batch_size", None)
        where = scan_kwargs.get("where")
        files = list(self.snapshot.files)
        if where is not None:
            files, pruned = self.prune_files(where)
            stats = scan_kwargs.get("scan_stats")
            if stats is not None:
                stats.bump(
                    files_pruned=len(pruned),
                    rows_pruned=sum(f.row_count for f in pruned),
                )
        yield from self.scan_files(
            files, columns, batch_size=batch_size, **scan_kwargs
        )

    def scan_files(
        self, files, columns: list[str], batch_size=None, **scan_kwargs
    ):
        """Lazy batch stream over an explicit subset of the pin's files.

        ``files`` must be :class:`DataFile` members of this snapshot in
        snapshot order; batching and filtering are identical to
        :meth:`scan`, which delegates here after manifest pruning. The
        serving layer uses this to scan a cached pruned file set
        without re-deriving it — byte-identical to the unpruned path
        because the kept files and their order are the same.
        """
        chunks = (
            batch
            for f in files
            for batch in self._scan_file_traced(f, columns, scan_kwargs)
        )
        if batch_size is None:
            yield from chunks
            return
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        yield from rebatch(chunks, batch_size)

    def _scan_file_traced(self, f, columns, scan_kwargs):
        """One file's batches under a ``scan.file`` span.

        The span covers the file's whole lazy iteration, so with a slow
        consumer it includes consumer time between batches — the
        documented wall-time semantics of generator-crossing spans.
        """
        it = self._resolved_reader_for(f).scan(columns, **scan_kwargs)
        if not obs_trace.enabled():
            yield from it
            return
        with obs_trace.span("scan.file", file=f.file_id, rows=f.row_count):
            yield from it

    def read(self, columns: list[str], **scan_kwargs) -> Table:
        """Eagerly materialize a projection of the pinned snapshot.

        When every row is filtered (or every file pruned) the result
        is still a correctly-typed empty table, derived from the first
        file's footer — one metadata read, no chunk I/O.
        """
        tables = list(self.scan(columns, **scan_kwargs))
        if tables:
            return concat_tables(tables)
        widen = scan_kwargs.get("widen_quantized", False)
        current = self.current_schema()
        if current is not None:
            # evolved table: the current schema types the empty result
            # without touching any file at all
            return Table({
                name: fill_values(current.column(name).type, 0, widen)
                for name in columns
            })
        if not self.snapshot.files:
            return Table({})
        reader = self._resolved_reader_for(self.snapshot.files[0])
        return reader.scan(
            columns, row_groups=[], widen_quantized=widen
        ).to_table()

    def query(
        self,
        aggregates,
        *,
        where: Expr | None = None,
        group_by=None,
        use_metadata: bool = True,
        max_workers: int = 4,
    ):
        """Aggregate over the pinned file set (``repro.query``).

        ``aggregates`` is a list of specs like ``"count"``,
        ``"sum(clicks)"``, ``"min(price)"``. With ``use_metadata``
        (the default) the engine answers whatever it can from manifest
        and footer statistics — metadata-answerable queries on a
        clean snapshot fetch **zero** data chunks, and files the
        manifest fully proves are never even opened. Decode work fans
        out one partial-aggregation task per file and merges in file
        order, so results are bit-identical for any ``max_workers``.
        Returns a :class:`repro.query.QueryResult`; its ``stats``
        reports which answer path handled what.
        """
        from repro.query import aggregate_snapshot

        return aggregate_snapshot(
            self,
            aggregates,
            where=where,
            group_by=group_by,
            use_metadata=use_metadata,
            max_workers=max_workers,
        )

    def loader(
        self, columns: list[str], options: LoaderOptions | None = None
    ) -> TrainingDataLoader:
        """A loader bound to this pin: every epoch sees the same rows.

        When ``options.where`` is set, manifest column statistics
        prune files up front — the loader never opens a file the
        interval evaluator rules out, and every epoch reuses the same
        pruned set (zone maps and decode-time filtering then apply
        inside each file's scan).
        """
        source: object = self
        if options is not None and options.where is not None:
            kept, _pruned = self.prune_files(options.where)
            source = _PrunedFileSet(self, kept)
        return TrainingDataLoader(source, columns, options)


class _PrunedFileSet:
    """Reader source over the subset of a pin's files a filter keeps.

    Quacks like :class:`~repro.core.dataset.ShardedDataset` (exposes
    ``readers()``); readers open lazily through the owning pin, so
    manifest-pruned files are never touched.
    """

    def __init__(self, pinned: "PinnedSnapshot", files) -> None:
        self._pinned = pinned
        self._files = list(files)

    def readers(self) -> list[BullionReader]:
        return [self._pinned._resolved_reader_for(f) for f in self._files]


class CatalogTable:
    """Open (or :meth:`create`) a table in a :class:`CatalogStore`."""

    def __init__(
        self,
        store: CatalogStore,
        clock=None,
        *,
        chunk_cache=None,
        reader_options: dict | None = None,
    ) -> None:
        self.store = store
        self.stats = CatalogStats()
        #: a shared TieredChunkCache every reader this table opens will
        #: use (keys carry storage identity + file fingerprint, so the
        #: cache is correct across snapshots and epochs); None keeps
        #: the historical per-reader LRU
        self.chunk_cache = chunk_cache
        #: extra BullionReader kwargs (e.g. ``coalesce_gap``) applied
        #: to every reader opened through a pin
        self.reader_options = dict(reader_options or {})
        #: optional shared reader source (``acquire(file_id)`` /
        #: ``release(file_id, reader)``): when set, pins borrow readers
        #: from it instead of opening storage themselves, so footers
        #: are parsed once per file across every pin and epoch — the
        #: serving layer's metadata cache (see repro.server.cache)
        self.reader_provider = None
        self._clock = clock or (lambda: time.time_ns() // 1_000_000)
        self._lock = threading.Lock()
        self._snap_cache: dict[int, Snapshot] = {}
        #: snapshot id -> pin count (this handle's readers)
        self._pins: dict[int, int] = {}
        #: data files staged by open transactions (GC must not touch)
        self._inflight: set[str] = set()
        if self._snapshot_ids() == []:
            raise FileNotFoundError(
                "store holds no snapshots; use CatalogTable.create()"
            )

    @classmethod
    def create(
        cls,
        store: CatalogStore,
        clock=None,
        *,
        chunk_cache=None,
        reader_options: dict | None = None,
    ) -> "CatalogTable":
        """Initialize an empty table (snapshot 0) in ``store``."""
        now = (clock or (lambda: time.time_ns() // 1_000_000))()
        genesis = Snapshot(
            snapshot_id=0,
            parent_id=None,
            timestamp_ms=now,
            operation="create",
        )
        if not store.put_metadata(snapshot_name(0), genesis.to_json()):
            raise FileExistsError("store already holds a table")
        return cls(
            store,
            clock=clock,
            chunk_cache=chunk_cache,
            reader_options=reader_options,
        )

    # -- snapshot log ---------------------------------------------------
    def _snapshot_ids(self) -> list[int]:
        ids = [
            sid
            for name in self.store.list_metadata()
            if (sid := parse_snapshot_name(name)) is not None
        ]
        return sorted(ids)

    def snapshot(self, snapshot_id: int) -> Snapshot:
        with self._lock:
            cached = self._snap_cache.get(snapshot_id)
        if cached is not None:
            return cached
        data = self.store.read_metadata(snapshot_name(snapshot_id))
        snap = Snapshot.from_json(data)
        with self._lock:
            self._cache_snapshot(snap)
        return snap

    def _cache_snapshot(self, snap: Snapshot) -> None:
        """Insert under the held lock, evicting the oldest past the cap."""
        self._snap_cache[snap.snapshot_id] = snap
        while len(self._snap_cache) > _SNAP_CACHE_MAX:
            self._snap_cache.pop(min(self._snap_cache))

    def current_snapshot(self) -> Snapshot:
        for _attempt in range(10):
            ids = self._snapshot_ids()
            if not ids:
                raise FileNotFoundError("table has no snapshots")
            try:
                return self.snapshot(ids[-1])
            except FileNotFoundError:
                # ids[-1] was expired between listing and reading —
                # only possible once a newer snapshot exists, so a
                # re-listing converges on the new HEAD
                continue
        raise RuntimeError("could not read HEAD: expiry kept racing")

    def history(self) -> list[Snapshot]:
        """All retained snapshots, oldest first."""
        out = []
        for sid in self._snapshot_ids():
            try:
                out.append(self.snapshot(sid))
            except FileNotFoundError:
                continue  # expired between listing and reading
        return out

    def as_of(self, timestamp_ms: int) -> Snapshot:
        """Latest snapshot committed at or before ``timestamp_ms``."""
        best: Snapshot | None = None
        for snap in self.history():
            if snap.timestamp_ms <= timestamp_ms:
                best = snap
        if best is None:
            raise LookupError(
                f"no snapshot at or before t={timestamp_ms} ms"
            )
        return best

    def _next_timestamp_ms(self, parent_ms: int) -> int:
        # strictly increasing along the log so as_of() is unambiguous
        return max(self._clock(), parent_ms + 1)

    # -- transactions ---------------------------------------------------
    def transaction(self) -> Transaction:
        return Transaction(self)

    def append(
        self,
        table: Table,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> Snapshot:
        txn = self.transaction()
        txn.append(table, schema=schema, options=options)
        return txn.commit()

    def add_shards(
        self,
        table: Table,
        rows_per_shard: int,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> Snapshot:
        txn = self.transaction()
        txn.add_shards(
            table, rows_per_shard, schema=schema, options=options
        )
        return txn.commit()

    def evolve(self, *ops: EvolutionOp) -> Snapshot:
        """Commit a schema evolution (add/drop/rename/widen columns)."""
        txn = self.transaction()
        try:
            txn.evolve(*ops)
        except BaseException:
            txn.abort()
            raise
        return txn.commit()

    def upsert(
        self,
        table: Table,
        key: str,
        schema: Schema | None = None,
        options: WriterOptions | None = None,
    ) -> Snapshot:
        """Keyed upsert committed as one snapshot; see
        :meth:`Transaction.upsert`."""
        txn = self.transaction()
        try:
            txn.upsert(table, key, schema=schema, options=options)
        except BaseException:
            txn.abort()
            raise
        return txn.commit()

    def current_schema(self) -> TableSchema | None:
        """HEAD's current schema version (None: never evolved)."""
        snap = self.current_snapshot()
        return SchemaLog.from_snapshot(snap).current()

    def delete(self, predicate: "Expr | Predicate") -> Snapshot:
        """Delete rows matching an expression (or legacy range).

        Shares the scan path's evaluator and pushdown layers: the rows
        removed are exactly the rows ``scan(where=predicate)`` would
        have returned.
        """
        txn = self.transaction()
        try:
            deleted = txn.delete(predicate)
        except BaseException:
            txn.abort()  # e.g. a typo'd filter column raised KeyError
            raise
        if deleted == 0:
            txn.abort()  # nothing matched: no no-op snapshot
            return self.current_snapshot()
        return txn.commit()

    def compact(
        self,
        min_deleted_fraction: float = 0.0,
        options: WriterOptions | None = None,
    ) -> tuple[Snapshot, CompactionReport]:
        txn = self.transaction()
        report = txn.compact(
            min_deleted_fraction=min_deleted_fraction, options=options
        )
        if report.bytes_in == 0:
            txn.abort()  # nothing to compact: no no-op snapshot
            return self.current_snapshot(), report
        return txn.commit(), report

    def expire_snapshot(self, snapshot_id: int) -> bool:
        """Delete one snapshot's metadata unless it is pinned.

        The pin check and the delete happen under the table lock —
        the same lock :meth:`pin` registers under — so a racing
        ``pin()`` either lands first (we refuse) or observes the
        missing metadata and re-resolves. Returns True when expired.
        """
        with self._lock:
            if snapshot_id in self._pins:
                return False
            self._snap_cache.pop(snapshot_id, None)
            self.store.delete_metadata(snapshot_name(snapshot_id))
        return True

    # -- pinned reads ---------------------------------------------------
    def pin(
        self,
        snapshot_id: int | None = None,
        as_of: int | None = None,
    ) -> PinnedSnapshot:
        """Pin one immutable snapshot for reading (default: HEAD)."""
        if snapshot_id is not None and as_of is not None:
            raise ValueError("pass at most one of snapshot_id/as_of")
        for _attempt in range(10):
            if as_of is not None:
                snap = self.as_of(as_of)
            elif snapshot_id is not None:
                snap = self.snapshot(snapshot_id)
            else:
                snap = self.current_snapshot()
            with self._lock:
                self._pins[snap.snapshot_id] = (
                    self._pins.get(snap.snapshot_id, 0) + 1
                )
            # the snapshot may have been expired between resolving it
            # and registering the pin; expire_snapshot serializes on
            # the same lock, so a post-registration existence check
            # closes the window (bypassing the snapshot cache — one
            # metadata read, not a full listing)
            try:
                self.store.read_metadata(snapshot_name(snap.snapshot_id))
                return PinnedSnapshot(self, snap)
            except FileNotFoundError:
                pass
            self._unpin(snap.snapshot_id)
            if snapshot_id is not None:
                raise LookupError(f"snapshot {snapshot_id} was expired")
        raise RuntimeError("could not pin a snapshot: expiry kept racing")

    def _unpin(self, snapshot_id: int) -> None:
        with self._lock:
            count = self._pins.get(snapshot_id, 0) - 1
            if count <= 0:
                self._pins.pop(snapshot_id, None)
            else:
                self._pins[snapshot_id] = count

    def pinned_snapshot_ids(self) -> set[int]:
        with self._lock:
            return set(self._pins)

    def pinned_file_ids(self) -> set[str]:
        """Data files GC must leave alone: pinned or mid-transaction."""
        out: set[str] = set()
        for sid in self.pinned_snapshot_ids():
            out |= self.snapshot(sid).file_ids()
        with self._lock:
            out |= self._inflight
        return out

    def scan(
        self,
        columns: list[str],
        snapshot_id: int | None = None,
        as_of: int | None = None,
        **scan_kwargs,
    ):
        """Lazy batch stream over a pinned snapshot (pin held while
        iterating, released when the generator closes)."""
        pinned = self.pin(snapshot_id=snapshot_id, as_of=as_of)
        try:
            yield from pinned.scan(columns, **scan_kwargs)
        finally:
            pinned.release()

    def read(
        self,
        columns: list[str],
        snapshot_id: int | None = None,
        as_of: int | None = None,
        **scan_kwargs,
    ) -> Table:
        with self.pin(snapshot_id=snapshot_id, as_of=as_of) as pinned:
            return pinned.read(columns, **scan_kwargs)

    def query(
        self,
        aggregates,
        snapshot_id: int | None = None,
        as_of: int | None = None,
        **query_kwargs,
    ):
        """Aggregate over a pinned snapshot (default HEAD); see
        :meth:`PinnedSnapshot.query`."""
        with self.pin(snapshot_id=snapshot_id, as_of=as_of) as pinned:
            return pinned.query(aggregates, **query_kwargs)

    # -- transaction bookkeeping (called by Transaction) ----------------
    def _register_inflight(self, file_id: str) -> None:
        with self._lock:
            self._inflight.add(file_id)

    def _unregister_inflight(self, file_ids: list[str]) -> None:
        with self._lock:
            self._inflight.difference_update(file_ids)

    def _note_commit(self, snap: Snapshot) -> None:
        with self._lock:
            self._cache_snapshot(snap)
            self.stats.commits += 1

    def _count(self, attr: str) -> None:
        with self._lock:
            setattr(self.stats, attr, getattr(self.stats, attr) + 1)
