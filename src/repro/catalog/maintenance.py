"""Background maintenance: roll-ups, compaction, snapshot expiry.

The paper deliberately keeps space reclamation off the
compliance-critical path (§2.1: deletes scrub pages in place; a later
compaction reclaims the bytes). The catalog gives that division of
labour a scheduler: :class:`MaintenanceService` inspects HEAD, plans
jobs, and executes each as an ordinary transaction — so maintenance
commits race (and retry) like any other writer and never blocks
training readers, which hold pinned snapshots.

Four job kinds:

``retention`` delete rows matching the policy's standing expression
              (e.g. ``col("ts") < horizon``) through the same unified
              evaluator and pushdown layers every scan and delete use
``rollup``    merge small incremental ingest files into
              training-sized ones via :func:`repro.core.merge`
``compact``   rewrite files whose deleted-row fraction crossed the
              policy threshold via :func:`repro.core.compact`
``expire``    drop old snapshots beyond the retention policy, then
              delete data files no retained (or pinned, or
              mid-transaction) snapshot references

Pins and in-flight staged files live in the :class:`CatalogTable`
handle, not the store, so expiry only sees readers and open
transactions on the *same* handle. When several processes write one
``DirectoryCatalogStore``, run expiry in the writer process or set
``MaintenancePolicy.gc_grace_ms`` above the longest transaction so GC
never collects a file another process staged but has not committed yet.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.catalog.snapshot import Snapshot
from repro.catalog.table import CatalogTable
from repro.catalog.transaction import (
    CommitConflict,
    close_storage,
    data_file_entry,
)
from repro.core.compact import merge
from repro.core.writer import WriterOptions
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import (
    MAINT_BYTES_RECLAIMED,
    MAINT_CYCLE_SECONDS,
    MAINT_CYCLES,
    MAINT_FILES_DELETED,
    MAINT_GC_REFUSALS,
    MAINT_JOBS_RUN,
    MAINT_JOBS_SKIPPED,
    MAINT_ROWS_DELETED,
    MAINT_SNAPSHOTS_EXPIRED,
)


@dataclass
class MaintenancePolicy:
    """When maintenance considers a file or snapshot actionable."""

    #: files with fewer live rows than this are roll-up candidates
    rollup_small_file_rows: int = 4096
    #: stop filling a roll-up bin once it reaches this many rows
    rollup_target_rows: int = 65536
    #: never merge fewer files than this (a 1-file merge is a no-op)
    rollup_min_files: int = 2
    #: compact a file once this fraction of its rows is deleted
    compact_deleted_fraction: float = 0.25
    #: always retain the most recent N snapshots
    keep_snapshots: int = 3
    #: additionally require expired snapshots to be older than this
    snapshot_ttl_ms: int | None = None
    #: GC grace period: leave unreferenced data files whose last
    #: modification is younger than this alone. Pins and in-flight
    #: staged files are tracked per table handle, so when OTHER
    #: processes write the same store, set this above the longest
    #: transaction (or only run expiry in the writer process)
    gc_grace_ms: int = 0
    #: standing row-retention filter (:class:`repro.expr.Expr`):
    #: every cycle deletes the rows it matches, using the same
    #: evaluator and file/group pruning as ``scan(where=...)`` —
    #: files whose manifest stats rule the filter out are untouched,
    #: so a steady-state cycle plans no retention job at all
    retention_filter: "object | None" = None
    #: writer options for rewritten files (None = defaults)
    writer_options: WriterOptions | None = None


@dataclass(frozen=True)
class MaintenanceJob:
    """One planned unit of background work."""

    kind: str  # "rollup" | "compact" | "expire"
    file_ids: tuple[str, ...] = ()
    snapshot_ids: tuple[int, ...] = ()
    reason: str = ""


@dataclass
class MaintenanceReport:
    """What one maintenance cycle actually did."""

    jobs_planned: int = 0
    jobs_run: int = 0
    files_merged: int = 0
    files_compacted: int = 0
    bytes_reclaimed: int = 0
    snapshots_expired: int = 0
    data_files_deleted: int = 0
    rows_deleted: int = 0
    skipped: list[str] = field(default_factory=list)


class MaintenanceService:
    """Plan and execute maintenance for one table.

    ``plan()`` is pure (inspects HEAD, returns jobs); ``run_once()``
    plans then executes one cycle; ``start(interval_s)`` runs cycles
    on a daemon thread until ``stop()``.
    """

    def __init__(
        self,
        table: CatalogTable,
        policy: MaintenancePolicy | None = None,
    ) -> None:
        self.table = table
        self.policy = policy or MaintenancePolicy()
        self.cycles = 0
        self.last_report: MaintenanceReport | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- planning -------------------------------------------------------
    def plan(self) -> list[MaintenanceJob]:
        policy = self.policy
        head = self.table.current_snapshot()
        jobs: list[MaintenanceJob] = []

        if policy.retention_filter is not None:
            # manifest-level pruning decides the candidate set: in the
            # steady state (all expired rows already deleted) no file
            # can match and no job is planned
            matchable = [
                f
                for f in head.files
                if f.live_rows and f.might_match(policy.retention_filter)
            ]
            if matchable:
                jobs.append(
                    MaintenanceJob(
                        kind="retention",
                        file_ids=tuple(f.file_id for f in matchable),
                        reason=(
                            f"{len(matchable)} files may hold rows "
                            f"matching {policy.retention_filter!r}"
                        ),
                    )
                )

        compactable = [
            f
            for f in head.files
            if f.row_count
            and f.deleted_fraction >= policy.compact_deleted_fraction
        ]
        for f in compactable:
            jobs.append(
                MaintenanceJob(
                    kind="compact",
                    file_ids=(f.file_id,),
                    reason=(
                        f"{f.deleted_count}/{f.row_count} rows deleted "
                        f"({f.deleted_fraction:.0%} >= "
                        f"{policy.compact_deleted_fraction:.0%})"
                    ),
                )
            )

        taken = {f.file_id for f in compactable}
        small = [
            f
            for f in head.files
            if f.file_id not in taken
            and f.live_rows < policy.rollup_small_file_rows
        ]
        bin_files: list[str] = []
        bin_rows = 0
        for f in small:
            bin_files.append(f.file_id)
            bin_rows += f.live_rows
            if bin_rows >= policy.rollup_target_rows:
                jobs.append(self._rollup_job(bin_files, bin_rows))
                bin_files, bin_rows = [], 0
        if len(bin_files) >= policy.rollup_min_files:
            jobs.append(self._rollup_job(bin_files, bin_rows))

        expirable = self._expirable_snapshots(head)
        if expirable:
            jobs.append(
                MaintenanceJob(
                    kind="expire",
                    snapshot_ids=tuple(s.snapshot_id for s in expirable),
                    reason=(
                        f"retention keeps {policy.keep_snapshots} "
                        f"snapshots"
                    ),
                )
            )
        return jobs

    def _rollup_job(self, file_ids: list[str], rows: int) -> MaintenanceJob:
        return MaintenanceJob(
            kind="rollup",
            file_ids=tuple(file_ids),
            reason=(
                f"{len(file_ids)} small files "
                f"({rows} live rows) below "
                f"{self.policy.rollup_small_file_rows}-row threshold"
            ),
        )

    def _expirable_snapshots(self, head: Snapshot) -> list[Snapshot]:
        policy = self.policy
        history = self.table.history()
        keep = history[-policy.keep_snapshots :] if policy.keep_snapshots else []
        retained = {s.snapshot_id for s in keep}
        retained.add(head.snapshot_id)
        pinned = self.table.pinned_snapshot_ids()
        out = []
        for snap in history:
            if snap.snapshot_id in retained or snap.snapshot_id in pinned:
                continue
            if (
                policy.snapshot_ttl_ms is not None
                and head.timestamp_ms - snap.timestamp_ms
                < policy.snapshot_ttl_ms
            ):
                continue
            out.append(snap)
        return out

    # -- execution ------------------------------------------------------
    def run_once(self) -> MaintenanceReport:
        obs_on = obs_metrics.enabled()
        t0 = time.perf_counter() if obs_on else 0.0
        with obs_trace.span("maintenance.cycle"):
            report = self._run_once_impl(obs_on)
        if obs_on:
            MAINT_CYCLES.inc()
            MAINT_CYCLE_SECONDS.observe(time.perf_counter() - t0)
        return report

    def _run_once_impl(self, obs_on: bool) -> MaintenanceReport:
        report = MaintenanceReport()
        jobs = self.plan()
        report.jobs_planned = len(jobs)
        for job in jobs:
            try:
                with obs_trace.span("maintenance.job", kind=job.kind):
                    if job.kind == "retention":
                        self._run_retention(job, report)
                    elif job.kind == "compact":
                        self._run_compact(job, report)
                    elif job.kind == "rollup":
                        self._run_rollup(job, report)
                    elif job.kind == "expire":
                        self._run_expire(job, report)
                report.jobs_run += 1
                if obs_on:
                    MAINT_JOBS_RUN.labels(kind=job.kind).inc()
            except CommitConflict as exc:
                # a foreground writer won a race against this job; the
                # next cycle re-plans from the new HEAD
                report.skipped.append(f"{job.kind}: {exc}")
                if obs_on:
                    MAINT_JOBS_SKIPPED.labels(kind=job.kind).inc()
            except Exception as exc:
                # anything else (I/O error, a file expired by another
                # process, ...) must not kill the background loop
                report.skipped.append(
                    f"{job.kind}: {type(exc).__name__}: {exc}"
                )
                if obs_on:
                    MAINT_JOBS_SKIPPED.labels(kind=job.kind).inc()
        self.cycles += 1
        self.last_report = report
        return report

    def _run_retention(
        self, job: MaintenanceJob, report: MaintenanceReport
    ) -> None:
        txn = self.table.transaction()
        try:
            deleted = txn.delete(self.policy.retention_filter)
            if deleted == 0:
                # stats said maybe, the exact evaluator said no —
                # nothing staged, so commit would be a no-op snapshot
                txn.abort()
                return
            txn.commit()
        except BaseException:
            txn.abort()  # no-op after commit()'s own conflict abort
            raise
        report.rows_deleted += deleted
        if obs_metrics.enabled():
            MAINT_ROWS_DELETED.inc(deleted)

    def _run_compact(
        self, job: MaintenanceJob, report: MaintenanceReport
    ) -> None:
        txn = self.table.transaction()
        try:
            comp = txn.compact(
                file_ids=list(job.file_ids),
                options=self.policy.writer_options,
            )
            if comp.bytes_in == 0:  # inputs vanished under a racing commit
                txn.abort()
                report.skipped.append(
                    f"compact: inputs vanished ({job.file_ids})"
                )
                return
            txn.commit()
        except BaseException:
            txn.abort()  # no-op after commit()'s own conflict abort
            raise
        report.files_compacted += len(job.file_ids)
        report.bytes_reclaimed += comp.bytes_reclaimed
        if obs_metrics.enabled():
            # a rewrite can grow a file (encoding drift); counters only
            # go up, so clamp the reclaimed delta at zero
            MAINT_BYTES_RECLAIMED.inc(max(0, comp.bytes_reclaimed))

    def _run_rollup(
        self, job: MaintenanceJob, report: MaintenanceReport
    ) -> None:
        txn = self.table.transaction()
        try:
            staged = {f.file_id for f in txn.staged_files()}
            present = [fid for fid in job.file_ids if fid in staged]
            if len(present) < self.policy.rollup_min_files:
                txn.abort()
                report.skipped.append(
                    f"rollup: inputs vanished before merge ({job.file_ids})"
                )
                return
            sources = [self.table.store.open_data(fid) for fid in present]
            try:
                new_id, target = txn.new_data_file()
                comp = merge(
                    sources, target, options=self.policy.writer_options
                )
            finally:
                for source in sources:
                    close_storage(source)
            txn.replace_files(
                removed_ids=present,
                added=[data_file_entry(target, new_id)],
                operation="rollup",
                summary={
                    "files_merged": len(sources),
                    "bytes_reclaimed": comp.bytes_reclaimed,
                },
            )
            txn.commit()
        except BaseException:
            txn.abort()  # no-op after commit()'s own conflict abort
            raise
        report.files_merged += len(sources)
        report.bytes_reclaimed += comp.bytes_reclaimed
        if obs_metrics.enabled():
            MAINT_BYTES_RECLAIMED.inc(max(0, comp.bytes_reclaimed))

    def _run_expire(
        self, job: MaintenanceJob, report: MaintenanceReport
    ) -> None:
        table = self.table
        store = table.store
        policy = self.policy
        # Read order is load-bearing. Candidates are listed first: a
        # file staged-and-committed after this listing is simply not a
        # candidate this cycle. Pins/in-flight files are read BEFORE
        # the snapshot log: a racing transaction unregisters a staged
        # file only after its commit published the snapshot, so a file
        # missing from pinned_file_ids() is guaranteed to show up in
        # the later history() read if HEAD references it.
        obs_on = obs_metrics.enabled()
        candidates = store.list_data()
        referenced: set[str] = set(table.pinned_file_ids())
        for sid in job.snapshot_ids:
            # expire_snapshot re-checks pins under the table lock, so
            # a pin registered since the plan wins the race
            if table.expire_snapshot(sid):
                report.snapshots_expired += 1
                if obs_on:
                    MAINT_SNAPSHOTS_EXPIRED.inc()
            else:
                report.skipped.append(f"expire: snapshot {sid} is pinned")
                if obs_on:
                    MAINT_GC_REFUSALS.labels(reason="pinned").inc()
        # GC: a data file also survives if any retained snapshot
        # references it
        for snap in table.history():
            referenced |= snap.file_ids()
        now_ms = time.time_ns() // 1_000_000
        for file_id in candidates:
            if file_id in referenced:
                continue
            try:
                if (
                    policy.gc_grace_ms > 0
                    and now_ms - store.data_mtime_ms(file_id)
                    < policy.gc_grace_ms
                ):
                    # possibly staged by a writer in another process,
                    # which this handle's in-flight set cannot see
                    if obs_on:
                        MAINT_GC_REFUSALS.labels(reason="grace").inc()
                    continue
                reclaimed = store.data_size(file_id)
            except (FileNotFoundError, OSError):
                continue  # already gone (aborted transaction cleanup)
            store.delete_data(file_id)
            report.bytes_reclaimed += reclaimed
            report.data_files_deleted += 1
            if obs_on:
                MAINT_BYTES_RECLAIMED.inc(reclaimed)
                MAINT_FILES_DELETED.inc(1)

    # -- background loop ------------------------------------------------
    def start(self, interval_s: float = 1.0) -> None:
        if self._thread is not None:
            raise RuntimeError("maintenance service already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                self.run_once()
                self._stop.wait(interval_s)

        self._thread = threading.Thread(
            target=loop, name="catalog-maintenance", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
