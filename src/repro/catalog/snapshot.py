"""Snapshots and manifests: the immutable unit of the table log.

A :class:`Snapshot` is a committed, immutable view of a table: an
ordered list of :class:`DataFile` entries (each an immutable Bullion
file plus the footer-derived stats the control plane plans with), a
parent pointer, a timestamp for ``as_of`` time travel, and an
operation label plus summary counters for the log.

Snapshots serialize to JSON — small, debuggable, and diffable; the
heavy metadata (page/chunk indexes, Merkle trees, deletion vectors)
stays in each file's binary footer where the paper puts it. The
manifest only ever *names* files and caches their headline stats —
including, since the expression engine, per-column [min, max] so a
``scan(where=...)`` can prune whole files without opening them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.catalog.schema_evolution import (
    CatalogMetadataError,
    FileResolution,
    TableSchema,
)
from repro.expr import (
    Expr,
    Interval,
    TriState,
    evaluate_interval,
    interval_from_stats,
)


@dataclass(frozen=True)
class ColumnStats:
    """Manifest-level [min, max] of one column across a whole file.

    ``kind`` carries what the interval evaluator needs to stay
    conservative: ``"int"`` bounds may be float64-rounded beyond 2**53,
    ``"float"`` bounds exclude NaN rows. Aggregated from the file's
    footer chunk statistics by the writer at commit time.
    """

    min_value: float
    max_value: float
    kind: str  # "int" | "float"

    def interval(self) -> Interval:
        return interval_from_stats(self.min_value, self.max_value, self.kind)

    def to_dict(self) -> dict:
        return {
            "min": self.min_value,
            "max": self.max_value,
            "kind": self.kind,
        }

    @staticmethod
    def from_dict(d: dict) -> "ColumnStats":
        return ColumnStats(
            min_value=float(d["min"]),
            max_value=float(d["max"]),
            kind=str(d["kind"]),
        )


@dataclass(frozen=True)
class DataFile:
    """One immutable member file, with its footer-derived stats."""

    file_id: str
    row_count: int
    deleted_count: int
    byte_size: int
    schema_fingerprint: int
    #: per-column file-level [min, max]; None for pre-stats manifests
    column_stats: "dict[str, ColumnStats] | None" = None
    #: schema-log id this file was written under; None for legacy
    #: manifests that predate the schema log (one frozen schema)
    schema_id: "int | None" = None

    @property
    def live_rows(self) -> int:
        return self.row_count - self.deleted_count

    @property
    def deleted_fraction(self) -> float:
        return self.deleted_count / self.row_count if self.row_count else 0.0

    def might_match(
        self, where: Expr, resolution: "FileResolution | None" = None
    ) -> bool:
        """Can any row of this file possibly satisfy ``where``?

        Conservative manifest-level answer — the first pushdown layer,
        decided without opening the file. Files without stats (older
        manifests, statistics-free writers, stats-less columns) always
        report True.
        """
        return self.classify(where, resolution) is not TriState.NEVER

    def classify(
        self, where: Expr, resolution: "FileResolution | None" = None
    ) -> TriState:
        """Tri-state manifest verdict for ``where`` over this file.

        ``NEVER`` — provably no matching row (the file is prunable);
        ``ALWAYS`` — provably every row matches, which lets the query
        engine answer counts and extrema from the manifest alone;
        ``MAYBE`` — open the file and let finer layers decide. Files
        without statistics are always ``MAYBE``.

        ``where`` speaks current-schema names; when the file was
        written under an older schema version, ``resolution`` remaps
        each reference to the stored column's stats — a column the
        file never stored gets no interval, which the evaluator treats
        as ``MAYBE`` (evolution can never prune wrongly).
        """
        if resolution is not None:
            intervals = {
                name: resolution.interval_for(name, self.column_stats)
                for name in where.columns()
            }
            return evaluate_interval(where, intervals)
        if self.column_stats is None:
            return TriState.MAYBE
        intervals = {
            name: stats.interval()
            for name, stats in self.column_stats.items()
        }
        return evaluate_interval(where, intervals)

    def to_dict(self) -> dict:
        doc = {
            "file_id": self.file_id,
            "row_count": self.row_count,
            "deleted_count": self.deleted_count,
            "byte_size": self.byte_size,
            "schema_fingerprint": self.schema_fingerprint,
        }
        if self.column_stats is not None:
            doc["column_stats"] = {
                name: stats.to_dict()
                for name, stats in sorted(self.column_stats.items())
            }
        if self.schema_id is not None:
            doc["schema_id"] = self.schema_id
        return doc

    @staticmethod
    def from_dict(d: dict) -> "DataFile":
        raw_stats = d.get("column_stats")
        raw_schema_id = d.get("schema_id")
        return DataFile(
            file_id=d["file_id"],
            row_count=int(d["row_count"]),
            deleted_count=int(d["deleted_count"]),
            byte_size=int(d["byte_size"]),
            schema_fingerprint=int(d["schema_fingerprint"]),
            column_stats=(
                None
                if raw_stats is None
                else {
                    name: ColumnStats.from_dict(s)
                    for name, s in raw_stats.items()
                }
            ),
            schema_id=(
                None if raw_schema_id is None else int(raw_schema_id)
            ),
        )


@dataclass(frozen=True)
class Snapshot:
    """One committed table version (a node of the snapshot log)."""

    snapshot_id: int
    parent_id: int | None
    timestamp_ms: int
    operation: str
    files: tuple[DataFile, ...] = ()
    summary: dict = field(default_factory=dict)
    #: schema log: every schema version the files reference, plus the
    #: current one. Empty for legacy (pre-evolution) snapshots, whose
    #: files all share one frozen fingerprint.
    schemas: tuple[TableSchema, ...] = ()
    current_schema_id: "int | None" = None

    # -- aggregates -----------------------------------------------------
    @property
    def total_rows(self) -> int:
        return sum(f.row_count for f in self.files)

    @property
    def live_rows(self) -> int:
        return sum(f.live_rows for f in self.files)

    @property
    def total_bytes(self) -> int:
        return sum(f.byte_size for f in self.files)

    def file_ids(self) -> set[str]:
        return {f.file_id for f in self.files}

    # -- serialization --------------------------------------------------
    def to_json(self) -> bytes:
        doc = {
            "snapshot_id": self.snapshot_id,
            "parent_id": self.parent_id,
            "timestamp_ms": self.timestamp_ms,
            "operation": self.operation,
            "files": [f.to_dict() for f in self.files],
            "summary": self.summary,
        }
        # emitted only when the table has evolved: legacy tables keep
        # writing (and re-reading) byte-identical manifests
        if self.schemas:
            doc["schemas"] = [s.to_dict() for s in self.schemas]
        if self.current_schema_id is not None:
            doc["current_schema_id"] = self.current_schema_id
        return json.dumps(doc, indent=1, sort_keys=True).encode()

    @staticmethod
    def from_json(data: bytes) -> "Snapshot":
        """Parse one snapshot manifest.

        Any malformation — bad JSON, missing keys, corrupt schema-log
        entries — surfaces as :class:`CatalogMetadataError`, never a
        bare ``KeyError``/``TypeError``: manifest bytes come from
        storage and may be truncated or damaged.
        """
        try:
            doc = json.loads(data)
        except (ValueError, UnicodeDecodeError) as exc:
            raise CatalogMetadataError(
                f"snapshot manifest is not valid JSON: {exc}"
            ) from exc
        try:
            snapshot = Snapshot(
                snapshot_id=int(doc["snapshot_id"]),
                parent_id=(
                    None
                    if doc["parent_id"] is None
                    else int(doc["parent_id"])
                ),
                timestamp_ms=int(doc["timestamp_ms"]),
                operation=doc["operation"],
                files=tuple(DataFile.from_dict(d) for d in doc["files"]),
                summary=dict(doc.get("summary", {})),
                schemas=tuple(
                    TableSchema.from_dict(s)
                    for s in doc.get("schemas", ())
                ),
                current_schema_id=(
                    None
                    if doc.get("current_schema_id") is None
                    else int(doc["current_schema_id"])
                ),
            )
        except CatalogMetadataError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CatalogMetadataError(
                f"malformed snapshot manifest: {exc!r}"
            ) from exc
        return snapshot


def snapshot_name(snapshot_id: int) -> str:
    """Metadata object name for a snapshot id (sortable, fixed width)."""
    return f"snap-{snapshot_id:010d}.json"


def parse_snapshot_name(name: str) -> int | None:
    """Inverse of :func:`snapshot_name`; None for foreign objects."""
    if not (name.startswith("snap-") and name.endswith(".json")):
        return None
    digits = name[len("snap-") : -len(".json")]
    return int(digits) if digits.isdigit() else None
