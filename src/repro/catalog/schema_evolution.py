"""Schema evolution: a per-snapshot schema log and a per-file resolver.

Real feature-store tables do not keep one frozen schema: columns are
added, dropped, renamed and widened across a table's life, and every
historical snapshot must keep replaying correctly under time travel.
This module gives the catalog that vocabulary:

* a :class:`TableSchema` is one committed schema version — an ordered
  list of physical columns, each carrying a **stable field id** that
  survives renames (resolution is by field id, never by name, so a
  renamed column still finds its bytes in old files);
* evolution operations (:class:`AddColumn`, :class:`DropColumn`,
  :class:`RenameColumn`, :class:`WidenColumn`) derive the next
  :class:`TableSchema` from the current one, each application a
  committed evolution entry in the snapshot's **schema log**;
* every manifest :class:`~repro.catalog.DataFile` names the schema it
  was written under (``schema_id``); the snapshot carries the schemas
  its files reference plus the current one;
* a :class:`FileResolution` maps the *current* schema onto one file's
  *stored* schema, and :class:`ResolvedReader` wraps a plain
  :class:`~repro.core.reader.BullionReader` so scans, aggregation and
  training loaders see every file as if it already held the current
  schema:

  - **absent** columns (added after the file was written, or whose
    field was dropped from the file's version) materialize as typed
    nulls — NaN for floats (skipped by aggregates, exactly the
    engine's null semantics), ``0``/``False``/``b""``/``[]`` for
    ints/bools/bytes/lists;
  - **narrower** stored values widen at decode, reusing the §2.4
    quantization widening machinery (FP16/BF16/FP8 dequantize to
    float32 first, then cast to the current storage dtype);
  - **renamed** columns resolve through the field id;
  - manifest and footer statistics are remapped the same way, and a
    column absent from a file always evaluates conservatively
    (``MAYBE``) at the interval layers — evolution can never make
    pushdown prune wrongly.

Filtering over widened columns is always evaluated in the *current*
widened domain (never pushed down into the narrower stored domain),
so a float32 file widened to float64 filters bit-identically to a
native float64 file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reader import ScanStats
from repro.core.schema import (
    PhysicalColumn,
    PhysicalType,
    Primitive,
    STORAGE_DTYPES,
    _PRIMITIVE_BY_NAME,
    stats_kind,
)
from repro.expr import (
    And,
    Comparison,
    Expr,
    In,
    Not,
    Or,
    TriState,
    evaluate as evaluate_expr,
    evaluate_interval,
    interval_from_stats,
)
from repro.util.hashing import hash64


class CatalogMetadataError(ValueError):
    """Malformed catalog metadata (snapshot JSON, schema log)."""


class SchemaLogError(CatalogMetadataError):
    """Corrupt schema-log entry, dangling schema id, or illegal
    evolution operation."""


# ---------------------------------------------------------------------------
# widening lattice
# ---------------------------------------------------------------------------

#: rank within the int widening chain int8 -> int16 -> int32 -> int64
_INT_RANK = {
    Primitive.INT8: 1,
    Primitive.INT16: 2,
    Primitive.INT32: 3,
    Primitive.INT64: 4,
}
#: rank within the float widening chain fp8 -> f16/bf16 -> f32 -> f64;
#: every step is value-preserving (each narrower format embeds exactly
#: into the next — the same property §2.4 widening relies on)
_FLOAT_RANK = {
    Primitive.FLOAT8_E4M3: 1,
    Primitive.FLOAT8_E5M2: 1,
    Primitive.FLOAT16: 2,
    Primitive.BFLOAT16: 2,
    Primitive.FLOAT32: 3,
    Primitive.FLOAT64: 4,
}

_QUANTIZED_PRIMS = frozenset(
    {
        Primitive.FLOAT16,
        Primitive.BFLOAT16,
        Primitive.FLOAT8_E4M3,
        Primitive.FLOAT8_E5M2,
    }
)


def can_widen(src: PhysicalType, dst: PhysicalType) -> bool:
    """True iff ``src -> dst`` is a legal (value-preserving) widening."""
    if src.list_depth != dst.list_depth:
        return False
    for rank in (_INT_RANK, _FLOAT_RANK):
        if src.primitive in rank and dst.primitive in rank:
            return rank[dst.primitive] > rank[src.primitive]
    return False


def parse_physical_type(text: str) -> PhysicalType:
    """Parse a physical type string (``int64``, ``list<float>``, ...)."""
    s = str(text).strip()
    depth = 0
    while s.startswith("list<") and s.endswith(">"):
        depth += 1
        s = s[5:-1].strip()
    prim = _PRIMITIVE_BY_NAME.get(s)
    if prim is None or depth > 2:
        raise SchemaLogError(f"cannot parse physical type {text!r}")
    return PhysicalType(prim, depth)


# ---------------------------------------------------------------------------
# committed schemas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SchemaColumn:
    """One physical column of a committed schema version.

    ``field_id`` is the stable identity: assigned once when the column
    is added, preserved across renames and widenings, never reused
    after a drop — so an old file's bytes can always be matched to the
    current schema (or proven absent) by id alone.
    """

    field_id: int
    name: str
    type: PhysicalType

    def to_dict(self) -> dict:
        return {"id": self.field_id, "name": self.name, "type": str(self.type)}

    @staticmethod
    def from_dict(d: dict) -> "SchemaColumn":
        try:
            field_id = int(d["id"])
            name = d["name"]
            type_text = d["type"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaLogError(f"malformed schema column {d!r}") from exc
        if not isinstance(name, str) or not name:
            raise SchemaLogError(f"malformed schema column name {name!r}")
        return SchemaColumn(field_id, name, parse_physical_type(type_text))


@dataclass(frozen=True)
class TableSchema:
    """One committed schema version: ordered columns + an id."""

    schema_id: int
    columns: tuple[SchemaColumn, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaLogError(f"duplicate column names in schema: {names}")
        ids = [c.field_id for c in self.columns]
        if len(set(ids)) != len(ids):
            raise SchemaLogError(f"duplicate field ids in schema: {ids}")

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> SchemaColumn:
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(name)

    def maybe_column(self, name: str) -> "SchemaColumn | None":
        for c in self.columns:
            if c.name == name:
                return c
        return None

    def by_field_id(self) -> dict[int, SchemaColumn]:
        return {c.field_id: c for c in self.columns}

    def max_field_id(self) -> int:
        return max((c.field_id for c in self.columns), default=0)

    def fingerprint(self) -> int:
        """Same formula as :meth:`FooterView.schema_fingerprint`, so a
        file's physical layout can be checked against a schema version
        without opening the file."""
        desc = ";".join(f"{c.name}:{c.type}" for c in self.columns)
        return hash64(desc)

    def physical_columns(self) -> list[PhysicalColumn]:
        return [PhysicalColumn(c.name, c.type, c.name) for c in self.columns]

    def write_schema(self):
        """A writer-facing :class:`~repro.core.schema.Schema` with this
        version's exact physical layout (so appends under an evolved
        schema don't depend on dtype inference)."""
        from repro.core.schema import Field, LogicalType, Schema

        fields = []
        for c in self.columns:
            lt = LogicalType.of(c.type.primitive)
            for _ in range(c.type.list_depth):
                lt = LogicalType.list_(lt)
            fields.append(Field(c.name, lt))
        return Schema(fields)

    def to_dict(self) -> dict:
        return {
            "schema_id": self.schema_id,
            "columns": [c.to_dict() for c in self.columns],
        }

    @staticmethod
    def from_dict(d: dict) -> "TableSchema":
        try:
            schema_id = int(d["schema_id"])
            raw_columns = d["columns"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaLogError(f"malformed schema entry: {exc}") from exc
        if not isinstance(raw_columns, (list, tuple)) or not raw_columns:
            raise SchemaLogError(
                f"schema {schema_id} has no columns (or a malformed list)"
            )
        return TableSchema(
            schema_id=schema_id,
            columns=tuple(SchemaColumn.from_dict(c) for c in raw_columns),
        )


def schema_from_footer(footer, schema_id: int = 0) -> TableSchema:
    """Bootstrap a :class:`TableSchema` from a file's physical layout
    (field ids assigned 1..n in column order)."""
    return TableSchema(
        schema_id=schema_id,
        columns=tuple(
            SchemaColumn(i + 1, c.name, c.type)
            for i, c in enumerate(footer.physical_columns())
        ),
    )


# ---------------------------------------------------------------------------
# evolution operations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AddColumn:
    """Add a new column; existing files materialize it as typed nulls."""

    name: str
    type: str | PhysicalType


@dataclass(frozen=True)
class DropColumn:
    """Drop a column; its field id is retired, never reused."""

    name: str


@dataclass(frozen=True)
class RenameColumn:
    """Rename a column; old files resolve through the field id."""

    old: str
    new: str


@dataclass(frozen=True)
class WidenColumn:
    """Widen a column within its kind (int8→…→int64, fp8→…→double)."""

    name: str
    type: str | PhysicalType


EvolutionOp = AddColumn | DropColumn | RenameColumn | WidenColumn


def _as_ptype(t: str | PhysicalType) -> PhysicalType:
    return t if isinstance(t, PhysicalType) else parse_physical_type(t)


def apply_ops(
    current: TableSchema,
    ops,
    *,
    new_schema_id: int,
    next_field_id: int,
) -> TableSchema:
    """Apply evolution ops to ``current``, yielding the next version.

    ``next_field_id`` must be strictly greater than every field id any
    schema in the log has ever used (dropped ids are never reused — a
    reused id would resurrect a dropped column's bytes in old files).
    Raises :class:`SchemaLogError` on any illegal operation.
    """
    columns = list(current.columns)
    fid = next_field_id

    def index_of(name: str) -> int:
        for i, c in enumerate(columns):
            if c.name == name:
                return i
        raise SchemaLogError(f"no column {name!r} in current schema")

    for op in ops:
        if isinstance(op, AddColumn):
            if any(c.name == op.name for c in columns):
                raise SchemaLogError(f"column {op.name!r} already exists")
            columns.append(SchemaColumn(fid, op.name, _as_ptype(op.type)))
            fid += 1
        elif isinstance(op, DropColumn):
            i = index_of(op.name)
            del columns[i]
            if not columns:
                raise SchemaLogError("cannot drop the last column")
        elif isinstance(op, RenameColumn):
            i = index_of(op.old)
            if any(c.name == op.new for c in columns):
                raise SchemaLogError(f"column {op.new!r} already exists")
            columns[i] = SchemaColumn(
                columns[i].field_id, op.new, columns[i].type
            )
        elif isinstance(op, WidenColumn):
            i = index_of(op.name)
            target = _as_ptype(op.type)
            if not can_widen(columns[i].type, target):
                raise SchemaLogError(
                    f"cannot widen {op.name!r} from {columns[i].type} "
                    f"to {target}"
                )
            columns[i] = SchemaColumn(columns[i].field_id, op.name, target)
        else:
            raise SchemaLogError(f"unknown evolution op {op!r}")
    return TableSchema(schema_id=new_schema_id, columns=tuple(columns))


# ---------------------------------------------------------------------------
# the per-snapshot schema log and per-file resolution
# ---------------------------------------------------------------------------

class SchemaLog:
    """The schemas one snapshot carries, plus which one is current.

    ``current_id is None`` means a legacy (pre-evolution) snapshot:
    every file shares one frozen fingerprint and resolution is always
    the identity.
    """

    def __init__(
        self, schemas: dict[int, TableSchema], current_id: int | None
    ) -> None:
        self.schemas = schemas
        self.current_id = current_id
        if current_id is not None and current_id not in schemas:
            raise SchemaLogError(
                f"current_schema_id {current_id} is not in the schema log "
                f"(ids: {sorted(schemas)})"
            )

    @staticmethod
    def from_snapshot(snapshot) -> "SchemaLog":
        schemas = {s.schema_id: s for s in snapshot.schemas}
        log = SchemaLog(schemas, snapshot.current_schema_id)
        for f in snapshot.files:
            if f.schema_id is not None and f.schema_id not in schemas:
                raise SchemaLogError(
                    f"file {f.file_id!r} references schema {f.schema_id} "
                    f"which is not in the snapshot's schema log"
                )
        return log

    def current(self) -> TableSchema | None:
        if self.current_id is None:
            return None
        return self.schemas[self.current_id]

    def schema_for(self, schema_id: int) -> TableSchema:
        schema = self.schemas.get(schema_id)
        if schema is None:
            raise SchemaLogError(
                f"dangling schema id {schema_id} (log holds "
                f"{sorted(self.schemas)})"
            )
        return schema

    def resolution(self, data_file) -> "FileResolution | None":
        """The resolution one file needs, or None for identity.

        Files with no ``schema_id`` (legacy manifests) and files
        already at the current schema read as-is.
        """
        current = self.current()
        if current is None or data_file.schema_id is None:
            return None
        if data_file.schema_id == self.current_id:
            return None
        file_schema = self.schema_for(data_file.schema_id)
        if file_schema.columns == current.columns:
            return None
        return FileResolution(file_schema, current)

    def is_homogeneous(self, files) -> bool:
        """True iff no file of ``files`` needs resolution."""
        return all(self.resolution(f) is None for f in files)


class FileResolution:
    """Maps the current schema onto one file's stored schema.

    For every current column name: the stored :class:`SchemaColumn`
    holding its bytes (possibly under an old name or a narrower type),
    or ``None`` when the file predates the column (or its field was
    dropped from the file's version and later re-added).
    """

    def __init__(self, file_schema: TableSchema, current: TableSchema):
        self.file_schema = file_schema
        self.current = current
        stored_by_id = file_schema.by_field_id()
        #: current name -> stored SchemaColumn | None
        self._stored: dict[str, SchemaColumn | None] = {
            c.name: stored_by_id.get(c.field_id) for c in current.columns
        }

    def current_column(self, name: str) -> SchemaColumn:
        """Raises KeyError for names outside the current schema — the
        same "typo'd column" contract as ``footer.find_column``."""
        return self.current.column(name)

    def stored_column(self, name: str) -> SchemaColumn | None:
        """Stored column for a current name; None when absent from the
        file. Raises KeyError for unknown current names."""
        if name not in self._stored:
            raise KeyError(name)
        return self._stored[name]

    def stored_name(self, name: str) -> str | None:
        stored = self.stored_column(name)
        return None if stored is None else stored.name

    def stats_of(self, column_stats):
        """A manifest-stats lookup remapped through this resolution:
        ``stats_of(current_name) -> (min, max, kind) | None``.

        Stored statistics stay valid under widening (int bounds are
        value-domain, float bounds are exact stored values, quantized
        stats are already collected in the widened float domain);
        absent columns report no stats, so every interval layer stays
        conservative."""

        def stats_of(name: str):
            stored = self._stored.get(name)
            if stored is None or column_stats is None:
                return None
            stats = column_stats.get(stored.name)
            if stats is None:
                return None
            return (stats.min_value, stats.max_value, stats.kind)

        return stats_of

    def interval_for(self, name: str, column_stats):
        """Interval of one current column from stored manifest stats
        (None — conservative MAYBE — when absent or stats-free)."""
        stats = self.stats_of(column_stats)(name)
        if stats is None:
            return None
        return interval_from_stats(*stats)


# ---------------------------------------------------------------------------
# value-level machinery: typed nulls, widening, expression renaming
# ---------------------------------------------------------------------------

def fill_values(ptype: PhysicalType, n: int, widen_quantized: bool):
    """The typed-null column an absent field materializes as.

    Floats (quantized included) fill with NaN — the engine's null:
    NaN rows are skipped by every aggregate and excluded from float
    statistics. Ints fill with 0, bools with False, bytes with
    ``b""``, lists with empty lists; those kinds carry no null
    sentinel, so the fill *is* the column's value.
    """
    prim = ptype.primitive
    if ptype.list_depth > 0:
        if prim in (Primitive.STRING, Primitive.BINARY):
            return [[] for _ in range(n)]
        inner = STORAGE_DTYPES.get(prim, np.int64)
        return [np.zeros(0, dtype=inner) for _ in range(n)]
    if prim in (Primitive.STRING, Primitive.BINARY):
        return [b""] * n
    if prim is Primitive.BOOL:
        return np.zeros(n, dtype=np.bool_)
    if prim in _INT_RANK:
        return np.zeros(n, dtype=STORAGE_DTYPES[prim])
    # float kinds: NaN in the representation the caller would get from
    # a file that stored the column (payload bits when not widening)
    if widen_quantized and prim in _QUANTIZED_PRIMS:
        return np.full(n, np.nan, dtype=np.float32)
    if prim in (Primitive.BFLOAT16, Primitive.FLOAT8_E4M3,
                Primitive.FLOAT8_E5M2):
        from repro.quantization import FloatFormat, quantize

        fmt = {
            Primitive.BFLOAT16: FloatFormat.BF16,
            Primitive.FLOAT8_E4M3: FloatFormat.FP8_E4M3,
            Primitive.FLOAT8_E5M2: FloatFormat.FP8_E5M2,
        }[prim]
        return quantize(np.full(n, np.nan, dtype=np.float32), fmt)
    return np.full(n, np.nan, dtype=STORAGE_DTYPES[prim])


def widen_values(values, stored: PhysicalType, target: PhysicalType):
    """Widen decoded storage values from ``stored`` to ``target``.

    Reuses the §2.4 quantization widening for FP16/BF16/FP8 sources
    (dequantize to float32), then casts to the target storage dtype.
    Every legal widening is value-preserving, so this is exact.
    """
    if stored == target:
        return values
    if stored.list_depth > 0:
        dtype = STORAGE_DTYPES[target.primitive]
        return [np.asarray(v).astype(dtype) for v in values]
    if stored.primitive in _QUANTIZED_PRIMS:
        from repro.core.reader import _widen_quantized

        values = _widen_quantized(values, stored)
    arr = np.asarray(values)
    if target.primitive in _QUANTIZED_PRIMS:
        # payload-bit targets (bf16/fp8 store uint payloads; fp16 its
        # own dtype): re-quantize — exact, since the widening lattice
        # guarantees every source value is representable in the target
        from repro.quantization import FloatFormat, quantize

        fmt = {
            Primitive.FLOAT16: FloatFormat.FP16,
            Primitive.BFLOAT16: FloatFormat.BF16,
            Primitive.FLOAT8_E4M3: FloatFormat.FP8_E4M3,
            Primitive.FLOAT8_E5M2: FloatFormat.FP8_E5M2,
        }[target.primitive]
        return quantize(arr.astype(np.float32, copy=False), fmt)
    target_dtype = STORAGE_DTYPES[target.primitive]
    if arr.dtype != target_dtype:
        arr = arr.astype(target_dtype)
    return arr


def eval_repr(values, ptype: PhysicalType):
    """A column's exact-filter representation (quantized -> float32),
    matching what ``Scan`` feeds the vector evaluator."""
    from repro.core.reader import _widen_quantized

    return _widen_quantized(values, ptype)


def rename_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite an expression's column references through ``mapping``."""
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, mapping.get(expr.column, expr.column), expr.value
        )
    if isinstance(expr, In):
        return In(mapping.get(expr.column, expr.column), expr.values)
    if isinstance(expr, And):
        return And(tuple(rename_expr(a, mapping) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(rename_expr(a, mapping) for a in expr.args))
    if isinstance(expr, Not):
        return Not(rename_expr(expr.arg, mapping))
    raise SchemaLogError(f"cannot rename columns of {expr!r}")


# ---------------------------------------------------------------------------
# the resolved reader: one old-schema file, read as the current schema
# ---------------------------------------------------------------------------

class _ResolvedFooter:
    """Footer facade in current-schema coordinates.

    ``find_column``/``column_type`` speak current names and types;
    ``chunk_stats`` remaps to the stored column (None when absent, so
    the query engine's metadata paths fall back instead of lying).
    Row-group geometry and deletion state pass straight through.
    """

    def __init__(self, inner, resolution: FileResolution) -> None:
        self._inner = inner
        self._res = resolution
        self._columns = resolution.current.columns

    # -- geometry (pass-through) ---------------------------------------
    @property
    def num_rows(self) -> int:
        return self._inner.num_rows

    @property
    def num_row_groups(self) -> int:
        return self._inner.num_row_groups

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def row_group(self, rg: int):
        return self._inner.row_group(rg)

    def deleted_count(self) -> int:
        return self._inner.deleted_count()

    def deletion_bitmap(self):
        return self._inner.deletion_bitmap()

    # -- columns in current coordinates --------------------------------
    def find_column(self, name: str) -> int:
        for i, c in enumerate(self._columns):
            if c.name == name:
                return i
        raise KeyError(f"no column {name!r}")

    def column_type(self, col_idx: int) -> PhysicalType:
        return self._columns[col_idx].type

    def physical_columns(self) -> list[PhysicalColumn]:
        return self._res.current.physical_columns()

    def schema_fingerprint(self) -> int:
        return self._res.current.fingerprint()

    def chunk_stats(self, col_idx: int, rg: int):
        stored = self._res.stored_column(self._columns[col_idx].name)
        if stored is None:
            return None
        return self._inner.chunk_stats(
            self._inner.find_column(stored.name), rg
        )

    def column_stats_range(self, col_idx: int):
        stored = self._res.stored_column(self._columns[col_idx].name)
        if stored is None:
            return None
        return self._inner.column_stats_range(
            self._inner.find_column(stored.name)
        )


class _ResolvedScan:
    """Iterable of resolved batches; quacks like :class:`Scan` where
    the read paths need it (iteration + ``to_table()``)."""

    def __init__(self, batches, empty_table) -> None:
        self._batches = batches
        self._empty = empty_table

    def __iter__(self):
        return iter(self._batches)

    def to_table(self):
        from repro.core.table import concat_tables

        tables = list(self._batches)
        if not tables:
            return self._empty()
        return concat_tables(tables)


class ResolvedReader:
    """A :class:`BullionReader` facade that reads one old-schema file
    as if it held the snapshot's current schema.

    Implements the reader surface the scan, query and loader paths
    use: ``footer`` (current coordinates), ``scan``,
    ``classify_row_groups_expr``, ``num_rows``/``live_rows``.
    """

    def __init__(self, reader, resolution: FileResolution) -> None:
        self._reader = reader
        self._res = resolution
        self.footer = _ResolvedFooter(reader.footer, resolution)

    # -- metadata -------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._reader.num_rows

    @property
    def live_rows(self) -> int:
        return self._reader.live_rows

    @property
    def chunk_cache(self):
        return self._reader.chunk_cache

    def schema_fingerprint(self) -> int:
        return self._res.current.fingerprint()

    def column_names(self) -> list[str]:
        return self._res.current.names()

    # -- pushdown (current coordinates, conservative) -------------------
    def classify_row_groups_expr(self, where: Expr) -> list[TriState]:
        """Zone-map verdicts with absent columns forced to MAYBE."""
        inner = self._reader.footer
        specs = []
        for name in sorted(where.columns()):
            cur = self._res.current_column(name)  # KeyError contract
            stored = self._res.stored_column(name)
            if stored is None or stats_kind(cur.type) is None:
                specs.append((name, None, None))
            else:
                specs.append(
                    (name, inner.find_column(stored.name),
                     stats_kind(stored.type))
                )
        verdicts = []
        for g in range(inner.num_row_groups):
            intervals = {}
            for name, col_idx, kind in specs:
                stats = (
                    inner.chunk_stats(col_idx, g)
                    if col_idx is not None
                    else None
                )
                if stats is None or kind is None:
                    intervals[name] = None
                else:
                    intervals[name] = interval_from_stats(
                        stats.min_value, stats.max_value, kind
                    )
            verdicts.append(evaluate_interval(where, intervals))
        return verdicts

    def prune_row_groups_expr(self, where: Expr) -> list[int]:
        return [
            g
            for g, verdict in enumerate(self.classify_row_groups_expr(where))
            if verdict is not TriState.NEVER
        ]

    # -- scanning -------------------------------------------------------
    def scan(
        self,
        columns: list[str],
        *,
        where: Expr | None = None,
        row_groups: list[int] | None = None,
        batch_size: int | None = None,
        drop_deleted: bool = True,
        widen_quantized: bool = False,
        max_workers: int = 4,
        prefetch_groups: int = 2,
        scan_stats=None,
        predicate=None,
    ) -> _ResolvedScan:
        if predicate is not None:
            raise ValueError(
                "legacy predicate= is not supported on evolved snapshots; "
                "pass where= instead"
            )
        res = self._res
        # resolve the projection in current coordinates (KeyError fast)
        specs = [(name, res.stored_column(name)) for name in columns]
        where_specs = (
            [(name, res.stored_column(name)) for name in sorted(where.columns())]
            if where is not None
            else []
        )
        for name, _stored in where_specs:
            if res.current_column(name).type.list_depth > 0:
                raise ValueError(f"cannot filter on list column {name!r}")

        def empty_table():
            from repro.core.table import Table

            return Table({
                name: fill_values(
                    res.current_column(name).type, 0, widen_quantized
                )
                for name in columns
            })

        batches = self._scan_batches(
            specs,
            where,
            where_specs,
            row_groups,
            drop_deleted,
            widen_quantized,
            max_workers,
            prefetch_groups,
            scan_stats,
        )
        if batch_size is not None:
            from repro.core.dataset import rebatch

            batches = rebatch(batches, batch_size)
        return _ResolvedScan(batches, empty_table)

    def _scan_batches(
        self,
        specs,
        where,
        where_specs,
        row_groups,
        drop_deleted,
        widen_quantized,
        max_workers,
        prefetch_groups,
        scan_stats,
    ):
        from repro.core.table import Table

        reader = self._reader
        res = self._res
        footer = reader.footer
        groups = (
            list(range(footer.num_row_groups))
            if row_groups is None
            else list(row_groups)
        )
        if where is not None:
            # conservative zone-map pruning in current coordinates; the
            # exact filter below always evaluates in the current
            # (widened) domain, never the narrower stored one
            verdicts = self.classify_row_groups_expr(where)
            kept = [g for g in groups if verdicts[g] is not TriState.NEVER]
            if scan_stats is not None:
                pruned = [g for g in groups if g not in set(kept)]
                scan_stats.bump(
                    groups_pruned=len(pruned),
                    rows_pruned=sum(
                        footer.row_group(g).n_rows for g in pruned
                    ),
                )
            groups = kept
        if scan_stats is not None:
            scan_stats.bump(files_scanned=1, groups_total=len(groups))

        # stored columns the inner scan must decode: projected present
        # columns plus present filter columns
        inner_names: list[str] = []
        for _name, stored in specs + where_specs:
            if stored is not None and stored.name not in inner_names:
                inner_names.append(stored.name)
        deleted = (
            footer.deletion_bitmap()
            if drop_deleted and footer.deleted_count()
            else None
        )

        for g in groups:
            rg = footer.row_group(g)
            if inner_names:
                # widen_quantized=False: widening to the *current* type
                # happens below, per column (the inner scan gets an
                # unmirrored throwaway ScanStats — this layer reports
                # files and groups itself, so letting the inner scan
                # publish too would double-count both per-call and in
                # the registry)
                raw = reader.scan(
                    inner_names,
                    row_groups=[g],
                    drop_deleted=False,
                    widen_quantized=False,
                    max_workers=max_workers,
                    prefetch_groups=prefetch_groups,
                    scan_stats=ScanStats.unmirrored(),
                ).to_table()
                n = raw.num_rows
            else:
                raw = None
                n = rg.n_rows
            if scan_stats is not None:
                scan_stats.bump(groups_scanned=1, rows_scanned=n)

            def current_values(name, stored, widen):
                if stored is None:
                    return fill_values(
                        res.current_column(name).type, n, widen
                    )
                cur_type = res.current_column(name).type
                values = widen_values(
                    raw.column(stored.name), stored.type, cur_type
                )
                if widen:
                    values = eval_repr(values, cur_type)
                return values

            mask = None
            if where is not None:
                eval_values = {
                    name: eval_repr(
                        current_values(name, stored, False),
                        res.current_column(name).type,
                    )
                    for name, stored in where_specs
                }
                mask = evaluate_expr(where, eval_values)
            if deleted is not None:
                live = ~deleted[rg.row_start : rg.row_start + rg.n_rows]
                mask = live if mask is None else (mask & live)
            if mask is not None and not mask.any():
                continue
            out = {
                name: current_values(name, stored, widen_quantized)
                for name, stored in specs
            }
            table = Table(out)
            if mask is not None and table.num_columns:
                table = table.take_mask(mask)
            if scan_stats is not None:
                scan_stats.bump(rows_matched=table.num_rows)
            if table.num_rows:
                yield table

    def project(
        self,
        columns: list[str],
        drop_deleted: bool = True,
        row_groups: list[int] | None = None,
        widen_quantized: bool = False,
    ):
        return self.scan(
            columns,
            row_groups=row_groups,
            drop_deleted=drop_deleted,
            widen_quantized=widen_quantized,
            max_workers=0,
        ).to_table()
