"""Where a catalog table lives: metadata CAS + data-file storage.

A :class:`CatalogStore` holds the two halves of a table:

* **metadata objects** — small immutable JSON snapshots, written with
  *put-if-absent* semantics. ``put_metadata`` is the commit primitive:
  exactly one of N racing committers wins a given snapshot name, the
  rest observe the moved HEAD and retry. This is the "atomic rename"
  commit protocol of Iceberg's Hadoop catalog / Delta's log store,
  reduced to its essential CAS.
* **data files** — immutable Bullion files, created through the
  streaming writer and opened through :class:`~repro.iosim.Storage`,
  so every existing read/write path works unchanged.

Two interchangeable implementations:

``MemoryCatalogStore``      dict-backed, for tests and simulation; the
                            CAS is a lock-guarded put-if-absent
``DirectoryCatalogStore``   a local directory; the CAS is write-to-temp
                            then ``os.link`` (atomic, fails with EEXIST
                            when another committer won the name)
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Protocol, runtime_checkable

from repro.iosim import FileStorage, SimulatedStorage, Storage


def _fsync_dir(path: str) -> None:
    """Flush a directory's entries to disk, where the platform allows."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass  # directory fsync is not universally supported
    finally:
        os.close(fd)


@runtime_checkable
class CatalogStore(Protocol):
    """Metadata CAS + data-file surface shared by all stores."""

    def put_metadata(self, name: str, data: bytes) -> bool: ...

    def read_metadata(self, name: str) -> bytes: ...

    def list_metadata(self) -> list[str]: ...

    def delete_metadata(self, name: str) -> None: ...

    def new_file_id(self) -> str: ...

    def create_data(self, file_id: str) -> Storage: ...

    def open_data(self, file_id: str) -> Storage: ...

    def data_size(self, file_id: str) -> int: ...

    def data_mtime_ms(self, file_id: str) -> int: ...

    def sync_data(self) -> None: ...

    def delete_data(self, file_id: str) -> None: ...

    def list_data(self) -> list[str]: ...


class MemoryCatalogStore:
    """In-memory store: dicts behind one lock.

    ``put_metadata`` is put-if-absent under the lock — the same
    winner-takes-the-name semantics as the directory store's
    ``os.link``, so concurrency tests exercise the real commit race.
    Data files are :class:`SimulatedStorage` objects; deleting one from
    the store does not invalidate readers already holding it, matching
    POSIX unlink-while-open behaviour.
    """

    def __init__(self, name: str = "catalog") -> None:
        self.name = name
        self._meta: dict[str, bytes] = {}
        self._data: dict[str, SimulatedStorage] = {}
        self._mtimes_ms: dict[str, int] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # -- metadata (CAS) -------------------------------------------------
    def put_metadata(self, name: str, data: bytes) -> bool:
        with self._lock:
            if name in self._meta:
                return False
            self._meta[name] = bytes(data)
            return True

    def read_metadata(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._meta[name]
            except KeyError:
                raise FileNotFoundError(f"no metadata object {name!r}")

    def list_metadata(self) -> list[str]:
        with self._lock:
            return sorted(self._meta)

    def delete_metadata(self, name: str) -> None:
        with self._lock:
            self._meta.pop(name, None)

    # -- data files -----------------------------------------------------
    def new_file_id(self) -> str:
        with self._lock:
            return f"f-{next(self._ids):08d}"

    def create_data(self, file_id: str) -> Storage:
        with self._lock:
            if file_id in self._data:
                raise FileExistsError(f"data file {file_id!r} exists")
            storage = SimulatedStorage(file_id)
            self._data[file_id] = storage
            self._mtimes_ms[file_id] = time.time_ns() // 1_000_000
            return storage

    def open_data(self, file_id: str) -> Storage:
        with self._lock:
            try:
                return self._data[file_id]
            except KeyError:
                raise FileNotFoundError(f"no data file {file_id!r}")

    def data_size(self, file_id: str) -> int:
        return self.open_data(file_id).size

    def data_mtime_ms(self, file_id: str) -> int:
        with self._lock:
            try:
                return self._mtimes_ms[file_id]
            except KeyError:
                raise FileNotFoundError(f"no data file {file_id!r}")

    def sync_data(self) -> None:
        pass  # memory is as durable as it gets

    def delete_data(self, file_id: str) -> None:
        with self._lock:
            self._data.pop(file_id, None)
            self._mtimes_ms.pop(file_id, None)

    def list_data(self) -> list[str]:
        with self._lock:
            return sorted(self._data)


class DirectoryCatalogStore:
    """A table rooted at a local directory::

        <root>/snapshots/   snap-0000000001.json ...
        <root>/data/        f-<pid>-<seq>.bullion ...
        <root>/tmp/         staging for the atomic metadata commit

    The commit primitive writes the snapshot to ``tmp/``, fsyncs, then
    ``os.link``\\ s it to its final name: atomic on POSIX, and it fails
    with ``EEXIST`` when a concurrent committer already claimed the
    name — no committed snapshot can ever reference a half-written
    manifest. File ids embed the pid plus a per-process sequence, so
    writers in different processes never collide.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._snapdir = os.path.join(self.root, "snapshots")
        self._datadir = os.path.join(self.root, "data")
        self._tmpdir = os.path.join(self.root, "tmp")
        for d in (self._snapdir, self._datadir, self._tmpdir):
            os.makedirs(d, exist_ok=True)
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # -- metadata (CAS) -------------------------------------------------
    def put_metadata(self, name: str, data: bytes) -> bool:
        with self._lock:
            tmp = os.path.join(
                self._tmpdir,
                f"{os.getpid()}-{threading.get_ident()}-{next(self._ids)}",
            )
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:  # the outer finally unlinks tmp on ANY exit, even a
            # failed write/fsync — a crashed commit leaks nothing
            try:
                view = memoryview(data)
                while view:  # os.write may write fewer bytes than asked
                    view = view[os.write(fd, view) :]
                os.fsync(fd)
            finally:
                os.close(fd)
            try:
                os.link(tmp, os.path.join(self._snapdir, name))
            except FileExistsError:
                return False
            # the new directory entry must survive a crash too, not
            # just the snapshot bytes
            _fsync_dir(self._snapdir)
            return True
        finally:
            os.unlink(tmp)

    def read_metadata(self, name: str) -> bytes:
        with open(os.path.join(self._snapdir, name), "rb") as f:
            return f.read()

    def list_metadata(self) -> list[str]:
        return sorted(os.listdir(self._snapdir))

    def delete_metadata(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self._snapdir, name))
        except FileNotFoundError:
            pass

    # -- data files -----------------------------------------------------
    def _data_path(self, file_id: str) -> str:
        return os.path.join(self._datadir, f"{file_id}.bullion")

    def new_file_id(self) -> str:
        with self._lock:
            # the counter restarts when a table directory is reopened
            # (and pids recycle), so skip ids already on disk
            while True:
                fid = f"f-{os.getpid():05d}-{next(self._ids):06d}"
                if not os.path.exists(self._data_path(fid)):
                    return fid

    def create_data(self, file_id: str) -> Storage:
        path = self._data_path(file_id)
        if os.path.exists(path):
            raise FileExistsError(f"data file {file_id!r} exists")
        return FileStorage(path, name=file_id)

    def open_data(self, file_id: str) -> Storage:
        path = self._data_path(file_id)
        if not os.path.exists(path):
            raise FileNotFoundError(f"no data file {file_id!r}")
        # data files are immutable once committed; readers share the
        # bytes even if the file is unlinked by GC while they hold it
        return FileStorage(path, name=file_id, create=False, readonly=True)

    def data_size(self, file_id: str) -> int:
        return os.path.getsize(self._data_path(file_id))

    def data_mtime_ms(self, file_id: str) -> int:
        return int(os.stat(self._data_path(file_id)).st_mtime * 1000)

    def sync_data(self) -> None:
        _fsync_dir(self._datadir)

    def delete_data(self, file_id: str) -> None:
        try:
            os.unlink(self._data_path(file_id))
        except FileNotFoundError:
            pass

    def list_data(self) -> list[str]:
        return sorted(
            n[: -len(".bullion")]
            for n in os.listdir(self._datadir)
            if n.endswith(".bullion")
        )
