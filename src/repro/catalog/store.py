"""Where a catalog table lives: metadata CAS + data-file storage.

A :class:`CatalogStore` holds the two halves of a table:

* **metadata objects** — small immutable JSON snapshots, written with
  *put-if-absent* semantics. ``put_metadata`` is the commit primitive:
  exactly one of N racing committers wins a given snapshot name, the
  rest observe the moved HEAD and retry. This is the "atomic rename"
  commit protocol of Iceberg's Hadoop catalog / Delta's log store,
  reduced to its essential CAS.
* **data files** — immutable Bullion files, created through the
  streaming writer and opened through :class:`~repro.iosim.Storage`,
  so every existing read/write path works unchanged.

Two interchangeable implementations:

``MemoryCatalogStore``      dict-backed, for tests and simulation; the
                            CAS is a lock-guarded put-if-absent
``DirectoryCatalogStore``   a local directory; the CAS is write-to-temp
                            then ``os.link`` (atomic, fails with EEXIST
                            when another committer won the name)
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Protocol, runtime_checkable

from repro.iosim import FileStorage, SimulatedStorage, Storage


@runtime_checkable
class CatalogStore(Protocol):
    """Metadata CAS + data-file surface shared by all stores."""

    def put_metadata(self, name: str, data: bytes) -> bool: ...

    def read_metadata(self, name: str) -> bytes: ...

    def list_metadata(self) -> list[str]: ...

    def delete_metadata(self, name: str) -> None: ...

    def new_file_id(self) -> str: ...

    def create_data(self, file_id: str) -> Storage: ...

    def open_data(self, file_id: str) -> Storage: ...

    def data_size(self, file_id: str) -> int: ...

    def delete_data(self, file_id: str) -> None: ...

    def list_data(self) -> list[str]: ...


class MemoryCatalogStore:
    """In-memory store: dicts behind one lock.

    ``put_metadata`` is put-if-absent under the lock — the same
    winner-takes-the-name semantics as the directory store's
    ``os.link``, so concurrency tests exercise the real commit race.
    Data files are :class:`SimulatedStorage` objects; deleting one from
    the store does not invalidate readers already holding it, matching
    POSIX unlink-while-open behaviour.
    """

    def __init__(self, name: str = "catalog") -> None:
        self.name = name
        self._meta: dict[str, bytes] = {}
        self._data: dict[str, SimulatedStorage] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # -- metadata (CAS) -------------------------------------------------
    def put_metadata(self, name: str, data: bytes) -> bool:
        with self._lock:
            if name in self._meta:
                return False
            self._meta[name] = bytes(data)
            return True

    def read_metadata(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._meta[name]
            except KeyError:
                raise FileNotFoundError(f"no metadata object {name!r}")

    def list_metadata(self) -> list[str]:
        with self._lock:
            return sorted(self._meta)

    def delete_metadata(self, name: str) -> None:
        with self._lock:
            self._meta.pop(name, None)

    # -- data files -----------------------------------------------------
    def new_file_id(self) -> str:
        with self._lock:
            return f"f-{next(self._ids):08d}"

    def create_data(self, file_id: str) -> Storage:
        with self._lock:
            if file_id in self._data:
                raise FileExistsError(f"data file {file_id!r} exists")
            storage = SimulatedStorage(file_id)
            self._data[file_id] = storage
            return storage

    def open_data(self, file_id: str) -> Storage:
        with self._lock:
            try:
                return self._data[file_id]
            except KeyError:
                raise FileNotFoundError(f"no data file {file_id!r}")

    def data_size(self, file_id: str) -> int:
        return self.open_data(file_id).size

    def delete_data(self, file_id: str) -> None:
        with self._lock:
            self._data.pop(file_id, None)

    def list_data(self) -> list[str]:
        with self._lock:
            return sorted(self._data)


class DirectoryCatalogStore:
    """A table rooted at a local directory::

        <root>/snapshots/   snap-0000000001.json ...
        <root>/data/        f-<pid>-<seq>.bullion ...
        <root>/tmp/         staging for the atomic metadata commit

    The commit primitive writes the snapshot to ``tmp/``, fsyncs, then
    ``os.link``\\ s it to its final name: atomic on POSIX, and it fails
    with ``EEXIST`` when a concurrent committer already claimed the
    name — no committed snapshot can ever reference a half-written
    manifest. File ids embed the pid plus a per-process sequence, so
    writers in different processes never collide.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._snapdir = os.path.join(self.root, "snapshots")
        self._datadir = os.path.join(self.root, "data")
        self._tmpdir = os.path.join(self.root, "tmp")
        for d in (self._snapdir, self._datadir, self._tmpdir):
            os.makedirs(d, exist_ok=True)
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # -- metadata (CAS) -------------------------------------------------
    def put_metadata(self, name: str, data: bytes) -> bool:
        with self._lock:
            tmp = os.path.join(
                self._tmpdir,
                f"{os.getpid()}-{threading.get_ident()}-{next(self._ids)}",
            )
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.link(tmp, os.path.join(self._snapdir, name))
            return True
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)

    def read_metadata(self, name: str) -> bytes:
        with open(os.path.join(self._snapdir, name), "rb") as f:
            return f.read()

    def list_metadata(self) -> list[str]:
        return sorted(os.listdir(self._snapdir))

    def delete_metadata(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self._snapdir, name))
        except FileNotFoundError:
            pass

    # -- data files -----------------------------------------------------
    def _data_path(self, file_id: str) -> str:
        return os.path.join(self._datadir, f"{file_id}.bullion")

    def new_file_id(self) -> str:
        with self._lock:
            return f"f-{os.getpid():05d}-{next(self._ids):06d}"

    def create_data(self, file_id: str) -> Storage:
        path = self._data_path(file_id)
        if os.path.exists(path):
            raise FileExistsError(f"data file {file_id!r} exists")
        return FileStorage(path, name=file_id)

    def open_data(self, file_id: str) -> Storage:
        path = self._data_path(file_id)
        if not os.path.exists(path):
            raise FileNotFoundError(f"no data file {file_id!r}")
        # data files are immutable once committed; readers share the
        # bytes even if the file is unlinked by GC while they hold it
        return FileStorage(path, name=file_id, create=False, readonly=True)

    def data_size(self, file_id: str) -> int:
        return os.path.getsize(self._data_path(file_id))

    def delete_data(self, file_id: str) -> None:
        try:
            os.unlink(self._data_path(file_id))
        except FileNotFoundError:
            pass

    def list_data(self) -> list[str]:
        return sorted(
            n[: -len(".bullion")]
            for n in os.listdir(self._datadir)
            if n.endswith(".bullion")
        )
