"""Execution: compile a :class:`QueryPlan` against the scan path.

The engine is a partial-aggregation machine. Every *unit* of the table
— a whole file at the catalog level, a row group inside one file —
produces a partial state (group key -> per-column counters), and
partials merge in a fixed order (file order, then row-group order,
then batch order) on the coordinating thread regardless of how many
executor workers computed them. Counts, minima, maxima and exact
integer sums are associative, and float sums only ever accumulate in
that fixed order — so the answer is bit-identical for any
``max_workers``.

Each unit is answered by the cheapest path that can prove the right
answer:

* **manifest-only** — an ungrouped query over a clean (no deletion
  vector) file whose ``where`` the interval evaluator proves
  ``ALWAYS`` (or trivially, no ``where``) answers ``count`` from the
  manifest row count and ``min``/``max`` from manifest column stats,
  when those stats are exact for the purpose (float stats exclude NaN
  — exactly the NaN-skipping aggregate semantics; int stats beyond
  2**53 may be float64-rounded, so they refuse the shortcut). The
  file is never opened.
* **footer-stats-only** — otherwise the footer is read (two metadata
  preads, no data chunks) and each row group is classified with the
  same tri-state evaluator over its zone maps: ``ALWAYS`` groups
  answer from ``ChunkStats``, ``NEVER`` groups vanish, ``MAYBE``
  groups fall through.
* **decode** — the remaining row groups run the existing
  ``scan(where=...)`` machinery (zone-map pruning, late
  materialization, deletion filtering, quantization widening) and
  accumulate vectorized per-batch partials: one ``np.unique``
  factorization per batch, then ``bincount``/``add.at``/
  ``minimum.at`` per aggregate — the streaming hash group-by.

``sum``/``mean`` and grouped queries can never be metadata-answered
(statistics carry no sums and no group structure); a live deletion
vector also forces decode, because footer statistics summarize deleted
rows too.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.schema import Primitive, stats_kind
from repro.expr import TriState, int_bound_is_exact
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import QUERY_SECONDS
from repro.query.plan import (
    AggregateSpec,
    PlanError,
    QueryPlan,
    QueryResult,
    QueryStats,
)

_U32_MASK = 0xFFFFFFFF
_I64_WRAP = 2**64
_I64_HALF = 2**63

_BYTES_PRIMS = (Primitive.STRING, Primitive.BINARY)


# ---------------------------------------------------------------------------
# partial-aggregation state
# ---------------------------------------------------------------------------

@dataclass
class _ColState:
    """NaN-skipping counters for one aggregated column in one group.

    ``kind`` is ``"int"`` (integers and bools: exact Python-int sums,
    no NaN), ``"float"`` (float64 accumulation, NaN rows excluded) or
    ``"bytes"`` (only ``count`` is defined). ``total`` stays exact for
    ints — int64 wraparound is applied once, at finalize — so ``mean``
    never sees a wrapped sum.
    """

    kind: str | None = None
    count: int = 0
    total: object = 0
    vmin: object = None
    vmax: object = None

    def fold(self, kind, count, total, vmin, vmax) -> None:
        if self.kind is None:
            self.kind = kind
            if kind == "float":
                self.total = 0.0
        elif kind != self.kind:
            raise PlanError(
                f"inconsistent column kinds {self.kind!r} vs {kind!r}"
            )
        self.count += count
        self.total += total
        if vmin is not None:
            self.vmin = vmin if self.vmin is None else min(self.vmin, vmin)
        if vmax is not None:
            self.vmax = vmax if self.vmax is None else max(self.vmax, vmax)

    def merge(self, other: "_ColState") -> None:
        if other.kind is None:
            return
        self.fold(
            other.kind, other.count, other.total, other.vmin, other.vmax
        )


@dataclass
class _GroupAcc:
    """One group's partial state: matched rows + per-column counters."""

    rows: int = 0
    cols: dict = field(default_factory=dict)

    def col(self, name: str) -> _ColState:
        state = self.cols.get(name)
        if state is None:
            state = self.cols[name] = _ColState()
        return state

    def merge(self, other: "_GroupAcc") -> None:
        self.rows += other.rows
        for name, state in other.cols.items():
            self.col(name).merge(state)


def _merge_partials(into: dict, other: dict) -> None:
    """Fold ``other`` into ``into`` in ``other``'s insertion order."""
    for key, acc in other.items():
        mine = into.get(key)
        if mine is None:
            into[key] = acc
        else:
            mine.merge(acc)


# ---------------------------------------------------------------------------
# vectorized batch accumulation (the decode path)
# ---------------------------------------------------------------------------

def _pyval(v):
    """Numpy scalar -> plain Python value (group keys, extrema)."""
    if isinstance(v, (bytes, bytearray)):
        return bytes(v)
    if isinstance(v, np.bool_):
        return bool(v)
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    return v


def _column_kind(values) -> str:
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise PlanError("cannot aggregate a nested column")
        if values.dtype == np.bool_ or np.issubdtype(
            values.dtype, np.integer
        ):
            return "int"
        if np.issubdtype(values.dtype, np.floating):
            return "float"
        raise PlanError(f"cannot aggregate dtype {values.dtype}")
    return "bytes"


def _exact_int_sum(v: np.ndarray) -> int:
    """Exact (arbitrary-precision) sum of an integer array.

    Splits each value into high/low 32-bit halves so both partial sums
    stay far from int64 overflow for any realistic row count, then
    recombines in Python ints. Order-independent, so parallelism can
    never change the answer.
    """
    v = v.astype(np.int64, copy=False)
    high = int(np.sum(v >> 32, dtype=np.int64))
    low = int(np.sum(v & _U32_MASK, dtype=np.int64))
    return high * (2**32) + low


def _factorize_keys(key_values: list):
    """Per-batch group codes: (inverse codes, ordered key tuples).

    Key tuples come back in ascending combined-code order, which is
    ascending lexicographic key order — deterministic however the
    batch arrived.
    """
    codes = None
    arrays = []
    for values in key_values:
        if isinstance(values, np.ndarray):
            arr = values
        else:  # list[bytes]
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
        arrays.append(arr)
        uniq, inv = np.unique(arr, return_inverse=True)
        codes = inv if codes is None else codes * len(uniq) + inv
    _ucodes, first_idx, inv = np.unique(
        codes, return_index=True, return_inverse=True
    )
    keys = [tuple(_pyval(arr[i]) for arr in arrays) for i in first_idx]
    return inv, keys


def _accumulate_batch(partial: dict, batch, plan: QueryPlan) -> None:
    """Fold one decoded batch into the running hash group-by."""
    n = batch.num_rows
    if n == 0:
        return
    agg_cols = plan.agg_columns()
    if not plan.group_by:
        acc = partial.get(())
        if acc is None:
            acc = partial[()] = _GroupAcc()
        acc.rows += n
        for name in agg_cols:
            _fold_global(acc.col(name), batch.column(name))
        return
    inv, keys = _factorize_keys([batch.column(k) for k in plan.group_by])
    ngroups = len(keys)
    accs = []
    for key in keys:
        acc = partial.get(key)
        if acc is None:
            acc = partial[key] = _GroupAcc()
        accs.append(acc)
    group_rows = np.bincount(inv, minlength=ngroups)
    for g, acc in enumerate(accs):
        acc.rows += int(group_rows[g])
    for name in agg_cols:
        _fold_grouped(accs, name, inv, ngroups, batch.column(name))


def _fold_global(state: _ColState, values) -> None:
    kind = _column_kind(values)
    if kind == "bytes":
        state.fold("bytes", len(values), 0, None, None)
        return
    if kind == "float":
        v = np.asarray(values, dtype=np.float64)
        v = v[~np.isnan(v)]
        if len(v) == 0:
            state.fold("float", 0, 0.0, None, None)
        else:
            with np.errstate(invalid="ignore"):  # inf + -inf is just NaN
                total = float(np.sum(v))
            state.fold(
                "float", len(v), total,
                float(np.min(v)), float(np.max(v)),
            )
        return
    v = values
    if v.dtype == np.bool_:
        v = v.astype(np.int64)
    if len(v) == 0:
        state.fold("int", 0, 0, None, None)
    else:
        state.fold(
            "int", len(v), _exact_int_sum(v),
            int(np.min(v)), int(np.max(v)),
        )


def _fold_grouped(accs, name: str, inv, ngroups: int, values) -> None:
    kind = _column_kind(values)
    if kind == "bytes":
        counts = np.bincount(inv, minlength=ngroups)
        for g, acc in enumerate(accs):
            acc.col(name).fold("bytes", int(counts[g]), 0, None, None)
        return
    if kind == "float":
        v = np.asarray(values, dtype=np.float64)
        valid = ~np.isnan(v)
        iv, vv = inv[valid], v[valid]
        counts = np.bincount(iv, minlength=ngroups)
        # bincount accumulates weights in one fixed left-to-right C
        # loop: deterministic for a given batch
        with np.errstate(invalid="ignore"):  # inf + -inf is just NaN
            sums = np.bincount(iv, weights=vv, minlength=ngroups)
        mins = np.full(ngroups, np.inf)
        maxs = np.full(ngroups, -np.inf)
        np.minimum.at(mins, iv, vv)
        np.maximum.at(maxs, iv, vv)
        for g, acc in enumerate(accs):
            c = int(counts[g])
            acc.col(name).fold(
                "float", c, float(sums[g]),
                float(mins[g]) if c else None,
                float(maxs[g]) if c else None,
            )
        return
    v = values
    if v.dtype == np.bool_:
        v = v.astype(np.int64)
    v = v.astype(np.int64, copy=False)
    counts = np.bincount(inv, minlength=ngroups)
    # exact sums: 32-bit split accumulators can't overflow int64
    high = np.zeros(ngroups, dtype=np.int64)
    low = np.zeros(ngroups, dtype=np.int64)
    np.add.at(high, inv, v >> 32)
    np.add.at(low, inv, v & _U32_MASK)
    info = np.iinfo(np.int64)
    mins = np.full(ngroups, info.max, dtype=np.int64)
    maxs = np.full(ngroups, info.min, dtype=np.int64)
    np.minimum.at(mins, inv, v)
    np.maximum.at(maxs, inv, v)
    for g, acc in enumerate(accs):
        c = int(counts[g])
        total = int(high[g]) * (2**32) + int(low[g])
        acc.col(name).fold(
            "int", c, total,
            int(mins[g]) if c else None,
            int(maxs[g]) if c else None,
        )


# ---------------------------------------------------------------------------
# metadata answers
# ---------------------------------------------------------------------------

def _meta_partial(plan: QueryPlan, n_rows: int, stats_of) -> dict | None:
    """Answer one extent (file or row group) purely from statistics.

    The extent is already proven ``ALWAYS``-matching and free of
    deletion vectors, so every one of its ``n_rows`` rows matches the
    filter. ``stats_of(column)`` returns ``(min, max, kind)`` or
    ``None``. Returns the partial (a ``{(): _GroupAcc}`` mapping), or
    ``None`` when any aggregate cannot be proven from statistics alone
    — the caller falls back to decode.
    """
    needs: dict[str, set[str]] = {}
    for spec in plan.aggregates:
        if spec.column is None:
            continue  # count(*) == n_rows
        if spec.fn in ("sum", "mean"):
            return None  # statistics carry no sums
        needs.setdefault(spec.column, set()).add(spec.fn)
    acc = _GroupAcc(rows=n_rows)
    for name, fns in needs.items():
        stats = stats_of(name)
        if stats is None:
            return None
        lo, hi, kind = stats
        count = 0
        if "count" in fns:
            # int/bool/string values are never NaN, so every row
            # counts; a float column may hide NaN rows outside stats
            if kind == "float":
                return None
            count = n_rows
        vmin = vmax = None
        if "min" in fns or "max" in fns:
            if kind == "int":
                if not (int_bound_is_exact(lo) and int_bound_is_exact(hi)):
                    return None  # float64-rounded beyond 2**53
                vmin, vmax = int(lo), int(hi)
            elif kind == "float":
                # float stats exclude NaN — exactly the NaN-skipping
                # aggregate semantics; an all-NaN extent carries no
                # stats at all, so stats present ⇒ ≥ 1 real value
                vmin, vmax = float(lo), float(hi)
            else:
                return None
            count = max(count, 1)
        acc.col(name).fold(kind, count, 0, vmin, vmax)
    return {(): acc}


# ---------------------------------------------------------------------------
# single-reader execution
# ---------------------------------------------------------------------------

def _validate_plan(plan: QueryPlan, footer) -> None:
    """Fail fast on columns the plan cannot aggregate or group by."""
    for spec in plan.aggregates:
        if spec.column is None:
            continue
        col_idx = footer.find_column(spec.column)
        ptype = footer.column_type(col_idx)
        if ptype.list_depth > 0:
            raise PlanError(
                f"cannot aggregate list column {spec.column!r}"
            )
        if ptype.primitive in _BYTES_PRIMS and spec.fn != "count":
            raise PlanError(
                f"{spec.fn}({spec.column}) is not defined for "
                f"string/binary columns"
            )
    for name in plan.group_by:
        col_idx = footer.find_column(name)
        ptype = footer.column_type(col_idx)
        if ptype.list_depth > 0:
            raise PlanError(f"cannot group by list column {name!r}")
        if stats_kind(ptype) == "float":
            raise PlanError(
                f"cannot group by float column {name!r} (NaN keys are "
                f"not well-defined); cast or bucket it first"
            )


def _scan_projection(plan: QueryPlan, footer) -> list[str]:
    """Columns the decode path projects; never empty for a counting
    scan (batches must carry a row count)."""
    columns = plan.scan_columns()
    if columns:
        return columns
    physical = footer.physical_columns()
    if not physical:
        raise PlanError("cannot aggregate a file with no columns")
    return [physical[0].name]


def _classify_groups(reader, where) -> list[TriState]:
    if where is None:
        return [TriState.ALWAYS] * reader.footer.num_row_groups
    return reader.classify_row_groups_expr(where)


def _group_stats_of(footer, g: int):
    """``stats_of`` callback over one row group's zone maps."""

    def stats_of(name: str):
        try:
            col_idx = footer.find_column(name)
        except KeyError:
            return None
        ptype = footer.column_type(col_idx)
        if ptype.list_depth > 0:
            return None
        if ptype.primitive in _BYTES_PRIMS:
            # no [min,max], but values exist and are never NaN: good
            # enough for count(col); min/max refuse a "bytes" kind
            return (None, None, "bytes")
        stats = footer.chunk_stats(col_idx, g)
        kind = stats_kind(ptype)
        if stats is None or kind is None:
            return None
        return (stats.min_value, stats.max_value, kind)

    return stats_of


def _aggregate_one_reader(
    reader,
    plan: QueryPlan,
    *,
    use_metadata: bool,
    stats: QueryStats,
    max_workers: int = 0,
) -> dict:
    """Partial for one open file: footer stats where provable, decode
    for the rest. Merges metadata partials first (row-group order),
    then the single ordered decode scan — deterministic regardless of
    executor width above or scan parallelism below."""
    if not obs_trace.enabled():
        return _aggregate_one_reader_impl(
            reader, plan, use_metadata=use_metadata, stats=stats,
            max_workers=max_workers,
        )
    storage = getattr(reader, "_storage", None)
    with obs_trace.span("query.file", file=getattr(storage, "name", "?")):
        return _aggregate_one_reader_impl(
            reader, plan, use_metadata=use_metadata, stats=stats,
            max_workers=max_workers,
        )


def _aggregate_one_reader_impl(
    reader,
    plan: QueryPlan,
    *,
    use_metadata: bool,
    stats: QueryStats,
    max_workers: int = 0,
) -> dict:
    footer = reader.footer
    _validate_plan(plan, footer)
    partial: dict = {}
    n_groups = footer.num_row_groups
    file_clean = footer.deleted_count() == 0
    decode_groups = list(range(n_groups))
    meta_eligible = (
        use_metadata and not plan.group_by and file_clean
    )
    if meta_eligible:
        verdicts = _classify_groups(reader, plan.where)
        decode_groups = []
        for g, verdict in enumerate(verdicts):
            n_rows = footer.row_group(g).n_rows
            if verdict is TriState.NEVER:
                # zone-map-pruned here, before the decode scan ever
                # sees the group — surface it in the per-layer skip
                # counters or the pruning is invisible in QueryStats
                stats.scan.bump(
                    groups_total=1, groups_pruned=1, rows_pruned=n_rows
                )
                continue
            meta = (
                _meta_partial(plan, n_rows, _group_stats_of(footer, g))
                if verdict is TriState.ALWAYS
                else None
            )
            if meta is None:
                decode_groups.append(g)
            else:
                _merge_partials(partial, meta)
                # counted into groups_total so the invariant
                # scan.groups_total == scan.groups_pruned
                #   + groups_meta_answered + scan.groups_scanned
                # holds across answer paths
                stats.scan.bump(groups_total=1)
                stats.bump(groups_meta_answered=1, rows_from_metadata=n_rows)
    if decode_groups:
        scanned_before = stats.scan.groups_scanned
        scan = reader.scan(
            _scan_projection(plan, footer),
            where=plan.where,
            row_groups=decode_groups,
            widen_quantized=True,
            max_workers=max_workers,
            scan_stats=stats.scan,
        )
        for batch in scan:
            _accumulate_batch(partial, batch, plan)
        stats.bump(
            groups_decoded=stats.scan.groups_scanned - scanned_before,
            files_decoded=1,
        )
    else:
        stats.bump(files_footer_answered=1)
    return partial


# ---------------------------------------------------------------------------
# finalize
# ---------------------------------------------------------------------------

def _finalize_agg(spec: AggregateSpec, acc: _GroupAcc, kinds: dict):
    if spec.column is None:
        return acc.rows
    state = acc.cols.get(spec.column) or _ColState()
    kind = state.kind or kinds.get(spec.column)
    if spec.fn == "count":
        return state.count
    if spec.fn == "sum":
        if kind == "float":
            return float(state.total)
        total = int(state.total)
        # int64 wraparound semantics, applied exactly once
        return ((total + _I64_HALF) % _I64_WRAP) - _I64_HALF
    if spec.fn == "mean":
        if state.count == 0:
            return None
        return state.total / state.count
    if spec.fn == "min":
        return state.vmin
    return state.vmax


def _finalize(
    plan: QueryPlan, partial: dict, stats: QueryStats, kinds: dict
) -> QueryResult:
    """``kinds`` hints each aggregate column's kind for groups no
    extent touched — so ``sum`` over a float column stays ``0.0``
    (not ``0``) even when every file was pruned."""
    if plan.group_by:
        items = sorted(partial.items())
    else:
        items = [((), partial.get(()) or _GroupAcc())]
    rows = []
    for key, acc in items:
        row = dict(zip(plan.group_by, key))
        for spec in plan.aggregates:
            row[spec.name] = _finalize_agg(spec, acc, kinds)
        rows.append(row)
    return QueryResult(plan=plan, rows=rows, stats=stats)


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------

def _build_plan(aggregates, where, group_by) -> QueryPlan:
    if isinstance(aggregates, QueryPlan):
        if where is not None or group_by is not None:
            raise PlanError(
                "pass either a QueryPlan or loose arguments, not both"
            )
        return aggregates
    return QueryPlan.build(aggregates, where=where, group_by=group_by)


def _kinds_from_footer(plan: QueryPlan, footer) -> dict:
    kinds: dict = {}
    for name in plan.agg_columns():
        try:
            ptype = footer.column_type(footer.find_column(name))
        except KeyError:
            continue
        kinds[name] = (
            "bytes"
            if ptype.primitive in _BYTES_PRIMS and ptype.list_depth == 0
            else stats_kind(ptype)
        )
    return kinds


def _kinds_from_manifest(plan: QueryPlan, files) -> dict:
    """Best-effort column kinds without opening any file: the first
    manifest stats entry naming the column wins (kinds are consistent
    across a table's files — appends check schema fingerprints)."""
    kinds: dict = {}
    wanted = set(plan.agg_columns())
    for f in files:
        if not wanted:
            break
        if f.column_stats is None:
            continue
        for name in list(wanted):
            stats = f.column_stats.get(name)
            if stats is not None:
                kinds[name] = stats.kind
                wanted.discard(name)
    return kinds


def aggregate_reader(
    reader,
    aggregates,
    *,
    where=None,
    group_by=None,
    use_metadata: bool = True,
    max_workers: int = 4,
) -> QueryResult:
    """Run an aggregation query over one open Bullion file.

    ``aggregates`` is a :class:`QueryPlan`, a spec/string, or a list of
    them. ``use_metadata=False`` forces the decode path end to end
    (the differential suite's second leg).
    """
    plan = _build_plan(aggregates, where, group_by)
    stats = QueryStats()
    stats.bump(files_total=1)
    obs_on = obs_metrics.enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    with obs_trace.span("query.reader", aggregates=len(plan.aggregates)):
        partial = _aggregate_one_reader(
            reader,
            plan,
            use_metadata=use_metadata,
            stats=stats,
            max_workers=max_workers,
        )
    if obs_on:
        QUERY_SECONDS.observe(time.perf_counter() - t0)
    return _finalize(
        plan, partial, stats, _kinds_from_footer(plan, reader.footer)
    )


def _file_stats_of(data_file, resolution=None):
    """``stats_of`` callback over one manifest entry's column stats.

    With a schema ``resolution`` (old-schema file in an evolved
    snapshot) lookups remap current names to the stored column's
    stats; columns the file never stored report no stats, which makes
    :func:`_meta_partial` refuse and the engine fall back to decode —
    where the typed-null fills produce the right answer.
    """
    if resolution is not None:
        return resolution.stats_of(data_file.column_stats)

    def stats_of(name: str):
        if data_file.column_stats is None:
            return None
        stats = data_file.column_stats.get(name)
        if stats is None:
            return None
        return (stats.min_value, stats.max_value, stats.kind)

    return stats_of


def _kinds_from_schema(plan: QueryPlan, schema) -> dict:
    """Column kinds straight from the current table schema — the
    authority on evolved snapshots, where manifest stats are keyed by
    *stored* (possibly renamed) column names."""
    kinds: dict = {}
    for name in plan.agg_columns():
        column = schema.maybe_column(name)
        if column is None:
            continue
        ptype = column.type
        kinds[name] = (
            "bytes"
            if ptype.primitive in _BYTES_PRIMS and ptype.list_depth == 0
            else stats_kind(ptype)
        )
    return kinds


def aggregate_snapshot(
    pinned,
    aggregates,
    *,
    where=None,
    group_by=None,
    use_metadata: bool = True,
    max_workers: int = 4,
) -> QueryResult:
    """Run an aggregation query over a pinned catalog snapshot.

    Files are classified from manifest statistics first: proven-empty
    files are pruned unopened, fully-proven files are answered from
    the manifest alone, and the rest fan out one partial-aggregation
    task per file on a thread pool. Partials merge on the calling
    thread in file order, so the result — including float sums — is
    bit-identical for any ``max_workers``.
    """
    plan = _build_plan(aggregates, where, group_by)
    stats = QueryStats()
    files = list(pinned.snapshot.files)
    stats.bump(files_total=len(files))
    obs_on = obs_metrics.enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    with obs_trace.span("query.snapshot", files=len(files)):
        result = _aggregate_snapshot_impl(
            pinned, plan, stats, files, use_metadata, max_workers
        )
    if obs_on:
        QUERY_SECONDS.observe(time.perf_counter() - t0)
    return result


def _aggregate_snapshot_impl(
    pinned, plan, stats, files, use_metadata, max_workers
) -> QueryResult:
    log = pinned.schema_log()
    current_schema = log.current()

    #: per file: ("meta", partial) | ("skip",) | ("task", reader)
    dispositions = []
    for f in files:
        resolution = log.resolution(f)
        verdict = (
            TriState.ALWAYS
            if plan.where is None
            else f.classify(plan.where, resolution)
        )
        if verdict is TriState.NEVER:
            stats.bump(files_pruned=1)
            # mirror the catalog-layer prune into the scan-layer skip
            # counters, matching what PinnedSnapshot.scan reports
            stats.scan.bump(files_pruned=1, rows_pruned=f.row_count)
            dispositions.append(("skip", None))
            continue
        meta = None
        if (
            use_metadata
            and not plan.group_by
            and verdict is TriState.ALWAYS
            and f.deleted_count == 0
        ):
            meta = _meta_partial(
                plan, f.row_count, _file_stats_of(f, resolution)
            )
        if meta is not None:
            stats.bump(files_meta_answered=1, rows_from_metadata=f.row_count)
            dispositions.append(("meta", meta))
        else:
            # open (footer pread) on the coordinator so the pin's
            # reader cache is never touched from worker threads;
            # old-schema files get their resolver facade here
            dispositions.append(("task", pinned._resolved_reader_for(f)))
    tasks = [d for d in dispositions if d[0] == "task"]
    # parallelism budget: across files when several decode, inside the
    # scan when only one does (scan yields groups in order either way,
    # so the deterministic merge is unaffected)
    inner_workers = max_workers if len(tasks) == 1 else 0

    def run_file(reader):
        file_stats = QueryStats()
        part = _aggregate_one_reader(
            reader,
            plan,
            use_metadata=use_metadata,
            stats=file_stats,
            max_workers=inner_workers,
        )
        return part, file_stats

    results: dict[int, tuple] = {}
    if max_workers > 1 and len(tasks) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                i: pool.submit(run_file, reader)
                for i, (kind, reader) in enumerate(dispositions)
                if kind == "task"
            }
            for i, fut in futures.items():
                results[i] = fut.result()
    else:
        for i, (kind, reader) in enumerate(dispositions):
            if kind == "task":
                results[i] = run_file(reader)

    partial: dict = {}
    kinds = (
        _kinds_from_schema(plan, current_schema)
        if current_schema is not None
        else _kinds_from_manifest(plan, files)
    )
    for i, (kind, payload) in enumerate(dispositions):
        if kind == "meta":
            _merge_partials(partial, payload)
        elif kind == "task":
            part, file_stats = results[i]
            _merge_partials(partial, part)
            file_stats.files_total = 0  # already counted up front
            stats.merge(file_stats)
            kinds.update(_kinds_from_footer(plan, payload.footer))
    return _finalize(plan, partial, stats, kinds)
