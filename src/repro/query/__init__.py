"""Vectorized aggregation over Bullion tables, metadata-first.

The paper's central bet — rich footer/manifest metadata lets ML-scale
tables answer work without touching data — extends from filtering to
aggregation. ``repro.query`` runs a small logical plan
(``scan → where → group_by → aggregate``) against the existing scan
machinery, answering whatever it can from statistics alone:

* ``count``/``min``/``max`` over a clean snapshot — zero data chunks
  fetched; often zero file opens (manifest column stats suffice);
* ``count`` under a predicate — per file and per row group, extents
  the interval evaluator proves ``ALWAYS`` count from metadata,
  ``NEVER`` extents vanish, only ``MAYBE`` extents decode;
* everything else — a streaming numpy hash group-by over scan
  batches, fanned out per file on a thread pool and merged in a
  deterministic order (parallelism never changes the answer, bit for
  bit).

Quickstart::

    from repro.expr import col

    with table.pin() as snap:
        res = snap.query(["count", "min(price)", "max(price)"])
        res.scalar("count")            # no chunk I/O on a clean table
        by_region = snap.query(
            ["count", "sum(clicks)"],
            where=col("price") > 100,
            group_by=["region"],
        )
        for row in by_region.rows:
            ...

    reader.aggregate(["sum(clicks)"])  # single-file form

:class:`QueryStats` reports which answer path handled what, so "this
never touched data" is assertable, not aspirational.
"""

from repro.query.engine import aggregate_reader, aggregate_snapshot
from repro.query.plan import (
    AGG_FUNCTIONS,
    AggregateSpec,
    PlanError,
    QueryPlan,
    QueryResult,
    QueryStats,
    as_aggregate,
)

__all__ = [
    "AGG_FUNCTIONS",
    "AggregateSpec",
    "PlanError",
    "QueryPlan",
    "QueryResult",
    "QueryStats",
    "as_aggregate",
    "aggregate_reader",
    "aggregate_snapshot",
]
