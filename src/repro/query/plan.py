"""Logical query plans: ``scan → where → group_by → aggregate``.

A :class:`QueryPlan` names what to compute — aggregate functions over
columns, an optional filter expression, optional grouping columns —
and nothing about how. The engine (:mod:`repro.query.engine`) compiles
it against the existing scan path and decides, per file and per row
group, which of the three answer paths applies:

1. **manifest-only** — answered from catalog ``DataFile`` stats, the
   file is never opened;
2. **footer-stats-only** — answered from the footer's per-row-group
   ``ChunkStats`` zone maps, no data chunk is fetched;
3. **decode** — the vectorized batch path over ``scan(where=...)``.

:class:`QueryStats` counts which path answered what, so tests can
assert "this query touched zero data chunks" rather than trust it.

Aggregate semantics (shared by all three paths and by the brute-force
oracle in the differential test suite):

* ``count`` / ``count(*)`` — rows matching the filter (deleted rows
  never count).
* ``count(col)`` — matching rows where ``col`` is not NaN. For
  integer, bool and string columns this equals ``count(*)``.
* ``sum(col)`` — NaN-skipping sum. Integer sums use exact int64
  wraparound arithmetic (order-independent); float sums accumulate in
  float64 in deterministic (file, group, batch) order.
* ``min(col)`` / ``max(col)`` — NaN-skipping extrema; ``None`` when no
  non-NaN value matched.
* ``mean(col)`` — ``sum(col) / count(col)``; ``None`` when
  ``count(col)`` is zero.

Quantized (FP16/BF16/FP8) columns aggregate in their widened float
domain — the same domain their statistics are collected in, which is
what makes the metadata min/max answer exact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields

from repro.core.reader import ScanStats
from repro.expr import Expr
from repro.obs.families import QUERY_MIRROR

#: supported aggregate functions
AGG_FUNCTIONS = ("count", "sum", "min", "max", "mean")

_SPEC_RE = re.compile(
    r"^\s*(?P<fn>[a-zA-Z]+)\s*(?:\(\s*(?P<col>\*|[A-Za-z_][A-Za-z0-9_.]*)?\s*\))?\s*$"
)


class PlanError(ValueError):
    """Malformed aggregate spec or an unexecutable plan."""


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate function over one column (or ``count(*)``)."""

    fn: str
    column: str | None = None

    def __post_init__(self) -> None:
        if self.fn not in AGG_FUNCTIONS:
            raise PlanError(
                f"unknown aggregate {self.fn!r}: expected one of "
                f"{', '.join(AGG_FUNCTIONS)}"
            )
        if self.fn != "count" and self.column is None:
            raise PlanError(f"{self.fn} requires a column: {self.fn}(col)")

    @staticmethod
    def parse(text: str) -> "AggregateSpec":
        """Parse ``"count"``, ``"count(*)"``, ``"sum(price)"``, ..."""
        m = _SPEC_RE.match(text)
        if m is None:
            raise PlanError(f"cannot parse aggregate spec {text!r}")
        fn = m.group("fn").lower()
        column = m.group("col")
        if column in (None, "*"):
            column = None
        return AggregateSpec(fn, column)

    @property
    def name(self) -> str:
        """Canonical result-column name, e.g. ``sum(price)``."""
        if self.column is None:
            return "count(*)"
        return f"{self.fn}({self.column})"

    def __repr__(self) -> str:
        return self.name


def as_aggregate(spec) -> AggregateSpec:
    """Normalize a string or :class:`AggregateSpec` into a spec."""
    if isinstance(spec, AggregateSpec):
        return spec
    if isinstance(spec, str):
        return AggregateSpec.parse(spec)
    raise PlanError(f"cannot interpret {spec!r} as an aggregate")


@dataclass(frozen=True)
class QueryPlan:
    """A logical aggregation query: filter, group, aggregate."""

    aggregates: tuple[AggregateSpec, ...]
    where: Expr | None = None
    group_by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("a query needs at least one aggregate")
        names = [a.name for a in self.aggregates]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate aggregates in {names}")
        # grouping by an aggregated column is fine; just forbid dup keys
        if len(set(self.group_by)) != len(self.group_by):
            raise PlanError(f"duplicate group_by columns {self.group_by}")

    @staticmethod
    def build(aggregates, where=None, group_by=None) -> "QueryPlan":
        """Normalize loose arguments (strings, lists) into a plan."""
        if isinstance(aggregates, (str, AggregateSpec)):
            aggregates = [aggregates]
        specs = tuple(as_aggregate(a) for a in aggregates)
        if group_by is None:
            group = ()
        elif isinstance(group_by, str):
            group = (group_by,)
        else:
            group = tuple(group_by)
        return QueryPlan(aggregates=specs, where=where, group_by=group)

    def agg_columns(self) -> list[str]:
        """Columns whose values some aggregate needs, in spec order."""
        out: list[str] = []
        for a in self.aggregates:
            if a.column is not None and a.column not in out:
                out.append(a.column)
        return out

    def scan_columns(self) -> list[str]:
        """Every column the decode path must project."""
        out = list(self.group_by)
        for name in self.agg_columns():
            if name not in out:
                out.append(name)
        if self.where is not None:
            for name in sorted(self.where.columns()):
                if name not in out:
                    out.append(name)
        return out


@dataclass
class QueryStats:
    """Which answer path handled how much of one query.

    ``files_*`` partition the snapshot's files (single-file queries
    count as one file): pruned files were proven empty of matches and
    contributed nothing; ``meta_answered`` files were answered from
    manifest statistics without being opened; ``footer_answered``
    files were opened (footer read) but answered entirely from zone
    maps; ``decoded`` files fetched at least one data chunk.
    ``groups_meta_answered`` / ``groups_decoded`` give the row-group
    split inside opened files. ``scan`` carries the decode path's own
    per-layer skip counters; ``scan.chunks_fetched == 0`` is the
    zero-data-I/O proof the fast-path tests assert.
    """

    files_total: int = 0
    files_pruned: int = 0
    files_meta_answered: int = 0
    files_footer_answered: int = 0
    files_decoded: int = 0
    groups_meta_answered: int = 0
    groups_decoded: int = 0
    rows_from_metadata: int = 0
    scan: ScanStats = field(default_factory=ScanStats)

    @property
    def data_chunks_fetched(self) -> int:
        return self.scan.chunks_fetched

    def bump(self, **deltas: int) -> None:
        """Increment per-call counters *and* the process-wide registry.

        Same contract as :meth:`ScanStats.bump`: organic increments go
        through here so the global ``query_*`` families reconcile with
        summed per-call stats; :meth:`merge` stays raw attribute math
        so nothing is double-published.
        """
        for name, n in deltas.items():
            setattr(self, name, getattr(self, name) + n)
        QUERY_MIRROR.bump(deltas)

    def merge(self, other: "QueryStats") -> None:
        self.files_total += other.files_total
        self.files_pruned += other.files_pruned
        self.files_meta_answered += other.files_meta_answered
        self.files_footer_answered += other.files_footer_answered
        self.files_decoded += other.files_decoded
        self.groups_meta_answered += other.groups_meta_answered
        self.groups_decoded += other.groups_decoded
        self.rows_from_metadata += other.rows_from_metadata
        for f in fields(ScanStats):
            setattr(
                self.scan,
                f.name,
                getattr(self.scan, f.name) + getattr(other.scan, f.name),
            )

    def describe(self) -> str:
        return (
            f"files: {self.files_total} total, "
            f"{self.files_pruned} pruned, "
            f"{self.files_meta_answered} manifest-only, "
            f"{self.files_footer_answered} footer-only, "
            f"{self.files_decoded} decoded; "
            f"groups: {self.groups_meta_answered} metadata-answered, "
            f"{self.groups_decoded} decoded; "
            f"rows from metadata: {self.rows_from_metadata:,}; "
            f"data chunks fetched: {self.data_chunks_fetched:,}"
        )


@dataclass
class QueryResult:
    """Aggregation output: one row per group (one row when ungrouped).

    ``rows`` holds plain Python values — group keys as int/bool/bytes,
    aggregates as int/float/``None`` — keyed by group column name and
    canonical aggregate name. Groups are ordered by ascending key so
    the output is deterministic regardless of scan parallelism.
    """

    plan: QueryPlan
    rows: list[dict]
    stats: QueryStats

    def scalar(self, spec) -> object:
        """The single value of one aggregate (ungrouped queries)."""
        if self.plan.group_by:
            raise PlanError("scalar() on a grouped query; use rows")
        return self.rows[0][as_aggregate(spec).name]

    def column(self, name: str) -> list:
        """One output column (group key or aggregate) across rows."""
        return [r[name] for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
