"""Byte-stream helpers and vectorized bit packing.

``ByteWriter``/``ByteReader`` are tiny framing helpers used by every
encoding payload: fixed-width scalars, length-prefixed blobs and numpy
arrays. ``pack_bits``/``unpack_bits`` implement fixed-bit-width packing
(the workhorse behind FixedBitWidth, FOR, dictionary codes and the
FastPFOR/FastBP128 kernels) using numpy's ``packbits``/``unpackbits`` so
the inner loop stays in C.
"""

from __future__ import annotations

import struct

import numpy as np


class ByteWriter:
    """Append-only binary buffer with struct-style typed writes."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def write(self, data: bytes) -> None:
        self._parts.append(bytes(data))

    def write_u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def write_u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def write_u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def write_u64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def write_i64(self, value: int) -> None:
        self._parts.append(struct.pack("<q", value))

    def write_f64(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def write_blob(self, data: bytes) -> None:
        """Length-prefixed (u32) byte blob."""
        self.write_u32(len(data))
        self.write(data)

    def write_array(self, values: np.ndarray) -> None:
        """Raw little-endian dump of a numpy array (caller tracks dtype)."""
        arr = np.ascontiguousarray(values)
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        self._parts.append(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class ByteReader:
    """Sequential reader over a bytes-like object."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def pos(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise ValueError(
                f"read of {n} bytes at offset {self._pos} exceeds "
                f"buffer of {len(self._data)} bytes"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return bytes(out)

    def _unpack(self, fmt: str, size: int):
        value = struct.unpack_from(fmt, self._data, self._pos)[0]
        self._pos += size
        return value

    def read_u8(self) -> int:
        return self._unpack("<B", 1)

    def read_u16(self) -> int:
        return self._unpack("<H", 2)

    def read_u32(self) -> int:
        return self._unpack("<I", 4)

    def read_u64(self) -> int:
        return self._unpack("<Q", 8)

    def read_i64(self) -> int:
        return self._unpack("<q", 8)

    def read_f64(self) -> float:
        return self._unpack("<d", 8)

    def read_blob(self) -> bytes:
        return self.read(self.read_u32())

    def read_array(self, dtype, count: int) -> np.ndarray:
        dt = np.dtype(dtype)
        raw = self.read(dt.itemsize * count)
        return np.frombuffer(raw, dtype=dt).copy()


def min_bit_width(values: np.ndarray) -> int:
    """Smallest bit width able to represent every (unsigned) value.

    An all-zero or empty array needs width 0 (a valid degenerate pack).
    """
    if len(values) == 0:
        return 0
    max_value = int(values.max())
    if max_value < 0:
        raise ValueError("min_bit_width requires non-negative values")
    return int(max_value).bit_length()


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack non-negative integers into ``width`` bits each (LSB-first).

    Layout: value ``i`` occupies bits ``[i*width, (i+1)*width)`` of the
    output bit stream; within a value, bit 0 is the value's LSB. This
    fixed layout is what lets the deletion path mask individual slots
    without decoding the page (see :mod:`repro.core.deletion`).
    """
    values = np.asarray(values, dtype=np.uint64)
    if width == 0:
        return b""
    if width > 64:
        raise ValueError(f"bit width {width} exceeds 64")
    if len(values) == 0:
        return b""
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def unpack_bits(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns uint64 array of ``count``.

    For widths up to 57 this runs phase-strided: the bit layout repeats
    every 8 values (one ``width``-byte period), so phase ``r`` of every
    period shares one byte offset and one sub-byte shift. Each phase is
    then a handful of strided slices composed into a word — no fancy
    indexing, no per-value work, ~32 small vector ops total.
    """
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    needed_bits = width * count
    raw = np.frombuffer(data, dtype=np.uint8)
    if len(raw) * 8 < needed_bits:
        raise ValueError(
            f"bit buffer too small: have {len(raw) * 8} bits, "
            f"need {needed_bits}"
        )
    if width <= 57:
        groups = (count + 7) // 8
        pad = np.zeros(groups * width + 8, dtype=np.uint8)
        usable = min(len(raw), len(pad))
        pad[:usable] = raw[:usable]
        dtype = np.uint32 if width <= 25 else np.uint64
        mask = dtype((1 << width) - 1)
        out = np.empty(groups * 8, dtype=np.uint64)
        span = groups * width
        for r in range(8):
            first_bit = r * width
            byte0 = first_bit >> 3
            shift = first_bit & 7
            n_bytes = (shift + width + 7) >> 3
            word = pad[byte0 : byte0 + span : width].astype(dtype)
            for k in range(1, n_bytes):
                word |= (
                    pad[byte0 + k : byte0 + k + span : width].astype(dtype)
                    << dtype(8 * k)
                )
            word >>= dtype(shift)
            word &= mask
            out[r::8] = word
        return out[:count]
    # widths 58..64: pad each value's bits to 64 and view the bytes as
    # uint64 — one C pass instead of a multiply-accumulate per bit.
    bits = np.unpackbits(raw, bitorder="little")
    padded = np.zeros((count, 64), dtype=np.uint8)
    padded[:, :width] = bits[:needed_bits].reshape(count, width)
    return (
        np.packbits(padded.reshape(-1), bitorder="little")
        .view("<u8")
        .copy()
    )


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """Per-element ``int.bit_length`` over a uint64 array (int64 out).

    Successive halving: six shift/compare rounds classify all 64
    possible widths, whole-array.
    """
    widths = np.zeros(len(values), dtype=np.int64)
    v = np.asarray(values, dtype=np.uint64).copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >= (np.uint64(1) << np.uint64(shift))
        widths[big] += shift
        v[big] >>= np.uint64(shift)
    widths[v > 0] += 1
    return widths


def le_bit_windows(data: bytes) -> np.ndarray:
    """Little-endian 64-bit window starting at every byte offset.

    ``out[j]`` holds bytes ``j..j+7`` as one uint64 (zero-padded past
    the end), so the ``width <= 57`` bits at any bit position ``p`` are
    ``(out[p >> 3] >> (p & 7)) & ((1 << width) - 1)`` — the whole-array
    gather behind the batch unpack paths.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    n = len(raw)
    padded = np.zeros(n + 8, dtype=np.uint64)
    padded[:n] = raw
    windows = np.zeros(n + 1, dtype=np.uint64)
    for k in range(8):
        windows |= padded[k : k + n + 1] << np.uint64(8 * k)
    return windows


def le_bit_windows32(data: bytes) -> np.ndarray:
    """32-bit variant of :func:`le_bit_windows` for fields <= 25 bits.

    Half the memory traffic of the 64-bit windows; callers keep the
    whole gather pipeline in uint32.
    """
    raw = np.frombuffer(data, dtype=np.uint8)
    n = len(raw)
    padded = np.zeros(n + 4, dtype=np.uint32)
    padded[:n] = raw
    windows = padded[: n + 1].copy()
    for k in range(1, 4):
        windows |= padded[k : k + n + 1] << np.uint32(8 * k)
    return windows


def scatter_varwidth_lsb(
    values: np.ndarray, widths: np.ndarray, bit_starts: np.ndarray,
    total_bytes: int,
) -> bytes:
    """Write LSB-first bit fields at arbitrary bit offsets, whole-array.

    Field ``i`` puts the low ``widths[i]`` bits of ``values[i]`` (LSB
    first) at bit position ``bit_starts[i]``; untouched bits are zero.
    Fields may be non-contiguous (block codecs pad each miniblock to a
    byte boundary) but must not overlap.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    total_bits = int(widths.sum())
    if total_bits == 0:
        return bytes(total_bytes)
    bits = np.zeros(total_bytes * 8, dtype=np.uint8)
    offset = np.arange(total_bits, dtype=np.int64) - np.repeat(
        np.cumsum(widths) - widths, widths
    )
    slots = np.repeat(np.asarray(bit_starts, dtype=np.int64), widths) + offset
    bits[slots] = (
        np.repeat(values, widths) >> offset.astype(np.uint64)
    ) & np.uint64(1)
    return np.packbits(bits, bitorder="little").tobytes()


def pack_varwidth_msb(values, widths) -> tuple[bytes, int]:
    """Concatenate variable-width MSB-first bit fields, whole-array.

    Field ``i`` contributes the low ``widths[i]`` bits of ``values[i]``,
    most-significant bit first, with no padding between fields; the byte
    stream is the big-endian ``np.packbits`` of the concatenation. This
    is exactly the layout the streaming bit writers (Huffman, Gorilla,
    Chimp) produce one bit at a time — here every field lands via one
    repeat/arange scatter. Returns ``(payload, total_bits)``.
    """
    values = np.asarray(values, dtype=np.uint64)
    widths = np.asarray(widths, dtype=np.int64)
    total_bits = int(widths.sum())
    if total_bits == 0:
        return b"", 0
    starts = np.repeat(np.cumsum(widths) - widths, widths)
    offset = np.arange(total_bits, dtype=np.int64) - starts
    shift = (np.repeat(widths, widths) - 1 - offset).astype(np.uint64)
    bits = ((np.repeat(values, widths) >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits, bitorder="big").tobytes(), total_bits


class BitWindowReader:
    """Sequential MSB-first bit reader over a byte payload.

    Precomputes a big-endian 64-bit window at every *byte* offset, so a
    read of up to 64 bits at any bit position costs two list lookups and
    a couple of integer ops — no per-bit work. This is the decode-side
    companion of :func:`pack_varwidth_msb`, used by the codecs whose bit
    streams carry sequential state (Gorilla/Chimp) and therefore cannot
    be decoded as one whole-array transform.
    """

    __slots__ = ("_win", "_next", "total_bits", "pos")

    def __init__(self, data: bytes, total_bits: int) -> None:
        if total_bits > 8 * len(data):
            raise ValueError(
                f"bit stream claims {total_bits} bits but payload has "
                f"only {8 * len(data)}"
            )
        raw = np.frombuffer(data, dtype=np.uint8)
        n = len(raw) + 1
        padded = np.zeros(n + 8, dtype=np.uint64)
        padded[: len(raw)] = raw
        win = np.zeros(n, dtype=np.uint64)
        for k in range(8):
            win |= padded[k : k + n] << np.uint64(8 * (7 - k))
        self._win = win.tolist()
        self._next = padded[8 : 8 + n].tolist()
        self.total_bits = total_bits
        self.pos = 0

    def peek64(self, pos: int) -> int:
        """The 64 bits starting at bit ``pos`` (zero-padded past the end)."""
        byte_idx = pos >> 3
        shift = pos & 7
        if shift == 0:
            return self._win[byte_idx]
        return (
            (self._win[byte_idx] << shift) & 0xFFFFFFFFFFFFFFFF
        ) | (self._next[byte_idx] >> (8 - shift))

    def take(self, width: int) -> int:
        """Read ``width`` (1..64) bits MSB-first; raises past the end."""
        pos = self.pos
        if width < 0 or pos + width > self.total_bits:
            raise ValueError(
                f"bit read of {width} at {pos} exceeds {self.total_bits}"
            )
        self.pos = pos + width
        if width == 0:
            return 0
        return self.peek64(pos) >> (64 - width)


def set_packed_value(buf: bytearray, index: int, width: int, value: int) -> None:
    """Overwrite slot ``index`` of a packed-bit buffer in place.

    Used by deletion-compliance masking: a page encoded with a fixed bit
    width can have individual slots scrubbed without touching its
    neighbours, so the page size is trivially unchanged.
    """
    if width == 0:
        return
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bit_start = index * width
    for k in range(width):
        bit = (value >> k) & 1
        pos = bit_start + k
        byte_idx, bit_idx = divmod(pos, 8)
        if bit:
            buf[byte_idx] |= 1 << bit_idx
        else:
            buf[byte_idx] &= ~(1 << bit_idx) & 0xFF


def set_packed_values(
    buf: bytearray, indices: np.ndarray, width: int, value: int
) -> None:
    """Overwrite many packed-bit slots at once (vectorized scrub).

    Equivalent to calling :func:`set_packed_value` per index, but the
    read-modify-write happens as one ``unpackbits``/scatter/``packbits``
    pass over the buffer, which is what the deletion-compliance masker
    wants when a whole batch of rows is scrubbed from a page.
    """
    if width == 0 or len(indices) == 0:
        return
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    indices = np.asarray(indices, dtype=np.int64)
    bits = np.unpackbits(
        np.frombuffer(bytes(buf), dtype=np.uint8), bitorder="little"
    )
    slots = (indices[:, None] * width + np.arange(width)[None, :]).ravel()
    value_bits = (
        (np.uint64(value) >> np.arange(width, dtype=np.uint64))
        & np.uint64(1)
    ).astype(np.uint8)
    bits[slots] = np.tile(value_bits, len(indices))
    buf[:] = np.packbits(bits, bitorder="little").tobytes()


def pack_bits_rows(matrix: np.ndarray, width: int) -> np.ndarray:
    """Row-wise :func:`pack_bits`: pack a (k, n) uint64 matrix into a
    (k, ceil(n*width/8)) uint8 matrix, one independent LSB-first bit
    stream per row. Lets block codecs (FastPFOR/FastBP128/FOR) pack all
    same-width blocks in a single numpy pass instead of per-block calls.
    """
    k, n = matrix.shape
    if width == 0 or n == 0 or k == 0:
        return np.zeros((k, (n * width + 7) // 8), dtype=np.uint8)
    shifts = np.arange(width, dtype=np.uint64)
    bits = (
        (matrix[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits.reshape(k, n * width), axis=1, bitorder="little")


def unpack_bits_rows(rows: np.ndarray, width: int, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits_rows`: (k, nbytes) -> (k, n) uint64."""
    k = rows.shape[0]
    if width == 0 or n == 0 or k == 0:
        return np.zeros((k, n), dtype=np.uint64)
    bits = np.unpackbits(rows, axis=1, bitorder="little")[:, : n * width]
    padded = np.zeros((k, n, 64), dtype=np.uint8)
    padded[:, :, :width] = bits.reshape(k, n, width)
    return (
        np.packbits(padded.reshape(k, n * 64), axis=1, bitorder="little")
        .reshape(k, n, 8)
        .view("<u8")
        .reshape(k, n)
    )


def get_packed_value(buf: bytes, index: int, width: int) -> int:
    """Read slot ``index`` of a packed-bit buffer without full decode."""
    if width == 0:
        return 0
    bit_start = index * width
    out = 0
    for k in range(width):
        pos = bit_start + k
        byte_idx, bit_idx = divmod(pos, 8)
        out |= ((buf[byte_idx] >> bit_idx) & 1) << k
    return out
