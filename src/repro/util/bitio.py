"""Byte-stream helpers and vectorized bit packing.

``ByteWriter``/``ByteReader`` are tiny framing helpers used by every
encoding payload: fixed-width scalars, length-prefixed blobs and numpy
arrays. ``pack_bits``/``unpack_bits`` implement fixed-bit-width packing
(the workhorse behind FixedBitWidth, FOR, dictionary codes and the
FastPFOR/FastBP128 kernels) using numpy's ``packbits``/``unpackbits`` so
the inner loop stays in C.
"""

from __future__ import annotations

import struct

import numpy as np


class ByteWriter:
    """Append-only binary buffer with struct-style typed writes."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def write(self, data: bytes) -> None:
        self._parts.append(bytes(data))

    def write_u8(self, value: int) -> None:
        self._parts.append(struct.pack("<B", value))

    def write_u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def write_u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def write_u64(self, value: int) -> None:
        self._parts.append(struct.pack("<Q", value))

    def write_i64(self, value: int) -> None:
        self._parts.append(struct.pack("<q", value))

    def write_f64(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def write_blob(self, data: bytes) -> None:
        """Length-prefixed (u32) byte blob."""
        self.write_u32(len(data))
        self.write(data)

    def write_array(self, values: np.ndarray) -> None:
        """Raw little-endian dump of a numpy array (caller tracks dtype)."""
        arr = np.ascontiguousarray(values)
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        self._parts.append(arr.tobytes())

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(p) for p in self._parts)


class ByteReader:
    """Sequential reader over a bytes-like object."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    @property
    def pos(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def read(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise ValueError(
                f"read of {n} bytes at offset {self._pos} exceeds "
                f"buffer of {len(self._data)} bytes"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return bytes(out)

    def _unpack(self, fmt: str, size: int):
        value = struct.unpack_from(fmt, self._data, self._pos)[0]
        self._pos += size
        return value

    def read_u8(self) -> int:
        return self._unpack("<B", 1)

    def read_u16(self) -> int:
        return self._unpack("<H", 2)

    def read_u32(self) -> int:
        return self._unpack("<I", 4)

    def read_u64(self) -> int:
        return self._unpack("<Q", 8)

    def read_i64(self) -> int:
        return self._unpack("<q", 8)

    def read_f64(self) -> float:
        return self._unpack("<d", 8)

    def read_blob(self) -> bytes:
        return self.read(self.read_u32())

    def read_array(self, dtype, count: int) -> np.ndarray:
        dt = np.dtype(dtype)
        raw = self.read(dt.itemsize * count)
        return np.frombuffer(raw, dtype=dt).copy()


def min_bit_width(values: np.ndarray) -> int:
    """Smallest bit width able to represent every (unsigned) value.

    An all-zero or empty array needs width 0 (a valid degenerate pack).
    """
    if len(values) == 0:
        return 0
    max_value = int(values.max())
    if max_value < 0:
        raise ValueError("min_bit_width requires non-negative values")
    return int(max_value).bit_length()


def pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack non-negative integers into ``width`` bits each (LSB-first).

    Layout: value ``i`` occupies bits ``[i*width, (i+1)*width)`` of the
    output bit stream; within a value, bit 0 is the value's LSB. This
    fixed layout is what lets the deletion path mask individual slots
    without decoding the page (see :mod:`repro.core.deletion`).
    """
    values = np.asarray(values, dtype=np.uint64)
    if width == 0:
        return b""
    if width > 64:
        raise ValueError(f"bit width {width} exceeds 64")
    if len(values) == 0:
        return b""
    shifts = np.arange(width, dtype=np.uint64)
    bits = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def unpack_bits(data: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns uint64 array of ``count``."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    needed_bits = width * count
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little")
    if len(bits) < needed_bits:
        raise ValueError(
            f"bit buffer too small: have {len(bits)} bits, need {needed_bits}"
        )
    bits = bits[:needed_bits].reshape(count, width).astype(np.uint64)
    weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
    return (bits * weights[None, :]).sum(axis=1, dtype=np.uint64)


def set_packed_value(buf: bytearray, index: int, width: int, value: int) -> None:
    """Overwrite slot ``index`` of a packed-bit buffer in place.

    Used by deletion-compliance masking: a page encoded with a fixed bit
    width can have individual slots scrubbed without touching its
    neighbours, so the page size is trivially unchanged.
    """
    if width == 0:
        return
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    bit_start = index * width
    for k in range(width):
        bit = (value >> k) & 1
        pos = bit_start + k
        byte_idx, bit_idx = divmod(pos, 8)
        if bit:
            buf[byte_idx] |= 1 << bit_idx
        else:
            buf[byte_idx] &= ~(1 << bit_idx) & 0xFF


def get_packed_value(buf: bytes, index: int, width: int) -> int:
    """Read slot ``index`` of a packed-bit buffer without full decode."""
    if width == 0:
        return 0
    bit_start = index * width
    out = 0
    for k in range(width):
        pos = bit_start + k
        byte_idx, bit_idx = divmod(pos, 8)
        out |= ((buf[byte_idx] >> bit_idx) & 1) << k
    return out
