"""Shared low-level utilities: byte streams, bit packing, varints, hashing.

These are the primitives every encoding and the file format itself are
built from. They are deliberately dependency-free (numpy only) so that
the encoding catalog in :mod:`repro.encodings` stays self-contained.
"""

from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    pack_bits,
    unpack_bits,
    min_bit_width,
)
from repro.util.varint import (
    decode_varint,
    decode_varint_array,
    encode_varint,
    encode_varint_array,
    zigzag_decode,
    zigzag_encode,
)
from repro.util.hashing import hash64, hash_bytes

__all__ = [
    "ByteReader",
    "ByteWriter",
    "pack_bits",
    "unpack_bits",
    "min_bit_width",
    "encode_varint",
    "decode_varint",
    "encode_varint_array",
    "decode_varint_array",
    "zigzag_encode",
    "zigzag_decode",
    "hash64",
    "hash_bytes",
]
