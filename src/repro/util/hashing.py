"""64-bit hashing used by the footer column map and the Merkle tree.

``hash64`` is FNV-1a over UTF-8 names: deterministic across runs and
platforms (unlike Python's randomized ``hash``), which matters because
the hash is *persisted* in the footer's sorted column map.

``hash_bytes`` is the page/row-group checksum function backing the
Merkle tree (Fig 2). blake2b is in the stdlib, keyed to 8 bytes so the
tree nodes stay fixed-width in the footer.
"""

from __future__ import annotations

import hashlib

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def hash64(name: str | bytes) -> int:
    """FNV-1a 64-bit hash of a column name (stable across processes)."""
    data = name.encode("utf-8") if isinstance(name, str) else bytes(name)
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def hash_bytes(data: bytes) -> int:
    """64-bit content checksum for pages and Merkle nodes."""
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def combine_hashes(hashes: list[int]) -> int:
    """Parent node hash from ordered child hashes (Merkle combiner)."""
    buf = b"".join(h.to_bytes(8, "little") for h in hashes)
    return hash_bytes(buf)
