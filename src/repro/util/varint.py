"""LEB128 variable-length integers and zigzag mapping.

The paper's Varint encoding uses the "widely adopted LEB128 algorithm
... each byte holds 7 bits of the integer plus a continuation bit"
(§2.1). The deletion path relies on exactly this framing: masking an
encoded integer keeps every continuation MSB and zeroes the 7-bit
payloads, so the byte stream keeps its length and alignment.

``encode_varint_array``/``decode_varint_array`` are batch versions with
numpy-vectorized hot paths (the SFVInt-style "decode many at once"
kernels the paper cites [64]).
"""

from __future__ import annotations

import numpy as np

_MASK7 = np.uint64(0x7F)


def encode_varint(value: int) -> bytes:
    """LEB128-encode one unsigned integer (< 2**64)."""
    if value < 0:
        raise ValueError("varint encodes unsigned integers; zigzag first")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one LEB128 integer; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint longer than 64 bits")


def encode_varint_array(values: np.ndarray) -> bytes:
    """LEB128-encode an array of unsigned integers, vectorized.

    Strategy: compute each value's byte length, allocate the exact
    output, then scatter the 7-bit groups with numpy fancy indexing.
    """
    values = np.asarray(values, dtype=np.uint64)
    n = len(values)
    if n == 0:
        return b""
    # byte length of each varint = ceil(bit_length / 7), min 1
    lengths = np.ones(n, dtype=np.int64)
    tmp = values >> np.uint64(7)
    while tmp.any():
        lengths += (tmp > 0).astype(np.int64)
        tmp = tmp >> np.uint64(7)
    total = int(lengths.sum())
    out = np.zeros(total, dtype=np.uint8)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    max_len = int(lengths.max())
    remaining = values.copy()
    for k in range(max_len):
        active = lengths > k
        positions = starts[active] + k
        chunk = (remaining[active] & _MASK7).astype(np.uint8)
        has_more = lengths[active] > (k + 1)
        out[positions] = chunk | (has_more.astype(np.uint8) << 7)
        remaining = remaining >> np.uint64(7)
    return out.tobytes()


def decode_varint_array(data: bytes, count: int) -> tuple[np.ndarray, int]:
    """Decode ``count`` LEB128 integers; returns ``(values, bytes_used)``.

    Vectorized: find terminator bytes (MSB clear) to delimit integers,
    then accumulate 7-bit groups per integer.
    """
    if count == 0:
        return np.zeros(0, dtype=np.uint64), 0
    raw = np.frombuffer(data, dtype=np.uint8)
    is_terminator = (raw & 0x80) == 0
    term_positions = np.flatnonzero(is_terminator)
    if len(term_positions) < count:
        raise ValueError(
            f"truncated varint stream: {len(term_positions)} terminators, "
            f"need {count}"
        )
    ends = term_positions[:count] + 1
    starts = np.concatenate(([0], ends[:-1]))
    lengths = ends - starts
    max_len = int(lengths.max())
    if max_len > 10:
        raise ValueError("varint longer than 64 bits")
    values = np.zeros(count, dtype=np.uint64)
    for k in range(max_len):
        active = lengths > k
        chunk = raw[starts[active] + k].astype(np.uint64) & _MASK7
        values[active] |= chunk << np.uint64(7 * k)
    return values, int(ends[-1])


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed int64 -> unsigned uint64 (0,-1,1,-2 -> 0,1,2,3)."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> np.uint64(1)).astype(np.int64)) ^ -(
        (values & np.uint64(1)).astype(np.int64)
    )
