"""Floating-point storage quantization (paper §2.4, Fig 6).

Implements every format in Fig 6's table:

============  ====  ========  ========
format        sign  exponent  fraction
============  ====  ========  ========
IEEE FP64     1     11        52
IEEE FP32     1     8         23
NVIDIA TF32   1     8         10
IEEE FP16     1     5         10
Google BF16   1     8         7
NVIDIA FP8    1     5         2   (E5M2)
NVIDIA FP8    1     4         3   (E4M3)
============  ====  ========  ========

FP16 uses numpy's native float16. BF16/TF32 are round-to-nearest-even
bit truncations of FP32. FP8 E4M3/E5M2 quantize by nearest-representable
lookup over the full 256-value code space (OCP FP8 semantics: E4M3 has
no infinities and a single NaN pattern; E5M2 is IEEE-like), which makes
round-trip behaviour exact by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class FloatFormat(enum.Enum):
    FP64 = "fp64"
    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP8_E4M3 = "fp8_e4m3"
    FP8_E5M2 = "fp8_e5m2"


#: Fig 6 bit budgets: format -> (sign, exponent, fraction) bits
BIT_LAYOUT = {
    FloatFormat.FP64: (1, 11, 52),
    FloatFormat.FP32: (1, 8, 23),
    FloatFormat.TF32: (1, 8, 10),
    FloatFormat.FP16: (1, 5, 10),
    FloatFormat.BF16: (1, 8, 7),
    FloatFormat.FP8_E5M2: (1, 5, 2),
    FloatFormat.FP8_E4M3: (1, 4, 3),
}

#: storage bytes per value (TF32 is stored in 19 bits conceptually but
#: materialized as 4 bytes, like the hardware register format)
STORAGE_BYTES = {
    FloatFormat.FP64: 8,
    FloatFormat.FP32: 4,
    FloatFormat.TF32: 4,
    FloatFormat.FP16: 2,
    FloatFormat.BF16: 2,
    FloatFormat.FP8_E4M3: 1,
    FloatFormat.FP8_E5M2: 1,
}


def _build_fp8_table(exp_bits: int, man_bits: int, e4m3: bool) -> np.ndarray:
    """All non-negative representable values of an FP8 format, by code."""
    bias = (1 << (exp_bits - 1)) - 1
    values = []
    for code in range(128):
        e = code >> man_bits
        m = code & ((1 << man_bits) - 1)
        if e == 0:  # subnormal
            v = (m / (1 << man_bits)) * 2.0 ** (1 - bias)
        elif e4m3:
            if e == (1 << exp_bits) - 1 and m == (1 << man_bits) - 1:
                v = np.nan  # single NaN pattern, no infinity
            else:
                v = (1 + m / (1 << man_bits)) * 2.0 ** (e - bias)
        else:  # E5M2: IEEE-like top exponent
            if e == (1 << exp_bits) - 1:
                v = np.inf if m == 0 else np.nan
            else:
                v = (1 + m / (1 << man_bits)) * 2.0 ** (e - bias)
        values.append(v)
    return np.array(values, dtype=np.float64)


_E4M3_TABLE = _build_fp8_table(4, 3, e4m3=True)
_E5M2_TABLE = _build_fp8_table(5, 2, e4m3=False)


def _fp8_encode(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Nearest-representable quantization to uint8 codes."""
    x = np.asarray(values, dtype=np.float64)
    finite_codes = np.flatnonzero(np.isfinite(table))
    finite_vals = table[finite_codes]
    order = np.argsort(finite_vals)
    sorted_vals = finite_vals[order]
    sorted_codes = finite_codes[order]
    mags = np.abs(x)
    idx = np.searchsorted(sorted_vals, mags)
    idx = np.clip(idx, 1, len(sorted_vals) - 1)
    left = sorted_vals[idx - 1]
    right = sorted_vals[idx]
    pick_right = (mags - left) > (right - mags)
    chosen = np.where(pick_right, idx, idx - 1)
    # saturate overflow to max finite (OCP saturating conversion)
    over = mags > sorted_vals[-1]
    chosen[over] = len(sorted_vals) - 1
    codes = sorted_codes[chosen].astype(np.uint8)
    nan_mask = np.isnan(x)
    if nan_mask.any():
        nan_code = int(np.flatnonzero(np.isnan(table))[0])
        codes[nan_mask] = nan_code
    inf_mask = np.isinf(x)
    if inf_mask.any():
        inf_positions = np.flatnonzero(np.isinf(table))
        if len(inf_positions):
            codes[inf_mask] = int(inf_positions[0])
        else:  # E4M3 saturates
            codes[inf_mask] = int(sorted_codes[-1])
    sign = (np.signbit(x)).astype(np.uint8) << 7
    return codes | sign


def _fp8_decode(codes: np.ndarray, table: np.ndarray) -> np.ndarray:
    codes = np.asarray(codes, dtype=np.uint8)
    mag = table[codes & 0x7F]
    sign = np.where(codes & 0x80, -1.0, 1.0)
    return (mag * sign).astype(np.float32)


def _round_keep_top_bits(values: np.ndarray, keep_mantissa: int) -> np.ndarray:
    """FP32 with the mantissa rounded (RNE) to ``keep_mantissa`` bits."""
    x = np.asarray(values, dtype=np.float32)
    bits = x.view(np.uint32)
    drop = 23 - keep_mantissa
    half = np.uint32(1 << (drop - 1))
    lsb = (bits >> np.uint32(drop)) & np.uint32(1)
    rounding = half - np.uint32(1) + lsb
    out = (bits + rounding) & np.uint32(~((1 << drop) - 1) & 0xFFFFFFFF)
    # NaN payloads must stay NaN
    nan_mask = np.isnan(x)
    out = out.view(np.float32).copy()
    out[nan_mask] = np.nan
    return out


def quantize(values, fmt: FloatFormat):
    """Quantize a float array to the storage representation of ``fmt``.

    Returns the array a Bullion file would physically store: float16
    for FP16, uint16 for BF16, uint8 codes for FP8, float32 for
    TF32 (mantissa-truncated) and FP32, float64 for FP64.
    """
    x = np.asarray(values)
    if fmt == FloatFormat.FP64:
        return x.astype(np.float64)
    if fmt == FloatFormat.FP32:
        return x.astype(np.float32)
    if fmt == FloatFormat.FP16:
        with np.errstate(over="ignore"):  # overflow -> inf is the IEEE path
            return x.astype(np.float16)
    if fmt == FloatFormat.TF32:
        return _round_keep_top_bits(x.astype(np.float32), 10)
    if fmt == FloatFormat.BF16:
        bits = x.astype(np.float32).view(np.uint32)
        rounding = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
        out = ((bits + rounding) >> np.uint32(16)).astype(np.uint16)
        nan_mask = np.isnan(x.astype(np.float32))
        out[nan_mask] = np.uint16(0x7FC0)  # canonical bf16 NaN
        return out
    if fmt == FloatFormat.FP8_E4M3:
        return _fp8_encode(x, _E4M3_TABLE)
    if fmt == FloatFormat.FP8_E5M2:
        return _fp8_encode(x, _E5M2_TABLE)
    raise ValueError(f"unknown format {fmt}")


def dequantize(stored, fmt: FloatFormat) -> np.ndarray:
    """Widen a stored representation back to float32/float64."""
    if fmt == FloatFormat.FP64:
        return np.asarray(stored, dtype=np.float64)
    if fmt in (FloatFormat.FP32, FloatFormat.TF32):
        return np.asarray(stored, dtype=np.float32)
    if fmt == FloatFormat.FP16:
        return np.asarray(stored, dtype=np.float16).astype(np.float32)
    if fmt == FloatFormat.BF16:
        bits = np.asarray(stored, dtype=np.uint16).astype(np.uint32) << np.uint32(16)
        return bits.view(np.float32)
    if fmt == FloatFormat.FP8_E4M3:
        return _fp8_decode(stored, _E4M3_TABLE)
    if fmt == FloatFormat.FP8_E5M2:
        return _fp8_decode(stored, _E5M2_TABLE)
    raise ValueError(f"unknown format {fmt}")


@dataclass(frozen=True)
class QuantizationError:
    """Error profile of quantizing a column to a given format."""

    fmt: FloatFormat
    max_abs_error: float
    mean_abs_error: float
    mean_relative_error: float
    storage_ratio: float  # stored bytes / fp32 bytes

    @staticmethod
    def measure(values, fmt: FloatFormat) -> "QuantizationError":
        x = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(x)
        back = dequantize(quantize(x, fmt), fmt).astype(np.float64)
        err = np.abs(back[finite] - x[finite])
        denom = np.maximum(np.abs(x[finite]), 1e-30)
        return QuantizationError(
            fmt=fmt,
            max_abs_error=float(err.max()) if err.size else 0.0,
            mean_abs_error=float(err.mean()) if err.size else 0.0,
            mean_relative_error=float((err / denom).mean()) if err.size else 0.0,
            storage_ratio=STORAGE_BYTES[fmt] / 4.0,
        )
