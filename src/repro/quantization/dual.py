"""Dual-column FP32 decomposition (paper §2.4, third opportunity).

"Some FP32 features are crucial for business-critical models. To
mitigate potential accuracy degradation from FP16 quantization while
maintaining computational efficiency, it is possible to use a
dual-column storage strategy: decomposing FP32 features into two FP16
representations. This approach enables business-critical models to
reconstruct original FP32 precision through 1:1 join operations during
feature retrieval, while allowing other models to utilize FP16
features."

Two decompositions are provided:

* :func:`split_bits` / :func:`join_bits` — the hi/lo 16-bit halves of
  the raw FP32 pattern. Reconstruction is **bit-exact**; the hi half is
  exactly the BF16 truncation of the value, so non-critical models can
  read the hi column alone as a BF16 feature.
* :func:`split_numeric` / :func:`join_numeric` — hi = fp16(x),
  lo = fp16(x - hi). The hi column alone is a proper IEEE FP16 feature;
  the join recovers ~21 bits of precision (measured by the tests).
"""

from __future__ import annotations

import numpy as np


def split_bits(values) -> tuple[np.ndarray, np.ndarray]:
    """FP32 -> (hi uint16 = BF16 truncation, lo uint16 = residual bits)."""
    bits = np.asarray(values, dtype=np.float32).view(np.uint32)
    hi = (bits >> np.uint32(16)).astype(np.uint16)
    lo = (bits & np.uint32(0xFFFF)).astype(np.uint16)
    return hi, lo


def join_bits(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Bit-exact FP32 reconstruction (the 1:1 join)."""
    bits = (
        np.asarray(hi, dtype=np.uint32) << np.uint32(16)
    ) | np.asarray(lo, dtype=np.uint32)
    return bits.view(np.float32)


def hi_as_bf16_float(hi: np.ndarray) -> np.ndarray:
    """Read the hi column alone as a degraded (BF16) float feature."""
    bits = np.asarray(hi, dtype=np.uint16).astype(np.uint32) << np.uint32(16)
    return bits.view(np.float32)


def split_numeric(values) -> tuple[np.ndarray, np.ndarray]:
    """FP32 -> (fp16 head, fp16 residual); head is directly usable."""
    x = np.asarray(values, dtype=np.float32)
    hi = x.astype(np.float16)
    with np.errstate(invalid="ignore", over="ignore"):
        lo = (x - hi.astype(np.float32)).astype(np.float16)
    return hi, lo


def join_numeric(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Approximate FP32 reconstruction from the numeric split."""
    return hi.astype(np.float32) + lo.astype(np.float32)
