"""Mixed-precision quantization policies (paper §2.4).

"Different features and embeddings exhibit varying degrees of precision
sensitivity, which implies that a mixed-precision quantization strategy
should be used that can be dynamically tuned at the granularity of
individual features."

:class:`QuantizationPolicy` assigns a :class:`FloatFormat` per feature.
:func:`auto_assign` derives a policy from per-feature sensitivity
scores (e.g. feature-importance from the ranking model): the most
sensitive tier keeps FP32, the middle tier gets FP16/BF16, the long
tail drops to FP8 — and the measured storage savings are exactly what
"can be strategically reinvested to enhance model capabilities".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quantization.floats import (
    STORAGE_BYTES,
    FloatFormat,
    QuantizationError,
    dequantize,
    quantize,
)


@dataclass
class QuantizationPolicy:
    """feature name -> storage format, with a default for the rest."""

    assignments: dict[str, FloatFormat] = field(default_factory=dict)
    default: FloatFormat = FloatFormat.FP32

    def format_for(self, feature: str) -> FloatFormat:
        return self.assignments.get(feature, self.default)

    def apply(self, columns: dict[str, np.ndarray]) -> "QuantizedTable":
        stored = {}
        formats = {}
        for name, values in columns.items():
            fmt = self.format_for(name)
            stored[name] = quantize(values, fmt)
            formats[name] = fmt
        return QuantizedTable(stored=stored, formats=formats)


@dataclass
class QuantizedTable:
    """Quantized feature columns plus their formats and savings."""

    stored: dict[str, np.ndarray]
    formats: dict[str, FloatFormat]

    def read(self, feature: str) -> np.ndarray:
        return dequantize(self.stored[feature], self.formats[feature])

    def stored_bytes(self) -> int:
        return sum(
            len(v) * STORAGE_BYTES[self.formats[k]]
            for k, v in self.stored.items()
        )

    def fp32_bytes(self) -> int:
        return sum(4 * len(v) for v in self.stored.values())

    def savings(self) -> float:
        """1 - stored/fp32; the headline §2.4 number."""
        fp32 = self.fp32_bytes()
        return 0.0 if fp32 == 0 else 1.0 - self.stored_bytes() / fp32


def auto_assign(
    sensitivities: dict[str, float],
    critical_quantile: float = 0.9,
    mid_quantile: float = 0.5,
    mid_format: FloatFormat = FloatFormat.FP16,
    tail_format: FloatFormat = FloatFormat.FP8_E4M3,
) -> QuantizationPolicy:
    """Tiered policy from per-feature sensitivity scores.

    Features above the ``critical_quantile`` of the sensitivity
    distribution stay FP32; those above ``mid_quantile`` get
    ``mid_format``; the rest get ``tail_format``.
    """
    if not sensitivities:
        return QuantizationPolicy()
    scores = np.array(list(sensitivities.values()), dtype=np.float64)
    hi = float(np.quantile(scores, critical_quantile))
    mid = float(np.quantile(scores, mid_quantile))
    assignments = {}
    for name, score in sensitivities.items():
        if score >= hi:
            assignments[name] = FloatFormat.FP32
        elif score >= mid:
            assignments[name] = mid_format
        else:
            assignments[name] = tail_format
    return QuantizationPolicy(assignments=assignments)


def error_budget_assign(
    columns: dict[str, np.ndarray],
    max_relative_error: float,
    candidates: tuple[FloatFormat, ...] = (
        FloatFormat.FP8_E4M3,
        FloatFormat.BF16,
        FloatFormat.FP16,
        FloatFormat.FP32,
    ),
) -> QuantizationPolicy:
    """Pick, per feature, the cheapest format within an error budget.

    Candidates are tried cheapest-first; the first whose measured mean
    relative error on the actual data is within budget wins.
    """
    assignments = {}
    for name, values in columns.items():
        chosen = candidates[-1]
        for fmt in candidates:
            err = QuantizationError.measure(values, fmt)
            if err.mean_relative_error <= max_relative_error:
                chosen = fmt
                break
        assignments[name] = chosen
    return QuantizationPolicy(assignments=assignments)
