"""Storage quantization (paper §2.4, Fig 6).

Float formats (FP64/FP32/TF32/FP16/BF16/FP8), lossless integer
narrowing and ID re-coding, per-feature mixed-precision policies, and
the dual-column FP32 = 2 x 16-bit decomposition.
"""

from repro.quantization.dual import (
    hi_as_bf16_float,
    join_bits,
    join_numeric,
    split_bits,
    split_numeric,
)
from repro.quantization.floats import (
    BIT_LAYOUT,
    STORAGE_BYTES,
    FloatFormat,
    QuantizationError,
    dequantize,
    quantize,
)
from repro.quantization.integers import (
    HashFold,
    IdRemap,
    downcast,
    smallest_signed_dtype,
)
from repro.quantization.policy import (
    QuantizationPolicy,
    QuantizedTable,
    auto_assign,
    error_budget_assign,
)

__all__ = [
    "FloatFormat",
    "QuantizationError",
    "BIT_LAYOUT",
    "STORAGE_BYTES",
    "quantize",
    "dequantize",
    "downcast",
    "smallest_signed_dtype",
    "IdRemap",
    "HashFold",
    "QuantizationPolicy",
    "QuantizedTable",
    "auto_assign",
    "error_budget_assign",
    "split_bits",
    "join_bits",
    "split_numeric",
    "join_numeric",
    "hi_as_bf16_float",
]
