"""Integer storage quantization (paper §2.4).

"For integer features, quantization provides lossless compression by
rehashing the input space to a smaller range (e.g., INT8, INT16,
INT32). For low cardinality columns, column stores can further leverage
bit-packed encoding and RLE to achieve higher compression ratios."

Two mechanisms:

* :func:`downcast` — range-checked lossless narrowing (INT64 -> the
  smallest signed type that holds min..max);
* :class:`IdRemap` — the "rehash the input space" path for sparse ID
  features: build a dense code space for the IDs actually present
  (lossless, dictionary-backed) so a 64-bit ID column whose live
  cardinality is 40k fits in INT16 codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_SIGNED_LIMITS = [
    (np.int8, -(2**7), 2**7 - 1),
    (np.int16, -(2**15), 2**15 - 1),
    (np.int32, -(2**31), 2**31 - 1),
    (np.int64, -(2**63), 2**63 - 1),
]


def smallest_signed_dtype(min_value: int, max_value: int):
    """Narrowest signed dtype covering [min_value, max_value]."""
    for dtype, lo, hi in _SIGNED_LIMITS:
        if min_value >= lo and max_value <= hi:
            return np.dtype(dtype)
    raise ValueError("range exceeds int64")


def downcast(values: np.ndarray) -> np.ndarray:
    """Lossless narrowing of an integer column to its smallest dtype."""
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"downcast expects integers, got {arr.dtype}")
    if len(arr) == 0:
        return arr.astype(np.int8)
    dtype = smallest_signed_dtype(int(arr.min()), int(arr.max()))
    return arr.astype(dtype)


@dataclass
class IdRemap:
    """Dense re-coding of a sparse ID space (lossless via dictionary).

    ``codes`` are contiguous ``0..cardinality-1`` stored in the
    narrowest dtype; ``dictionary`` maps code -> original id.
    """

    dictionary: np.ndarray
    codes: np.ndarray

    @staticmethod
    def build(values) -> "IdRemap":
        arr = np.asarray(values, dtype=np.int64)
        dictionary, inverse = np.unique(arr, return_inverse=True)
        cardinality = len(dictionary)
        codes = downcast(inverse.astype(np.int64)) if cardinality else inverse
        return IdRemap(dictionary=dictionary, codes=codes)

    def restore(self) -> np.ndarray:
        """Original ids back (bit-exact)."""
        return self.dictionary[self.codes.astype(np.int64)]

    @property
    def cardinality(self) -> int:
        return len(self.dictionary)

    @property
    def code_bytes(self) -> int:
        return self.codes.dtype.itemsize

    def storage_savings(self) -> float:
        """Bytes(codes)/bytes(original), excluding the shared dictionary.

        The dictionary is amortized across every file referencing the
        feature (it lives with the embedding table), matching how
        production ID remapping is deployed.
        """
        return self.code_bytes / 8.0


@dataclass(frozen=True)
class HashFold:
    """Lossy "hash to smaller range" alternative, with collision stats.

    When the live ID space is unbounded (new ads appear constantly), a
    stateless fold ``id % (2^bits)`` avoids dictionary maintenance at
    the cost of collisions; the collision rate is what a feature owner
    reviews before enabling it.
    """

    bits: int
    codes: np.ndarray
    collision_rate: float

    @staticmethod
    def build(values, bits: int) -> "HashFold":
        if not 1 <= bits <= 32:
            raise ValueError("bits must be in [1, 32]")
        arr = np.asarray(values, dtype=np.uint64)
        # multiplicative mix then fold, like feature-hashing tricks
        mixed = arr * np.uint64(0x9E3779B97F4A7C15)
        codes = (mixed >> np.uint64(64 - bits)).astype(np.uint32)
        uniq_in = len(np.unique(arr))
        uniq_out = len(np.unique(codes))
        rate = 0.0 if uniq_in == 0 else 1.0 - uniq_out / uniq_in
        return HashFold(bits=bits, codes=codes, collision_rate=rate)
