"""Dictionary encoding with a reserved deletion-mask entry.

"Compresses data by maintaining a dictionary of unique values and
storing data as indices referencing this dictionary" (Table 2). Two
Bullion-specific twists from §2.1:

* **code 0 is reserved as the mask entry.** Deleting a value rewrites
  its code to 0 in place — the dictionary itself is never touched, and
  because codes are fixed-width bit-packed the page size is unchanged.
* the codes sub-column is a nested blob, so it can itself be RLE'd or
  bit-packed by a cascade ("It also allows the integer codes in the
  data pages to be further compressed using encoding techniques such
  as RLE").
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_bytes_list,
    as_int64,
    decode_child,
    encode_child,
    infer_kind,
    register,
)
from repro.encodings.bitpack import FixedBitWidth
from repro.encodings.trivial import Trivial
from repro.util.bitio import ByteReader, ByteWriter

#: the reserved dictionary slot used to mask deleted values
MASK_CODE = 0

_TAG_INT = 0
_TAG_BYTES = 1


@register
class Dictionary(Encoding):
    """Dictionary-encode int64 or bytes values; codes start at 1."""

    id = 5
    name = "dictionary"
    kinds = frozenset({Kind.INT, Kind.BYTES})

    def __init__(self, codes_child: Encoding | None = None) -> None:
        # fixed base 0 keeps the reserved MASK_CODE representable so the
        # deletion path can rewrite codes in place (§2.1)
        self._codes_child = (
            codes_child
            if codes_child is not None
            else FixedBitWidth(fixed_base=0)
        )

    def encode(self, values) -> bytes:
        kind = infer_kind(values)
        writer = ByteWriter()
        if kind == Kind.INT:
            arr = as_int64(values)
            unique, inverse = np.unique(arr, return_inverse=True)
            writer.write_u8(_TAG_INT)
            encode_child(writer, unique.astype(np.int64), Trivial())
        elif kind == Kind.BYTES:
            items = as_bytes_list(values)
            unique_list = sorted(set(items))
            index = {v: i for i, v in enumerate(unique_list)}
            inverse = np.fromiter(
                (index[v] for v in items), dtype=np.int64, count=len(items)
            )
            writer.write_u8(_TAG_BYTES)
            encode_child(writer, unique_list, Trivial())
        else:  # pragma: no cover - guarded by kinds
            raise EncodingError(f"dictionary cannot encode {kind}")
        codes = inverse.astype(np.int64) + 1  # shift: 0 is the mask entry
        encode_child(writer, codes, self._codes_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        tag = reader.read_u8()
        dictionary = decode_child(reader)
        codes = decode_child(reader).astype(np.int64)
        masked = codes == MASK_CODE
        indices = np.where(masked, 1, codes) - 1  # masked -> entry 0 then fix
        if tag == _TAG_INT:
            if len(dictionary) == 0:
                return np.zeros(0, dtype=np.int64)
            out = dictionary[indices]
            out[masked] = 0  # mask value for ints is 0
            return out.astype(np.int64)
        out_list = [dictionary[i] for i in indices]
        for i in np.flatnonzero(masked):
            out_list[int(i)] = b""  # mask value for bytes is empty
        return out_list

    @staticmethod
    def decode_codes(reader: ByteReader) -> tuple[int, object, np.ndarray]:
        """Decode to (tag, dictionary, raw codes) — used by deletion."""
        tag = reader.read_u8()
        dictionary = decode_child(reader)
        codes = decode_child(reader).astype(np.int64)
        return tag, dictionary, codes
