"""The modular, composable encoding interface (paper §2.6).

The paper's complaint about Parquet/ORC is that they "tightly couple
various encoding methods ... without providing unified interfaces,
making it impossible to utilize these encoding schemes independently".
Bullion's answer — and this module — is a catalog of encodings behind
one interface:

* every encoded blob is **self-describing**: one id byte followed by an
  encoding-specific payload, so any decoder can decode any blob;
* encodings that produce sub-columns (RLE's values/counts, Dictionary's
  dictionary/codes, Nullable's bitmap/values, ...) store each sub-column
  as a **nested blob**, so cascading composition falls out naturally:
  ``RLE(values=Dictionary(codes=FixedBitWidth()), counts=Varint())`` is
  just a tree of constructor arguments;
* :func:`encode_blob` / :func:`decode_blob` are the only entry points
  the file format needs.

Value kinds
-----------
Encodings operate on one of six value kinds:

========== ==========================================================
INT        ``np.ndarray`` of int64
FLOAT      ``np.ndarray`` of float64/float32/float16 (dtype preserved)
BYTES      ``list[bytes]``
BOOL       ``np.ndarray`` of bool
LIST_INT   ``list[np.ndarray(int64)]`` (e.g. ``list<int64>`` features)
LIST_FLOAT ``list[np.ndarray(float32/float64)]``
========== ==========================================================
"""

from __future__ import annotations

import enum
import struct
import zlib
from abc import ABC, abstractmethod

import numpy as np

from repro.util.bitio import ByteReader, ByteWriter


class Kind(enum.Enum):
    """Logical value kind an encoding accepts."""

    INT = "int"
    FLOAT = "float"
    BYTES = "bytes"
    BOOL = "bool"
    LIST_INT = "list_int"
    LIST_FLOAT = "list_float"
    LIST_BYTES = "list_bytes"
    LIST_LIST_INT = "list_list_int"


class EncodingError(ValueError):
    """Raised when values cannot be encoded/decoded by a scheme."""


_FLOAT_DTYPE_CODES = {
    np.dtype(np.float64): 0,
    np.dtype(np.float32): 1,
    np.dtype(np.float16): 2,
}
_FLOAT_DTYPE_BY_CODE = {v: k for k, v in _FLOAT_DTYPE_CODES.items()}


def float_dtype_code(dtype) -> int:
    """Stable on-disk code for a float dtype (payloads must round-trip it)."""
    try:
        return _FLOAT_DTYPE_CODES[np.dtype(dtype)]
    except KeyError:
        raise EncodingError(f"unsupported float dtype {dtype}") from None


def float_dtype_from_code(code: int):
    try:
        return _FLOAT_DTYPE_BY_CODE[code]
    except KeyError:
        raise EncodingError(f"unknown float dtype code {code}") from None


def infer_kind(values) -> Kind:
    """Classify a Python value container into a :class:`Kind`."""
    if isinstance(values, np.ndarray):
        if values.dtype == np.bool_:
            return Kind.BOOL
        if np.issubdtype(values.dtype, np.integer):
            return Kind.INT
        if np.issubdtype(values.dtype, np.floating):
            return Kind.FLOAT
        raise EncodingError(f"unsupported array dtype {values.dtype}")
    if isinstance(values, (list, tuple)):
        if len(values) == 0:
            return Kind.BYTES  # degenerate; all list kinds handle empty
        first = values[0]
        if isinstance(first, (bytes, bytearray)) or first is None:
            return Kind.BYTES
        if isinstance(first, np.ndarray):
            if np.issubdtype(first.dtype, np.integer):
                return Kind.LIST_INT
            if np.issubdtype(first.dtype, np.floating):
                return Kind.LIST_FLOAT
        if isinstance(first, (list, tuple)):
            # peek into the first non-empty inner sequence
            probe = next((row for row in values if len(row)), None)
            inner = probe[0] if probe is not None else 0
            if isinstance(inner, (bytes, bytearray)):
                return Kind.LIST_BYTES
            if isinstance(inner, float):
                return Kind.LIST_FLOAT
            if isinstance(inner, (list, tuple, np.ndarray)):
                return Kind.LIST_LIST_INT
            return Kind.LIST_INT
        raise EncodingError(f"unsupported list element {type(first)!r}")
    raise EncodingError(f"unsupported container {type(values)!r}")


class Encoding(ABC):
    """One scheme from the Table 2 catalog.

    Subclasses define a class-level ``id`` (stable on-disk byte), a
    ``name`` and the set of ``kinds`` they accept. ``encode`` emits the
    payload *without* the id byte; ``decode`` parses it back. Blob-level
    framing lives in :func:`encode_blob`/:func:`decode_blob`.
    """

    id: int = -1
    name: str = "?"
    kinds: frozenset = frozenset()

    @abstractmethod
    def encode(self, values) -> bytes:
        """Encode values of a supported kind to the payload bytes."""

    @classmethod
    @abstractmethod
    def decode(cls, reader: ByteReader):
        """Decode a payload (positioned after the id byte) to values."""

    def can_encode(self, values) -> bool:
        """Cheap check: is this scheme applicable to these values?"""
        try:
            return infer_kind(values) in self.kinds
        except EncodingError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


_REGISTRY: dict[int, type[Encoding]] = {}
_BY_NAME: dict[str, type[Encoding]] = {}


def register(cls: type[Encoding]) -> type[Encoding]:
    """Class decorator adding a scheme to the global catalog."""
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise RuntimeError(
            f"encoding id {cls.id} already registered to "
            f"{_REGISTRY[cls.id].__name__}"
        )
    _REGISTRY[cls.id] = cls
    _BY_NAME[cls.name] = cls
    return cls


def encoding_by_id(enc_id: int) -> type[Encoding]:
    try:
        return _REGISTRY[enc_id]
    except KeyError:
        raise EncodingError(f"unknown encoding id {enc_id}") from None


def encoding_by_name(name: str) -> type[Encoding]:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise EncodingError(f"unknown encoding {name!r}") from None


def catalog() -> dict[str, type[Encoding]]:
    """Name -> class mapping of every registered scheme (Table 2)."""
    return dict(_BY_NAME)


def encode_blob(values, encoding: Encoding) -> bytes:
    """Encode values into a self-describing blob (id byte + payload)."""
    payload = encoding.encode(values)
    return bytes([encoding.id]) + payload


def decode_blob(data: bytes):
    """Decode a self-describing blob produced by :func:`encode_blob`.

    Decoders promise ``EncodingError`` (a ``ValueError``) on corrupt
    input; the except clause converts the incidental exception types a
    mangled payload can still trigger deep inside a kernel (bad index,
    bogus struct field, absurd allocation size) so callers only ever
    handle one failure type and never see a decoder crash class leak.
    """
    if len(data) == 0:
        raise EncodingError("empty blob")
    cls = encoding_by_id(data[0])
    try:
        return cls.decode(ByteReader(data, offset=1))
    except EncodingError:
        raise
    except (
        IndexError,
        KeyError,
        OverflowError,
        struct.error,
        zlib.error,
        MemoryError,
    ) as exc:
        raise EncodingError(
            f"corrupt {cls.name} blob: {type(exc).__name__}: {exc}"
        ) from exc


def encode_child(writer: ByteWriter, values, encoding: Encoding) -> None:
    """Write a length-prefixed nested blob (sub-column of a parent)."""
    writer.write_blob(encode_blob(values, encoding))


def decode_child(reader: ByteReader):
    """Read back a nested blob written by :func:`encode_child`."""
    return decode_blob(reader.read_blob())


def as_int64(values) -> np.ndarray:
    """Validate/coerce INT-kind input to an int64 array."""
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise EncodingError(f"expected integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def as_float(values) -> np.ndarray:
    """Validate FLOAT-kind input, preserving its dtype."""
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.floating):
        raise EncodingError(f"expected floats, got dtype {arr.dtype}")
    if np.dtype(arr.dtype) not in _FLOAT_DTYPE_CODES:
        arr = arr.astype(np.float64)
    return arr


def as_bytes_list(values) -> list[bytes]:
    """Validate BYTES-kind input (list of bytes objects)."""
    out = []
    for item in values:
        if not isinstance(item, (bytes, bytearray)):
            raise EncodingError(f"expected bytes, got {type(item)!r}")
        out.append(bytes(item))
    return out
