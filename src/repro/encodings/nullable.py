"""Null handling: Nullable, SparseBool and Sentinel encodings.

Table 2:
* Nullable — "handles null values using a two-subcolumn structure: one
  for null indicators and another for non-null values";
* SparseBool — "an optimized bitmap encoding for boolean values,
  typically used as a subcolumn in Nullable encoding";
* Sentinel — "represents null values by designating an unused value as
  a sentinel marker, encoding the data in a single subcolumn".

Nullable values travel as ``numpy.ma.MaskedArray`` for INT/FLOAT kinds
and as ``list[bytes | None]`` for BYTES.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    decode_child,
    encode_child,
    register,
)
from repro.encodings.trivial import Trivial
from repro.util.bitio import ByteReader, ByteWriter
from repro.util.varint import decode_varint_array, encode_varint_array

_MODE_BITMAP = 0
_MODE_POSITIONS = 1


@register
class SparseBool(Encoding):
    """Adaptive boolean encoding: dense bitmap or sparse position list.

    Chooses whichever representation is smaller: a packed bitmap
    (n/8 bytes) or delta-varint positions of the set bits.
    """

    id = 10
    name = "sparse_bool"
    kinds = frozenset({Kind.BOOL})

    def encode(self, values) -> bytes:
        arr = np.asarray(values)
        if arr.dtype != np.bool_:
            raise EncodingError("sparse_bool expects a boolean array")
        writer = ByteWriter()
        writer.write_u64(len(arr))
        positions = np.flatnonzero(arr).astype(np.uint64)
        pos_payload = encode_varint_array(
            np.diff(positions, prepend=np.uint64(0))
            if len(positions)
            else positions
        )
        bitmap_size = (len(arr) + 7) // 8
        if len(pos_payload) + 8 < bitmap_size:
            writer.write_u8(_MODE_POSITIONS)
            writer.write_u64(len(positions))
            writer.write(pos_payload)
        else:
            writer.write_u8(_MODE_BITMAP)
            writer.write(np.packbits(arr, bitorder="little").tobytes())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        mode = reader.read_u8()
        if mode == _MODE_BITMAP:
            raw = reader.read((count + 7) // 8)
            bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                                 bitorder="little")
            return bits[:count].astype(np.bool_)
        if mode == _MODE_POSITIONS:
            n_set = reader.read_u64()
            data = reader.read(reader.remaining())
            deltas, used = decode_varint_array(data, n_set)
            reader._pos -= len(data) - used
            out = np.zeros(count, dtype=np.bool_)
            if n_set:
                out[np.cumsum(deltas.astype(np.int64))] = True
            return out
        raise EncodingError(f"bad sparse_bool mode {mode}")


def _split_nullable(values):
    """Normalize nullable input -> (null_mask: bool array, dense values)."""
    if isinstance(values, np.ma.MaskedArray):
        mask = np.ma.getmaskarray(values).copy()
        dense = np.asarray(values.filled(0))[~mask]
        return mask, dense
    if isinstance(values, (list, tuple)):
        mask = np.array([v is None for v in values], dtype=np.bool_)
        dense = [v for v in values if v is not None]
        return mask, dense
    raise EncodingError(
        "nullable input must be a MaskedArray or a list with None entries"
    )


@register
class Nullable(Encoding):
    """Null bitmap sub-column + dense non-null values sub-column."""

    id = 9
    name = "nullable"
    kinds = frozenset({Kind.INT, Kind.FLOAT, Kind.BYTES})

    def __init__(
        self,
        values_child: Encoding | None = None,
        nulls_child: Encoding | None = None,
    ) -> None:
        self._values_child = values_child if values_child is not None else Trivial()
        self._nulls_child = nulls_child if nulls_child is not None else SparseBool()

    def encode(self, values) -> bytes:
        mask, dense = _split_nullable(values)
        writer = ByteWriter()
        is_bytes = isinstance(dense, list)
        writer.write_u8(1 if is_bytes else 0)
        encode_child(writer, mask, self._nulls_child)
        encode_child(writer, dense, self._values_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        is_bytes = reader.read_u8() == 1
        mask = decode_child(reader)
        dense = decode_child(reader)
        if is_bytes:
            out: list[bytes | None] = [None] * len(mask)
            it = iter(dense)
            for i in np.flatnonzero(~mask):
                out[int(i)] = next(it)
            return out
        full = np.zeros(len(mask), dtype=np.asarray(dense).dtype)
        full[~mask] = dense
        return np.ma.MaskedArray(full, mask=mask)


@register
class Sentinel(Encoding):
    """Single sub-column nullable encoding using an unused sentinel.

    Only valid for INT columns where some value is provably unused; we
    pick ``max + 1`` (or int64 min for all-range columns, raising if the
    domain is saturated).
    """

    id = 11
    name = "sentinel"
    kinds = frozenset({Kind.INT})

    def __init__(self, values_child: Encoding | None = None) -> None:
        self._values_child = values_child if values_child is not None else Trivial()

    def encode(self, values) -> bytes:
        if not isinstance(values, np.ma.MaskedArray):
            raise EncodingError("sentinel expects a masked int array")
        mask = np.ma.getmaskarray(values)
        dense = np.asarray(values.filled(0)).astype(np.int64)
        present = dense[~mask]
        if len(present) == 0:
            sentinel = 0
        elif int(present.max()) < np.iinfo(np.int64).max:
            sentinel = int(present.max()) + 1
        elif int(present.min()) > np.iinfo(np.int64).min:
            sentinel = int(present.min()) - 1
        else:
            raise EncodingError("no unused sentinel value available")
        full = dense.copy()
        full[mask] = sentinel
        writer = ByteWriter()
        writer.write_i64(sentinel)
        encode_child(writer, full, self._values_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ma.MaskedArray:
        sentinel = reader.read_i64()
        full = decode_child(reader)
        mask = full == sentinel
        return np.ma.MaskedArray(full, mask=mask)
