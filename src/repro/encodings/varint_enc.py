"""Varint (LEB128) and ZigZag encodings.

Varint: "uses fewer bytes for smaller values" — unsigned only, matching
Parquet/Protobuf semantics. ZigZag maps signed integers onto unsigned
ones ("efficiently handling both positive and negative numbers") and
then delegates to a child encoding, Varint by default; this is the first
example of the composable sub-column pattern of §2.6.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_int64,
    decode_child,
    encode_child,
    register,
)
from repro.util.bitio import ByteReader, ByteWriter
from repro.util.varint import (
    decode_varint_array,
    encode_varint_array,
    zigzag_decode,
    zigzag_encode,
)


@register
class Varint(Encoding):
    """LEB128 byte stream over non-negative int64 values."""

    id = 2
    name = "varint"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        values = np.asarray(values)
        if not np.issubdtype(values.dtype, np.integer):
            raise EncodingError(f"varint expects integers, got {values.dtype}")
        if np.issubdtype(values.dtype, np.signedinteger):
            if len(values) and int(values.min()) < 0:
                raise EncodingError("varint requires non-negative values; "
                                    "wrap in zigzag for signed data")
        writer = ByteWriter()
        writer.write_u64(len(values))
        writer.write(encode_varint_array(values.astype(np.uint64)))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        data = reader.read(reader.remaining())
        values, used = decode_varint_array(data, count)
        # rewind unused suffix so nested readers stay aligned
        reader._pos -= len(data) - used
        return values.astype(np.int64)


@register
class ZigZag(Encoding):
    """Signed -> unsigned zigzag mapping over a child encoding."""

    id = 3
    name = "zigzag"
    kinds = frozenset({Kind.INT})

    def __init__(self, child: Encoding | None = None) -> None:
        self._child = child if child is not None else Varint()

    def encode(self, values) -> bytes:
        values = as_int64(values)
        mapped = zigzag_encode(values)  # uint64; child must accept unsigned
        writer = ByteWriter()
        encode_child(writer, mapped, self._child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        mapped = decode_child(reader)
        return zigzag_decode(mapped.astype(np.uint64))
