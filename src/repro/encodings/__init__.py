"""Bullion's cascading encoding catalog (paper §2.6, Table 2).

Every scheme from the paper's Table 2 catalog behind one modular,
composable interface. Blobs are self-describing (id byte + payload) and
sub-columns are nested blobs, so any encoding can be stacked on any
other — the property Parquet/ORC lack and the paper calls out.

>>> import numpy as np
>>> from repro.encodings import RLE, Dictionary, encode_blob, decode_blob
>>> data = np.array([7, 7, 7, 9, 9, 7, 7], dtype=np.int64)
>>> blob = encode_blob(data, RLE(values_child=Dictionary()))
>>> list(decode_blob(blob)) == list(data)
True
"""

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    catalog,
    decode_blob,
    encode_blob,
    encoding_by_id,
    encoding_by_name,
    infer_kind,
    register,
)
from repro.encodings.trivial import Trivial
from repro.encodings.bitpack import FixedBitWidth
from repro.encodings.varint_enc import Varint, ZigZag
from repro.encodings.rle import RLE, compute_runs
from repro.encodings.dictionary import Dictionary, MASK_CODE
from repro.encodings.delta import Delta, FrameOfReference
from repro.encodings.huffman import Huffman
from repro.encodings.nullable import Nullable, Sentinel, SparseBool
from repro.encodings.constant import Constant, MainlyConstant
from repro.encodings.chunked import Chunked
from repro.encodings.bitshuffle import BitShuffle
from repro.encodings.fsst import FSST
from repro.encodings.floats import Chimp, Gorilla
from repro.encodings.alp import ALP, Pseudodecimal
from repro.encodings.roaring import Roaring
from repro.encodings.fastpfor import FastBP128, FastPFOR
from repro.encodings.lists import ListEncoding
from repro.encodings.sparse_delta import SparseListDelta, find_overlap

__all__ = [
    "Encoding",
    "EncodingError",
    "Kind",
    "catalog",
    "encode_blob",
    "decode_blob",
    "encoding_by_id",
    "encoding_by_name",
    "infer_kind",
    "register",
    "Trivial",
    "FixedBitWidth",
    "Varint",
    "ZigZag",
    "RLE",
    "compute_runs",
    "Dictionary",
    "MASK_CODE",
    "Delta",
    "FrameOfReference",
    "Huffman",
    "Nullable",
    "Sentinel",
    "SparseBool",
    "Constant",
    "MainlyConstant",
    "Chunked",
    "BitShuffle",
    "FSST",
    "Gorilla",
    "Chimp",
    "Pseudodecimal",
    "ALP",
    "Roaring",
    "FastPFOR",
    "FastBP128",
    "ListEncoding",
    "SparseListDelta",
    "find_overlap",
]
