"""Pseudodecimal and ALP floating-point encodings.

Table 2:
* Pseudodecimal [58] — "specialized encoding for floating-point values
  using decimal representation": each value is stored as a significand
  integer and a decimal exponent, in two integer sub-columns, with
  non-decimal values patched as exceptions.
* ALP [20] — "an adaptive scheme that uses a strongly enhanced version
  of PseudoDecimals to losslessly encode doubles as integers if they
  originated as decimals, and otherwise uses vectorized compression of
  the doubles' front bits".

Our ALP follows the real algorithm's structure: sample the column,
pick the best (exponent e, factor f) pair, encode each value as
``round(v * 10^e / 10^f)`` checked for exact round-trip, patch the
misfits as positional exceptions, and hand the integer stream to a
FOR/bit-packing child. If the sampled exception rate is too high it
falls back to the "ALP-RD" style path: bit-shuffled front bits through
zlib (we reuse :class:`BitShuffle`).
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    Kind,
    as_float,
    decode_child,
    encode_child,
    float_dtype_code,
    float_dtype_from_code,
    register,
)
from repro.encodings.bitshuffle import BitShuffle
from repro.encodings.delta import FrameOfReference
from repro.encodings.trivial import Trivial
from repro.encodings.varint_enc import Varint
from repro.util.bitio import ByteReader, ByteWriter

MAX_EXPONENT = 18
_POW10 = np.array([10.0 ** k for k in range(MAX_EXPONENT + 1)])
_SAMPLE = 256


@register
class Pseudodecimal(Encoding):
    """Per-value (significand, exponent) decimal decomposition."""

    id = 19
    name = "pseudodecimal"
    kinds = frozenset({Kind.FLOAT})

    def __init__(
        self,
        digits_child: Encoding | None = None,
        exponents_child: Encoding | None = None,
    ) -> None:
        from repro.encodings.varint_enc import ZigZag

        self._digits_child = digits_child if digits_child is not None else ZigZag()
        self._exponents_child = (
            exponents_child if exponents_child is not None else Varint()
        )

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        work = values.astype(np.float64)
        digits = np.zeros(len(work), dtype=np.int64)
        exponents = np.zeros(len(work), dtype=np.int64)
        unresolved = np.isfinite(work)  # non-finite are exceptions outright
        resolved = np.zeros(len(work), dtype=np.bool_)
        for e in range(MAX_EXPONENT + 1):  # smallest exponent wins per value
            if not unresolved.any():
                break
            with np.errstate(invalid="ignore", over="ignore"):
                d = np.round(work * _POW10[e])
                ok = unresolved & (np.abs(d) < 2**53) & (d / _POW10[e] == work)
            digits[ok] = d[ok].astype(np.int64)
            exponents[ok] = e
            resolved |= ok
            unresolved &= ~ok
        exc_mask = ~resolved
        encode_child(writer, digits, self._digits_child)
        encode_child(writer, exponents, self._exponents_child)
        encode_child(
            writer, np.flatnonzero(exc_mask).astype(np.int64), Trivial()
        )
        encode_child(writer, work[exc_mask].astype(np.float64), Trivial())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        digits = decode_child(reader)
        exponents = decode_child(reader)
        exc_idx = decode_child(reader)
        exc_val = decode_child(reader)
        out = digits.astype(np.float64) / _POW10[exponents.astype(np.int64)]
        if len(exc_idx):
            out[exc_idx] = exc_val
        if count == 0:
            out = np.zeros(0, dtype=np.float64)
        return out.astype(dtype)


_MODE_DECIMAL = 0
_MODE_FRONTBITS = 1


@register
class ALP(Encoding):
    """Adaptive Lossless floating-Point: sampled (e, f) decimal packing.

    Falls back to the front-bits (bitshuffle+zlib) path when sampling
    sees too many exceptions, mirroring ALP-RD.
    """

    id = 20
    name = "alp"
    kinds = frozenset({Kind.FLOAT})

    #: give up on the decimal path beyond this sampled exception rate
    MAX_EXCEPTION_RATE = 0.2

    def __init__(self, integers_child: Encoding | None = None) -> None:
        self._integers_child = (
            integers_child if integers_child is not None else FrameOfReference()
        )

    @staticmethod
    def _try_pair(sample: np.ndarray, e: int, f: int) -> float:
        scale = _POW10[e] / _POW10[f]
        with np.errstate(invalid="ignore", over="ignore"):
            d = np.round(sample * scale)
            ok = np.isfinite(sample) & (np.abs(d) < 2**53) & (d / scale == sample)
        return float(ok.mean()) if len(sample) else 1.0

    def _choose_pair(self, values: np.ndarray) -> tuple[int, int, float]:
        sample = values[:: max(1, len(values) // _SAMPLE)][:_SAMPLE]
        best = (0, 0, -1.0)
        for e in range(MAX_EXPONENT + 1):
            for f in range(0, min(e, 2) + 1):
                rate = self._try_pair(sample, e, f)
                if rate > best[2]:  # prefer higher hit rate, smaller exponent
                    best = (e, f, rate)
                if best[2] == 1.0:
                    return best
        return best

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        work = values.astype(np.float64)
        e, f, rate = self._choose_pair(work) if len(work) else (0, 0, 1.0)
        if rate < 1.0 - self.MAX_EXCEPTION_RATE:
            writer.write_u8(_MODE_FRONTBITS)
            encode_child(writer, work, BitShuffle())
            return writer.getvalue()
        writer.write_u8(_MODE_DECIMAL)
        writer.write_u8(e)
        writer.write_u8(f)
        scale = _POW10[e] / _POW10[f]
        with np.errstate(invalid="ignore", over="ignore"):
            d = np.round(work * scale)
            ok = np.isfinite(work) & (np.abs(d) < 2**53) & (d / scale == work)
        integers = np.where(ok, d, 0.0).astype(np.int64)
        exc_idx = np.flatnonzero(~ok).astype(np.int64)
        exc_val = work[~ok]
        encode_child(writer, integers, self._integers_child)
        encode_child(writer, exc_idx, Trivial())
        encode_child(writer, exc_val.astype(np.float64), Trivial())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        mode = reader.read_u8()
        if mode == _MODE_FRONTBITS:
            out = decode_child(reader)
            return np.asarray(out, dtype=np.float64)[:count].astype(dtype)
        e = reader.read_u8()
        f = reader.read_u8()
        integers = decode_child(reader)
        exc_idx = decode_child(reader)
        exc_val = decode_child(reader)
        scale = _POW10[e] / _POW10[f]
        out = integers.astype(np.float64) / scale
        if len(exc_idx):
            out[exc_idx] = exc_val
        if count == 0:
            out = np.zeros(0, dtype=np.float64)
        return out.astype(dtype)
