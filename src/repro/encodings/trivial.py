"""Trivial encoding: "stores data directly in its original format".

The universal fallback and the default leaf of every cascade. For BYTES
it stores a delta-friendly offsets array plus the concatenated payload;
for arrays it dumps the raw little-endian buffer.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_bytes_list,
    float_dtype_code,
    float_dtype_from_code,
    register,
)
from repro.util.bitio import ByteReader, ByteWriter

# payload sub-format tags
_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_BYTES = 2
_TAG_BOOL = 3


@register
class Trivial(Encoding):
    """Identity encoding for every value kind."""

    id = 0
    name = "trivial"
    kinds = frozenset({Kind.INT, Kind.FLOAT, Kind.BYTES, Kind.BOOL})

    def encode(self, values) -> bytes:
        writer = ByteWriter()
        if isinstance(values, np.ndarray):
            if values.dtype == np.bool_:
                writer.write_u8(_TAG_BOOL)
                writer.write_u64(len(values))
                writer.write_array(values.astype(np.uint8))
            elif np.issubdtype(values.dtype, np.integer):
                writer.write_u8(_TAG_INT)
                writer.write_u64(len(values))
                writer.write_array(values.astype(np.int64, copy=False))
            elif np.issubdtype(values.dtype, np.floating):
                writer.write_u8(_TAG_FLOAT)
                writer.write_u8(float_dtype_code(values.dtype))
                writer.write_u64(len(values))
                writer.write_array(values)
            else:
                raise EncodingError(f"unsupported dtype {values.dtype}")
        else:
            items = as_bytes_list(values)
            writer.write_u8(_TAG_BYTES)
            writer.write_u64(len(items))
            lengths = np.fromiter(
                (len(b) for b in items), dtype=np.uint32, count=len(items)
            )
            writer.write_array(lengths)
            writer.write(b"".join(items))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        tag = reader.read_u8()
        if tag == _TAG_INT:
            count = reader.read_u64()
            return reader.read_array(np.int64, count)
        if tag == _TAG_FLOAT:
            dtype = float_dtype_from_code(reader.read_u8())
            count = reader.read_u64()
            return reader.read_array(dtype, count)
        if tag == _TAG_BOOL:
            count = reader.read_u64()
            return reader.read_array(np.uint8, count).astype(np.bool_)
        if tag == _TAG_BYTES:
            count = reader.read_u64()
            lengths = reader.read_array(np.uint32, count)
            payload = reader.read(int(lengths.sum()))
            out = []
            pos = 0
            for length in lengths:
                out.append(payload[pos : pos + int(length)])
                pos += int(length)
            return out
        raise EncodingError(f"bad trivial payload tag {tag}")
