"""FixedBitWidth encoding: uniform-width bit packing.

"Compresses integer data using a uniform bit width for all values,
optimized for cases with known value ranges" (Table 2). We store the
column minimum as a base so signed/offset data packs tightly; with
``base == 0`` the layout degenerates to classic bit-packing, and the
deletion path can scrub a single slot in place because every slot has
the same fixed width (paper §2.1, "Bit-Packed Encoding").
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import Encoding, Kind, as_int64, register
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    min_bit_width,
    pack_bits,
    unpack_bits,
)


@register
class FixedBitWidth(Encoding):
    """Bit-pack int64 values as ``width``-bit offsets from a base."""

    id = 1
    name = "fixed_bit_width"
    kinds = frozenset({Kind.INT})

    #: payload layout constants, shared with the in-place deletion masker
    HEADER_FMT_SIZE = 8 + 1 + 8  # base i64, width u8, count u64

    def __init__(self, fixed_base: int | None = None) -> None:
        """``fixed_base`` pins the subtracted base (e.g. 0 so that the
        dictionary mask code 0 stays representable for in-place deletes).
        """
        self._fixed_base = fixed_base

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        if len(values) == 0:
            writer.write_i64(self._fixed_base or 0)
            writer.write_u8(0)
            writer.write_u64(0)
            return writer.getvalue()
        base = (
            int(values.min()) if self._fixed_base is None else self._fixed_base
        )
        if self._fixed_base is not None and int(values.min()) < base:
            raise ValueError(
                f"values below fixed base {base} cannot be bit-packed"
            )
        offsets = (values.astype(np.int64) - base).astype(np.uint64)
        width = min_bit_width(offsets)
        writer.write_i64(base)
        writer.write_u8(width)
        writer.write_u64(len(values))
        writer.write(pack_bits(offsets, width))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        base = reader.read_i64()
        width = reader.read_u8()
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_bytes = (width * count + 7) // 8
        offsets = unpack_bits(reader.read(n_bytes), width, count)
        return (offsets.astype(np.int64)) + base
