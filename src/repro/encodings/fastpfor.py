"""FastPFOR and FastBP128-style batch bit-packing kernels.

Table 2 lists SIMDFastPFOR and SIMDFastBP128 [11]. The defining ideas:

* **FastBP128** — binary packing in fixed 128-value miniblocks, each
  with its own bit width, processed batch-at-a-time;
* **FastPFOR** — patched frame-of-reference: pick a bit width that fits
  ~90% of a block's values, store the outliers ("patches") in a
  separate exception area so one large value does not inflate the whole
  block.

Substitution note (DESIGN.md): the SIMD intrinsics become numpy batch
kernels — same algorithmic structure (miniblock widths, exception
patching), batch-parallel inner loops in C via numpy.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    register,
)
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    min_bit_width,
    pack_bits,
    unpack_bits,
)

MINIBLOCK = 128
#: FastPFOR stores exceptions beyond this per-block quantile
PATCH_QUANTILE = 0.90


def _require_unsigned(values) -> np.ndarray:
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise EncodingError(f"expected integers, got {arr.dtype}")
    if np.issubdtype(arr.dtype, np.signedinteger):
        if len(arr) and int(arr.min()) < 0:
            raise EncodingError(
                "fastpfor/bp128 require non-negative input; "
                "compose with zigzag or FOR for signed data"
            )
    return arr.astype(np.uint64)


@register
class FastBP128(Encoding):
    """Binary packing in 128-value miniblocks with per-block widths."""

    id = 23
    name = "fastbp128"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        arr = _require_unsigned(values)
        writer = ByteWriter()
        writer.write_u64(len(arr))
        n_blocks = (len(arr) + MINIBLOCK - 1) // MINIBLOCK
        widths = np.empty(n_blocks, dtype=np.uint8)
        parts = []
        for b in range(n_blocks):
            block = arr[b * MINIBLOCK : (b + 1) * MINIBLOCK]
            width = min_bit_width(block)
            widths[b] = width
            parts.append(pack_bits(block, width))
        writer.write_array(widths)
        for part in parts:
            writer.write(part)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_blocks = (count + MINIBLOCK - 1) // MINIBLOCK
        widths = reader.read_array(np.uint8, n_blocks)
        out = np.empty(count, dtype=np.uint64)
        for b in range(n_blocks):
            n = min(MINIBLOCK, count - b * MINIBLOCK)
            width = int(widths[b])
            n_bytes = (width * n + 7) // 8
            out[b * MINIBLOCK : b * MINIBLOCK + n] = unpack_bits(
                reader.read(n_bytes), width, n
            )
        return out.astype(np.int64)


@register
class FastPFOR(Encoding):
    """Patched FOR: quantile bit width + exception area per miniblock."""

    id = 22
    name = "fastpfor"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        arr = _require_unsigned(values)
        writer = ByteWriter()
        writer.write_u64(len(arr))
        n_blocks = (len(arr) + MINIBLOCK - 1) // MINIBLOCK
        widths = np.empty(n_blocks, dtype=np.uint8)
        packed_parts = []
        exc_positions: list[np.ndarray] = []
        exc_values: list[np.ndarray] = []
        for b in range(n_blocks):
            block = arr[b * MINIBLOCK : (b + 1) * MINIBLOCK]
            full_width = min_bit_width(block)
            q_width = min_bit_width(
                np.array(
                    [np.quantile(block.astype(np.float64), PATCH_QUANTILE)]
                ).astype(np.uint64)
            )
            width = q_width if q_width < full_width else full_width
            widths[b] = width
            limit = (np.uint64(1) << np.uint64(width)) - np.uint64(1) if width else np.uint64(0)
            is_exc = block > limit
            stored = np.where(is_exc, np.uint64(0), block)
            packed_parts.append(pack_bits(stored, width))
            positions = np.flatnonzero(is_exc).astype(np.uint32)
            exc_positions.append(positions + np.uint32(b * MINIBLOCK))
            exc_values.append(block[is_exc])
        writer.write_array(widths)
        all_pos = (
            np.concatenate(exc_positions)
            if exc_positions
            else np.zeros(0, dtype=np.uint32)
        )
        all_val = (
            np.concatenate(exc_values)
            if exc_values
            else np.zeros(0, dtype=np.uint64)
        )
        writer.write_u32(len(all_pos))
        writer.write_array(all_pos)
        writer.write_array(all_val)
        for part in packed_parts:
            writer.write(part)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_blocks = (count + MINIBLOCK - 1) // MINIBLOCK
        widths = reader.read_array(np.uint8, n_blocks)
        n_exc = reader.read_u32()
        exc_pos = reader.read_array(np.uint32, n_exc)
        exc_val = reader.read_array(np.uint64, n_exc)
        out = np.empty(count, dtype=np.uint64)
        for b in range(n_blocks):
            n = min(MINIBLOCK, count - b * MINIBLOCK)
            width = int(widths[b])
            n_bytes = (width * n + 7) // 8
            out[b * MINIBLOCK : b * MINIBLOCK + n] = unpack_bits(
                reader.read(n_bytes), width, n
            )
        if n_exc:
            out[exc_pos.astype(np.int64)] = exc_val
        return out.astype(np.int64)
