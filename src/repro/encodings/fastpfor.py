"""FastPFOR and FastBP128-style batch bit-packing kernels.

Table 2 lists SIMDFastPFOR and SIMDFastBP128 [11]. The defining ideas:

* **FastBP128** — binary packing in fixed 128-value miniblocks, each
  with its own bit width, processed batch-at-a-time;
* **FastPFOR** — patched frame-of-reference: pick a bit width that fits
  ~90% of a block's values, store the outliers ("patches") in a
  separate exception area so one large value does not inflate the whole
  block.

Substitution note (DESIGN.md): the SIMD intrinsics become numpy batch
kernels — same algorithmic structure (miniblock widths, exception
patching), batch-parallel inner loops in C via numpy. Both directions
run whole-array: encode scatters every value's bits into one global
bit buffer (per-block byte alignment falls out as zero padding), and
decode gathers each value from a little-endian 64-bit window at its
byte offset, so no per-block Python loop survives on either path.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    register,
)
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    bit_lengths,
    le_bit_windows,
    le_bit_windows32,
    pack_bits,
    scatter_varwidth_lsb,
    unpack_bits,
)

MINIBLOCK = 128
#: FastPFOR stores exceptions beyond this per-block quantile
PATCH_QUANTILE = 0.90

#: widest field a single little-endian 64-bit window read can straddle
_MAX_WINDOW_WIDTH = 57


def _require_unsigned(values) -> np.ndarray:
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        raise EncodingError(f"expected integers, got {arr.dtype}")
    if np.issubdtype(arr.dtype, np.signedinteger):
        if len(arr) and int(arr.min()) < 0:
            raise EncodingError(
                "fastpfor/bp128 require non-negative input; "
                "compose with zigzag or FOR for signed data"
            )
    return arr.astype(np.uint64)


def _block_matrix(arr: np.ndarray) -> np.ndarray:
    """(n_blocks, MINIBLOCK) view of the input, zero-padded at the end."""
    n_blocks = (len(arr) + MINIBLOCK - 1) // MINIBLOCK
    padded = np.zeros(n_blocks * MINIBLOCK, dtype=np.uint64)
    padded[: len(arr)] = arr
    return padded.reshape(n_blocks, MINIBLOCK)


def _block_layout(
    count: int, widths64: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-block value counts, packed byte sizes, and byte offsets."""
    n_blocks = len(widths64)
    n_per = np.full(n_blocks, MINIBLOCK, dtype=np.int64)
    if n_blocks:
        n_per[-1] = count - MINIBLOCK * (n_blocks - 1)
    block_bytes = (widths64 * n_per + 7) // 8
    offs = np.cumsum(block_bytes) - block_bytes
    return n_per, block_bytes, offs


def _batch_pack(stored: np.ndarray, widths64: np.ndarray, count: int) -> bytes:
    """All blocks packed at once; equals per-block ``pack_bits``
    concatenation (each block starts byte-aligned, padding bits zero)."""
    n_per, block_bytes, offs = _block_layout(count, widths64)
    if len(widths64) and int(widths64.max()) == int(widths64.min()):
        # one shared width: full blocks occupy exactly 16*width bytes
        # (byte-aligned), so the concatenation IS one uniform stream
        return pack_bits(stored[:count], int(widths64[0]))
    idx = np.arange(count, dtype=np.int64)
    block_id = idx >> 7
    w = widths64[block_id]
    bit_starts = offs[block_id] * 8 + (idx & 127) * w
    return scatter_varwidth_lsb(
        stored[:count], w, bit_starts, int(block_bytes.sum())
    )


def _batch_unpack(
    parts: bytes, widths64: np.ndarray, count: int
) -> np.ndarray:
    """Whole-array inverse of :func:`_batch_pack`.

    Every value's bits live inside the 64-bit little-endian window at
    its start byte whenever its width is <= 57, so the common case is a
    single gather + shift + mask over all blocks at once, regardless of
    how widths vary block to block.
    """
    n_per, block_bytes, offs = _block_layout(count, widths64)
    max_w = int(widths64.max(initial=0))
    total_bits = int(block_bytes.sum()) * 8
    if max_w <= 57 and len(widths64) and max_w == int(widths64.min()):
        # one shared width: full blocks pack to exactly 16*width bytes
        # (byte-aligned), so the concatenated stream is a single uniform
        # pack_bits stream and the phase-strided unpack applies whole
        return unpack_bits(parts, max_w, count)
    if max_w <= 25 and total_bits < (1 << 31):
        # uint32 end to end: 32-bit windows, 32-bit index arithmetic
        windows = le_bit_windows32(parts)
        idx = np.arange(count, dtype=np.uint32)
        block_id = idx >> np.uint32(7)
        w = widths64.astype(np.uint32)[block_id]
        bitpos = idx
        bitpos &= np.uint32(127)
        bitpos *= w
        bitpos += (offs.astype(np.uint32) * np.uint32(8))[block_id]
        vals = windows[bitpos >> np.uint32(3)]
        bitpos &= np.uint32(7)
        vals >>= bitpos
        mask = np.left_shift(np.uint32(1), w)
        mask -= np.uint32(1)
        vals &= mask
        return vals.astype(np.uint64)
    if max_w <= _MAX_WINDOW_WIDTH:
        windows = le_bit_windows(parts)
        idx = np.arange(count, dtype=np.uint64)
        block_id = (idx >> np.uint64(7)).astype(np.int64)
        w = widths64.astype(np.uint64)[block_id]
        bitpos = idx
        bitpos &= np.uint64(127)
        bitpos *= w
        bitpos += (offs.astype(np.uint64) * np.uint64(8))[block_id]
        vals = windows[(bitpos >> np.uint64(3)).astype(np.int64)]
        bitpos &= np.uint64(7)
        vals >>= bitpos
        mask = np.left_shift(np.uint64(1), w)
        mask -= np.uint64(1)
        vals &= mask
        return vals
    out = np.empty(count, dtype=np.uint64)
    for b in range(len(widths64)):
        lo = b * MINIBLOCK
        start = int(offs[b])
        out[lo : lo + int(n_per[b])] = unpack_bits(
            parts[start : start + int(block_bytes[b])],
            int(widths64[b]),
            int(n_per[b]),
        )
    return out


def _read_widths(reader: ByteReader, n_blocks: int) -> np.ndarray:
    widths = reader.read_array(np.uint8, n_blocks)
    widths64 = widths.astype(np.int64)
    if len(widths64) and int(widths64.max()) > 64:
        raise EncodingError("corrupt block width (exceeds 64 bits)")
    return widths64


@register
class FastBP128(Encoding):
    """Binary packing in 128-value miniblocks with per-block widths."""

    id = 23
    name = "fastbp128"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        arr = _require_unsigned(values)
        writer = ByteWriter()
        writer.write_u64(len(arr))
        blocks = _block_matrix(arr)
        widths64 = bit_lengths(blocks.max(axis=1)) if len(blocks) else (
            np.zeros(0, dtype=np.int64)
        )
        writer.write_array(widths64.astype(np.uint8))
        writer.write(_batch_pack(arr, widths64, len(arr)))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_blocks = (count + MINIBLOCK - 1) // MINIBLOCK
        widths64 = _read_widths(reader, n_blocks)
        _n_per, block_bytes, _offs = _block_layout(count, widths64)
        parts = reader.read(int(block_bytes.sum()))
        return _batch_unpack(parts, widths64, count).astype(np.int64)


@register
class FastPFOR(Encoding):
    """Patched FOR: quantile bit width + exception area per miniblock."""

    id = 22
    name = "fastpfor"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        arr = _require_unsigned(values)
        writer = ByteWriter()
        writer.write_u64(len(arr))
        count = len(arr)
        blocks = _block_matrix(arr)
        n_blocks = len(blocks)
        full_w = bit_lengths(blocks.max(axis=1)) if n_blocks else (
            np.zeros(0, dtype=np.int64)
        )
        # quantile widths: full blocks in one axis=1 call; a partial
        # last block must go through the scalar path, because the
        # zero padding in the block matrix would shift its quantile
        q = np.zeros(n_blocks, dtype=np.float64)
        n_full = count // MINIBLOCK
        if n_full:
            q[:n_full] = np.quantile(
                blocks[:n_full].astype(np.float64), PATCH_QUANTILE, axis=1
            )
        if n_blocks > n_full:
            tail = arr[n_full * MINIBLOCK :]
            q[n_full] = np.quantile(
                tail.astype(np.float64), PATCH_QUANTILE
            )
        q_w = bit_lengths(q.astype(np.uint64))
        widths64 = np.where(q_w < full_w, q_w, full_w)
        limit = np.where(
            widths64 > 0,
            (np.uint64(1) << widths64.astype(np.uint64)) - np.uint64(1),
            np.uint64(0),
        )
        is_exc = blocks > limit[:, None]  # padding zeros never exceed
        stored = np.where(is_exc, np.uint64(0), blocks).reshape(-1)
        all_pos = np.flatnonzero(is_exc.reshape(-1)).astype(np.uint32)
        all_val = blocks.reshape(-1)[all_pos]
        writer.write_array(widths64.astype(np.uint8))
        writer.write_u32(len(all_pos))
        writer.write_array(all_pos)
        writer.write_array(all_val)
        writer.write(_batch_pack(stored, widths64, count))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_blocks = (count + MINIBLOCK - 1) // MINIBLOCK
        widths64 = _read_widths(reader, n_blocks)
        n_exc = reader.read_u32()
        exc_pos = reader.read_array(np.uint32, n_exc)
        exc_val = reader.read_array(np.uint64, n_exc)
        _n_per, block_bytes, _offs = _block_layout(count, widths64)
        parts = reader.read(int(block_bytes.sum()))
        out = _batch_unpack(parts, widths64, count)
        if n_exc:
            positions = exc_pos.astype(np.int64)
            if int(positions.max()) >= count:
                raise EncodingError("fastpfor: exception position out of range")
            out[positions] = exc_val
        return out.astype(np.int64)
