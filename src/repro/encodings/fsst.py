"""FSST: Fast Static Symbol Table string compression.

Table 2: "identifies and compresses both full string repetitions and
common substrings, optimized for structured string data like URLs and
emails" [32].

Faithful to the published algorithm's shape:

* a static table of at most 255 symbols, each 1–8 bytes, learned from a
  sample of the input in a few bottom-up iterations (frequent pairs of
  current symbols are merged, like the reference implementation);
* encoding replaces greedy longest-match symbols with 1-byte codes;
  bytes not covered by the table are emitted as an escape (0xFF) + the
  literal byte;
* decoding is a trivial table lookup, preserving FSST's random-access
  friendly "decode = memcpy of symbols" property.

The greedy parse and the decode are whole-array numpy transforms: the
parse matches every symbol against 8-byte windows at its first-byte
candidate positions, and decode classifies every byte as token start or
escape payload from the parity of the escape run preceding it, then
scatters symbol bytes through one fancy-index gather.
"""

from __future__ import annotations

from array import array
from collections import Counter

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_bytes_list,
    register,
)
from repro.util.bitio import ByteReader, ByteWriter

ESCAPE = 0xFF
MAX_SYMBOLS = 255
MAX_SYMBOL_LEN = 8
_TRAIN_ITERATIONS = 4
_SAMPLE_BYTES = 1 << 16


def _byte_windows(data: np.ndarray) -> np.ndarray:
    """Big-endian 8-byte window starting at every position (0-padded)."""
    n = len(data)
    padded = np.zeros(n + 8, dtype=np.uint64)
    padded[:n] = data
    windows = np.zeros(n, dtype=np.uint64)
    for k in range(8):
        windows |= padded[k : k + n] << np.uint64(8 * (7 - k))
    return windows


def _vector_parse(
    data: np.ndarray, remaining: np.ndarray, symbols: list[bytes]
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy longest-match classification at every byte position.

    Returns ``(len_at, code_at)``: the match length (0 = no symbol
    matches, i.e. escape) and symbol code at each position, honouring
    ``remaining`` (bytes left in the position's item, so matches never
    straddle item boundaries). Each symbol is tested with one masked
    compare of the 8-byte windows at its first-byte candidate
    positions; iterating lengths ascending lets longer matches simply
    overwrite shorter ones.
    """
    n = len(data)
    len_at = np.zeros(n, dtype=np.int32)
    code_at = np.zeros(n, dtype=np.int32)
    if n == 0 or not symbols:
        return len_at, code_at
    windows = _byte_windows(data)
    by_first = np.argsort(data, kind="stable").astype(np.int32)
    bucket_bounds = np.searchsorted(data[by_first], np.arange(257))
    for code, sym in sorted(
        enumerate(symbols), key=lambda pair: len(pair[1])
    ):
        lo, hi = bucket_bounds[sym[0]], bucket_bounds[sym[0] + 1]
        if lo == hi:
            continue
        candidates = by_first[lo:hi]
        length = len(sym)
        if length == 1:
            len_at[candidates] = 1
            code_at[candidates] = code
            continue
        value = int.from_bytes(sym.ljust(8, b"\0"), "big")
        mask = ((1 << (8 * length)) - 1) << (8 * (8 - length))
        hits = candidates[
            (windows[candidates] & np.uint64(mask)) == np.uint64(value)
        ]
        hits = hits[remaining[hits] >= length]
        len_at[hits] = length
        code_at[hits] = code
    return len_at, code_at


def _walk_tokens_single(advance: np.ndarray) -> list[int]:
    """Sequential token-start walk over one item (training path)."""
    adv = array("i", advance.astype(np.int32).tobytes())
    n = len(adv)
    starts: list[int] = []
    append = starts.append
    pos = 0
    while pos < n:
        append(pos)
        pos += adv[pos]
    return starts


def _walk_tokens(
    advance: np.ndarray, item_starts: np.ndarray, item_ends: np.ndarray
) -> np.ndarray:
    """Token-start positions for every item, in item-major order.

    Runs all items' greedy chains in lockstep: round ``k`` gathers the
    position of each item's ``k``-th token, so the number of sequential
    steps is the *longest* item's token count, not the total.
    """
    n = len(advance)
    n_items = len(item_starts)
    if n == 0 or n_items == 0:
        return np.zeros(0, dtype=np.int64)
    max_item = int((item_ends - item_starts).max())
    if n_items < 32 or n_items * max_item > 16 * n + 4096:
        # degenerate shapes (one huge item, or a few items): the
        # lockstep matrix would be tall and empty — walk sequentially
        offsets: list[int] = []
        adv = array("i", advance.astype(np.int32).tobytes())
        append = offsets.append
        for start, end in zip(item_starts.tolist(), item_ends.tolist()):
            pos = start
            while pos < end:
                append(pos)
                pos += adv[pos]
        return np.array(offsets, dtype=np.int64)
    cursor = item_starts.astype(np.int64).copy()
    ends = item_ends.astype(np.int64)
    hop = np.append(np.maximum(advance, 1), 1).astype(np.int64)
    columns = []
    while True:
        alive = cursor < ends
        if not alive.any():
            break
        columns.append(cursor.copy())
        cursor = np.where(
            alive, cursor + hop[np.minimum(cursor, n)], cursor
        )
    if not columns:
        return np.zeros(0, dtype=np.int64)
    matrix = np.stack(columns, axis=1)  # (n_items, rounds): item-major
    return matrix[matrix < ends[:, None]]


def train_symbol_table(sample: bytes) -> list[bytes]:
    """Learn up to 255 multi-byte symbols from a corpus sample.

    Bottom-up merging: start from frequent single bytes, repeatedly
    count adjacent symbol pairs under the current greedy parse and
    promote the most profitable concatenations (gain = freq * saved
    bytes), matching the reference FSST training loop's structure.
    """
    if not sample:
        return []
    sample = sample[:_SAMPLE_BYTES]
    byte_counts = Counter(sample)
    symbols = [
        bytes([b])
        for b, count in byte_counts.most_common(MAX_SYMBOLS)
        if count > 1
    ]
    for _ in range(_TRAIN_ITERATIONS):
        parse = _greedy_parse(sample, symbols)
        pair_counts: Counter = Counter()
        for a, b in zip(parse, parse[1:]):
            merged = a + b
            if len(merged) <= MAX_SYMBOL_LEN:
                pair_counts[merged] += 1
        candidates = Counter(
            {s: c * (len(s) - 1) for s, c in pair_counts.items() if c > 1}
        )
        merged_syms = set(symbols)
        for sym, _gain in candidates.most_common(MAX_SYMBOLS):
            merged_syms.add(sym)
        # keep the most profitable MAX_SYMBOLS symbols
        scored = []
        parse_counts = Counter(parse)
        for sym in merged_syms:
            freq = pair_counts.get(sym, 0) + parse_counts.get(sym, 0)
            scored.append((freq * max(len(sym) - 1, 1) + freq, sym))
        scored.sort(key=lambda t: (-t[0], t[1]))
        new_symbols = [sym for _score, sym in scored[:MAX_SYMBOLS]]
        if new_symbols == symbols:
            break
        symbols = new_symbols
    return symbols


def _greedy_parse(data: bytes, symbols: list[bytes]) -> list[bytes]:
    """Greedy longest-match factorization of ``data`` over ``symbols``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    remaining = np.arange(len(arr), 0, -1, dtype=np.int64)
    len_at, code_at = _vector_parse(arr, remaining, symbols)
    starts = _walk_tokens_single(np.maximum(len_at, 1))
    len_l = len_at.tolist()
    code_l = code_at.tolist()
    return [
        symbols[code_l[p]] if len_l[p] else data[p : p + 1] for p in starts
    ]


@register
class FSST(Encoding):
    """Fast Static Symbol Table compression for BYTES columns."""

    id = 16
    name = "fsst"
    kinds = frozenset({Kind.BYTES})

    def encode(self, values) -> bytes:
        items = as_bytes_list(values)
        corpus = b"".join(items)
        symbols = train_symbol_table(corpus)

        writer = ByteWriter()
        writer.write_u8(len(symbols))
        for sym in symbols:
            writer.write_u8(len(sym))
            writer.write(sym)
        writer.write_u64(len(items))

        data = np.frombuffer(corpus, dtype=np.uint8)
        item_lens = np.fromiter(
            (len(it) for it in items), dtype=np.int64, count=len(items)
        )
        item_ends = np.cumsum(item_lens)
        item_starts = item_ends - item_lens
        remaining = (
            np.repeat(item_ends, item_lens)
            - np.arange(len(data), dtype=np.int64)
        )
        len_at, code_at = _vector_parse(data, remaining, symbols)
        starts = _walk_tokens(
            np.maximum(len_at, 1), item_starts, item_ends
        )

        matched = len_at[starts] > 0
        out_lens = np.where(matched, 1, 2).astype(np.int64)
        out_offs = np.cumsum(out_lens) - out_lens
        out = np.empty(int(out_lens.sum()), dtype=np.uint8)
        out[out_offs[matched]] = code_at[starts[matched]]
        out[out_offs[~matched]] = ESCAPE
        out[out_offs[~matched] + 1] = data[starts[~matched]]

        token_item = np.repeat(
            np.arange(len(items), dtype=np.int64), item_lens
        )[starts] if len(starts) else np.zeros(0, dtype=np.int64)
        enc_lens = np.bincount(
            token_item, weights=out_lens, minlength=len(items)
        ).astype(np.uint32)
        writer.write_array(enc_lens)
        writer.write(out.tobytes())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> list[bytes]:
        n_symbols = reader.read_u8()
        symbols = [reader.read(reader.read_u8()) for _ in range(n_symbols)]
        count = reader.read_u64()
        enc_lens = reader.read_array(np.uint32, count).astype(np.int64)
        total = int(enc_lens.sum())
        enc = np.frombuffer(reader.read(total), dtype=np.uint8)
        if count == 0:
            return []
        if total == 0:
            return [b""] * int(count)

        # token starts from escape-run parity: a maximal run of 0xFF
        # bytes always begins at a token start, so position p starts a
        # token iff the escape run immediately before it (clamped to
        # its item) has even length.
        item_ends = np.cumsum(enc_lens)
        item_starts = item_ends - enc_lens
        positions = np.arange(total, dtype=np.int32)
        is_escape = enc == ESCAPE
        last_plain = np.maximum.accumulate(
            np.where(is_escape, np.int32(-1), positions)
        )
        run_before = np.empty(total, dtype=np.int32)
        run_before[0] = 0
        np.subtract(positions[1:], 1 + last_plain[:-1], out=run_before[1:])
        # the in-item clamp only matters when some item *begins* inside
        # a global escape run — rare enough to test for explicitly
        inner = item_starts[(enc_lens > 0) & (item_starts > 0)]
        if len(inner) and bool(
            (is_escape[inner] & is_escape[inner - 1]).any()
        ):
            run_before = np.minimum(
                run_before,
                positions
                - np.repeat(item_starts.astype(np.int32), enc_lens),
            )
        tokens = np.flatnonzero((run_before & 1) == 0)

        first = enc[tokens]
        escaped = first == ESCAPE
        token_item = np.repeat(
            np.arange(count, dtype=np.int32), enc_lens
        )[tokens]
        if bool((escaped & (tokens + 1 >= item_ends[token_item])).any()):
            raise EncodingError("fsst: truncated escape sequence")
        if bool((first[~escaped] >= n_symbols).any()):
            raise EncodingError("fsst: symbol code out of range")
        literal = enc[np.minimum(tokens + 1, total - 1)]

        # (symbols + 256 literal pseudo-symbols) x 8 byte matrix: every
        # token's output is a row prefix, so one row gather plus a
        # length-mask extraction emits the whole column's bytes
        table = np.zeros((n_symbols + 256, MAX_SYMBOL_LEN), dtype=np.uint8)
        table_len = np.ones(n_symbols + 256, dtype=np.int16)
        for i, sym in enumerate(symbols):
            table[i, : len(sym)] = np.frombuffer(sym, dtype=np.uint8)
            table_len[i] = len(sym)
        table[n_symbols:, 0] = np.arange(256)
        rows = np.where(
            escaped, n_symbols + literal.astype(np.int32), first
        ).astype(np.int32)
        out_len = table_len[rows]
        decoded = table[rows][
            np.arange(MAX_SYMBOL_LEN, dtype=np.int16)[None, :]
            < out_len[:, None]
        ].tobytes()

        item_out = np.bincount(
            token_item, weights=out_len, minlength=count
        ).astype(np.int64)
        offs = np.cumsum(item_out) - item_out
        return [
            decoded[o : o + ln]
            for o, ln in zip(offs.tolist(), item_out.tolist())
        ]
