"""FSST: Fast Static Symbol Table string compression.

Table 2: "identifies and compresses both full string repetitions and
common substrings, optimized for structured string data like URLs and
emails" [32].

Faithful to the published algorithm's shape:

* a static table of at most 255 symbols, each 1–8 bytes, learned from a
  sample of the input in a few bottom-up iterations (frequent pairs of
  current symbols are merged, like the reference implementation);
* encoding replaces greedy longest-match symbols with 1-byte codes;
  bytes not covered by the table are emitted as an escape (0xFF) + the
  literal byte;
* decoding is a trivial table lookup, preserving FSST's random-access
  friendly "decode = memcpy of symbols" property.
"""

from __future__ import annotations

from collections import Counter

from repro.encodings.base import Encoding, Kind, as_bytes_list, register
from repro.util.bitio import ByteReader, ByteWriter

ESCAPE = 0xFF
MAX_SYMBOLS = 255
MAX_SYMBOL_LEN = 8
_TRAIN_ITERATIONS = 4
_SAMPLE_BYTES = 1 << 16


def train_symbol_table(sample: bytes) -> list[bytes]:
    """Learn up to 255 multi-byte symbols from a corpus sample.

    Bottom-up merging: start from frequent single bytes, repeatedly
    count adjacent symbol pairs under the current greedy parse and
    promote the most profitable concatenations (gain = freq * saved
    bytes), matching the reference FSST training loop's structure.
    """
    if not sample:
        return []
    sample = sample[:_SAMPLE_BYTES]
    byte_counts = Counter(sample)
    symbols = [
        bytes([b])
        for b, count in byte_counts.most_common(MAX_SYMBOLS)
        if count > 1
    ]
    for _ in range(_TRAIN_ITERATIONS):
        table = {s: i for i, s in enumerate(symbols)}
        parse = _greedy_parse(sample, symbols)
        pair_counts: Counter = Counter()
        for a, b in zip(parse, parse[1:]):
            merged = a + b
            if len(merged) <= MAX_SYMBOL_LEN:
                pair_counts[merged] += 1
        candidates = Counter(
            {s: c * (len(s) - 1) for s, c in pair_counts.items() if c > 1}
        )
        merged_syms = set(symbols)
        for sym, _gain in candidates.most_common(MAX_SYMBOLS):
            merged_syms.add(sym)
        # keep the most profitable MAX_SYMBOLS symbols
        scored = []
        parse_counts = Counter(parse)
        for sym in merged_syms:
            freq = pair_counts.get(sym, 0) + parse_counts.get(sym, 0)
            scored.append((freq * max(len(sym) - 1, 1) + freq, sym))
        scored.sort(key=lambda t: (-t[0], t[1]))
        new_symbols = [sym for _score, sym in scored[:MAX_SYMBOLS]]
        if new_symbols == symbols:
            break
        symbols = new_symbols
    return symbols


def _greedy_parse(data: bytes, symbols: list[bytes]) -> list[bytes]:
    """Greedy longest-match factorization of ``data`` over ``symbols``."""
    by_first: dict[int, list[bytes]] = {}
    for sym in symbols:
        by_first.setdefault(sym[0], []).append(sym)
    for lst in by_first.values():
        lst.sort(key=len, reverse=True)
    out = []
    pos = 0
    n = len(data)
    while pos < n:
        best = None
        for sym in by_first.get(data[pos], ()):
            if data.startswith(sym, pos):
                best = sym
                break
        if best is None:
            best = data[pos : pos + 1]
        out.append(best)
        pos += len(best)
    return out


@register
class FSST(Encoding):
    """Fast Static Symbol Table compression for BYTES columns."""

    id = 16
    name = "fsst"
    kinds = frozenset({Kind.BYTES})

    def encode(self, values) -> bytes:
        items = as_bytes_list(values)
        corpus = b"".join(items)
        symbols = train_symbol_table(corpus)
        code_of = {s: i for i, s in enumerate(symbols)}
        by_first: dict[int, list[bytes]] = {}
        for sym in symbols:
            by_first.setdefault(sym[0], []).append(sym)
        for lst in by_first.values():
            lst.sort(key=len, reverse=True)

        writer = ByteWriter()
        writer.write_u8(len(symbols))
        for sym in symbols:
            writer.write_u8(len(sym))
            writer.write(sym)
        writer.write_u64(len(items))
        encoded_items = []
        for item in items:
            enc = bytearray()
            pos = 0
            n = len(item)
            while pos < n:
                match = None
                for sym in by_first.get(item[pos], ()):
                    if item.startswith(sym, pos):
                        match = sym
                        break
                if match is None:
                    enc.append(ESCAPE)
                    enc.append(item[pos])
                    pos += 1
                else:
                    enc.append(code_of[match])
                    pos += len(match)
            encoded_items.append(bytes(enc))
        for enc in encoded_items:
            writer.write_u32(len(enc))
        for enc in encoded_items:
            writer.write(enc)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> list[bytes]:
        n_symbols = reader.read_u8()
        symbols = [reader.read(reader.read_u8()) for _ in range(n_symbols)]
        count = reader.read_u64()
        lengths = [reader.read_u32() for _ in range(count)]
        out = []
        for length in lengths:
            enc = reader.read(length)
            dec = bytearray()
            pos = 0
            while pos < length:
                code = enc[pos]
                if code == ESCAPE:
                    dec.append(enc[pos + 1])
                    pos += 2
                else:
                    dec += symbols[code]
                    pos += 1
            out.append(bytes(dec))
        return out
