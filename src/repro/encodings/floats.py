"""Gorilla and Chimp XOR-based floating-point encodings.

Table 2 cites Gorilla [70] and Chimp [60]: both XOR each value with its
predecessor and exploit "patterns in XOR'd values' leading and trailing
zeros". Gorilla emits (flag, leading-zero count, meaningful-bit length,
bits); Chimp observes that trailing zeros are rare in real data and
re-encodes the leading-zero count with a small lookup table plus a
previous-window trick. We implement Gorilla faithfully and Chimp's
leading-zero-table variant (its "chimp128" ring buffer is ablated in
``benchmarks/bench_cascading.py``).

Bit streams are built with a simple append-only bit writer; values are
processed through float64 bit patterns (float32 inputs are widened
losslessly and narrowed back on decode).
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    Kind,
    as_float,
    float_dtype_code,
    float_dtype_from_code,
    register,
)
from repro.util.bitio import ByteReader, ByteWriter


class _BitWriter:
    """MSB-first bit appender used by the XOR codecs."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_bit(self, bit: int) -> None:
        self._bits.append(bit & 1)

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def getvalue(self) -> tuple[bytes, int]:
        arr = np.array(self._bits, dtype=np.uint8)
        return np.packbits(arr, bitorder="big").tobytes(), len(arr)


class _BitReader:
    """MSB-first bit consumer matching :class:`_BitWriter`."""

    def __init__(self, data: bytes, total_bits: int) -> None:
        self._bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="big"
        )[:total_bits]
        self._pos = 0

    def read_bit(self) -> int:
        bit = int(self._bits[self._pos])
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        out = 0
        for _ in range(width):
            out = (out << 1) | self.read_bit()
        return out


def _to_bits(values: np.ndarray) -> np.ndarray:
    return values.astype(np.float64).view(np.uint64)


def _leading_zeros64(x: int) -> int:
    return 64 - x.bit_length() if x else 64


def _trailing_zeros64(x: int) -> int:
    return (x & -x).bit_length() - 1 if x else 64


@register
class Gorilla(Encoding):
    """Facebook Gorilla XOR compression for float columns."""

    id = 17
    name = "gorilla"
    kinds = frozenset({Kind.FLOAT})

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        bits = _to_bits(values)
        bw = _BitWriter()
        bw.write_bits(int(bits[0]), 64)
        prev = int(bits[0])
        prev_lead, prev_trail = 65, 65  # invalid -> first xor writes window
        for raw in bits[1:]:
            xor = prev ^ int(raw)
            if xor == 0:
                bw.write_bit(0)
            else:
                bw.write_bit(1)
                lead = min(_leading_zeros64(xor), 31)
                trail = _trailing_zeros64(xor)
                if lead >= prev_lead and trail >= prev_trail:
                    bw.write_bit(0)
                    bw.write_bits(xor >> prev_trail, 64 - prev_lead - prev_trail)
                else:
                    bw.write_bit(1)
                    meaningful = 64 - lead - trail
                    bw.write_bits(lead, 5)
                    bw.write_bits(meaningful, 7)  # 7 bits: length can be 64
                    bw.write_bits(xor >> trail, meaningful)
                    prev_lead, prev_trail = lead, trail
            prev = int(raw)
        payload, n_bits = bw.getvalue()
        writer.write_u64(n_bits)
        writer.write(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=dtype)
        n_bits = reader.read_u64()
        br = _BitReader(reader.read((n_bits + 7) // 8), n_bits)
        out = np.empty(count, dtype=np.uint64)
        prev = br.read_bits(64)
        out[0] = prev
        lead, trail = 65, 65
        for i in range(1, count):
            if br.read_bit() == 0:
                out[i] = prev
                continue
            if br.read_bit() == 0:
                meaningful = 64 - lead - trail
                xor = br.read_bits(meaningful) << trail
            else:
                lead = br.read_bits(5)
                meaningful = br.read_bits(7)
                trail = 64 - lead - meaningful
                xor = br.read_bits(meaningful) << trail
            prev ^= xor
            out[i] = prev
        return out.view(np.float64).astype(dtype)


#: Chimp's leading-zero rounding table (values 0..64 -> class)
_CHIMP_LEAD_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]


def _chimp_round_lead(lead: int) -> int:
    best = 0
    for v in _CHIMP_LEAD_ROUND:
        if v <= lead:
            best = v
    return best


@register
class Chimp(Encoding):
    """Chimp: Gorilla with a 3-bit leading-zero class table.

    Flag scheme per value (2 bits):
      00 -> identical to previous
      01 -> reuse previous leading class, meaningful bits follow
      10 -> new leading class (3 bits) + meaningful bits to the end
      11 -> new leading class (3 bits) + 6-bit significant length + bits
    """

    id = 18
    name = "chimp"
    kinds = frozenset({Kind.FLOAT})

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        bits = _to_bits(values)
        bw = _BitWriter()
        bw.write_bits(int(bits[0]), 64)
        prev = int(bits[0])
        prev_lead_class = -1
        for raw in bits[1:]:
            xor = prev ^ int(raw)
            if xor == 0:
                bw.write_bits(0b00, 2)
            else:
                lead_class = _chimp_round_lead(_leading_zeros64(xor))
                trail = _trailing_zeros64(xor)
                if trail > 6:
                    # worth spending 6 bits on an explicit length
                    bw.write_bits(0b11, 2)
                    bw.write_bits(_CHIMP_LEAD_ROUND.index(lead_class), 3)
                    sig = 64 - lead_class - trail
                    bw.write_bits(sig, 6)
                    bw.write_bits(xor >> trail, sig)
                    prev_lead_class = lead_class
                elif lead_class == prev_lead_class:
                    bw.write_bits(0b01, 2)
                    bw.write_bits(xor, 64 - lead_class)
                else:
                    bw.write_bits(0b10, 2)
                    bw.write_bits(_CHIMP_LEAD_ROUND.index(lead_class), 3)
                    bw.write_bits(xor, 64 - lead_class)
                    prev_lead_class = lead_class
            prev = int(raw)
        payload, n_bits = bw.getvalue()
        writer.write_u64(n_bits)
        writer.write(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=dtype)
        n_bits = reader.read_u64()
        br = _BitReader(reader.read((n_bits + 7) // 8), n_bits)
        out = np.empty(count, dtype=np.uint64)
        prev = br.read_bits(64)
        out[0] = prev
        lead_class = 0
        for i in range(1, count):
            flag = br.read_bits(2)
            if flag == 0b00:
                out[i] = prev
                continue
            if flag == 0b11:
                lead_class = _CHIMP_LEAD_ROUND[br.read_bits(3)]
                sig = br.read_bits(6)
                trail = 64 - lead_class - sig
                xor = br.read_bits(sig) << trail
            elif flag == 0b10:
                lead_class = _CHIMP_LEAD_ROUND[br.read_bits(3)]
                xor = br.read_bits(64 - lead_class)
            else:  # 0b01
                xor = br.read_bits(64 - lead_class)
            prev ^= xor
            out[i] = prev
        return out.view(np.float64).astype(dtype)
