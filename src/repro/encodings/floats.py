"""Gorilla and Chimp XOR-based floating-point encodings.

Table 2 cites Gorilla [70] and Chimp [60]: both XOR each value with its
predecessor and exploit "patterns in XOR'd values' leading and trailing
zeros". Gorilla emits (flag, leading-zero count, meaningful-bit length,
bits); Chimp observes that trailing zeros are rare in real data and
re-encodes the leading-zero count with a small lookup table plus a
previous-window trick. We implement Gorilla faithfully and Chimp's
leading-zero-table variant (its "chimp128" ring buffer is ablated in
``benchmarks/bench_cascading.py``).

The XOR / leading-zero / trailing-zero analysis runs whole-array in
numpy; only the (small) state machine that chooses each value's token
shape stays scalar, and it emits (value, width) pairs that a single
:func:`repro.util.bitio.pack_varwidth_msb` call turns into the bit
stream. Decode walks precomputed 64-bit windows, so each token costs
two list lookups regardless of its width.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_float,
    float_dtype_code,
    float_dtype_from_code,
    register,
)
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    bit_lengths,
    pack_varwidth_msb,
)

_M64 = (1 << 64) - 1


def _to_bits(values: np.ndarray) -> np.ndarray:
    return values.astype(np.float64).view(np.uint64)


def _xor_lead_trail(bits: np.ndarray):
    """Per-transition xor plus leading/trailing zero counts, whole-array.

    The token state machines consume these one at a time; callers
    ``.tolist()`` what they iterate (one bulk conversion beats ``count``
    boxed ``int()`` calls).
    """
    xors = bits[:-1] ^ bits[1:]
    lead = 64 - bit_lengths(xors)
    low = xors & (~xors + np.uint64(1))
    trail = bit_lengths(low) - 1
    trail[xors == 0] = 64
    return xors, lead, trail


def _emit(values: list[int], widths: list[int]) -> tuple[bytes, int]:
    return pack_varwidth_msb(
        np.array(values, dtype=np.uint64), np.array(widths, dtype=np.int64)
    )


def _msb_windows(data: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Big-endian 64-bit window at every byte offset, plus next bytes."""
    raw = np.frombuffer(data, dtype=np.uint8)
    n = len(raw) + 1
    padded = np.zeros(n + 8, dtype=np.uint64)
    padded[: len(raw)] = raw
    win = np.zeros(n, dtype=np.uint64)
    for k in range(8):
        win |= padded[k : k + n] << np.uint64(8 * (7 - k))
    return win, padded[8 : 8 + n]


def _accumulate_xors(
    win: np.ndarray,
    nxt: np.ndarray,
    first: int,
    count: int,
    idxs: list[int],
    poss: list[int],
    widths: list[int],
    trails: list[int],
) -> np.ndarray:
    """Gather all payload fields whole-array and fold the XOR chain.

    ``prev ^= xor`` per value means ``out[i]`` is the running XOR of
    every field up to ``i`` — exactly ``np.bitwise_xor.accumulate`` —
    so once the scalar parse has located each payload (bit position,
    width, trailing shift), no per-value Python work remains.
    """
    xors = np.zeros(count, dtype=np.uint64)
    xors[0] = first
    if idxs:
        p = np.array(poss, dtype=np.int64)
        s = (p & 7).astype(np.uint64)
        b = p >> 3
        window = (win[b] << s) | (nxt[b] >> (np.uint64(8) - s))
        w = np.array(widths, dtype=np.uint64)
        t = np.array(trails, dtype=np.uint64)
        xors[np.array(idxs, dtype=np.int64)] = (
            window >> (np.uint64(64) - w)
        ) << t
    return np.bitwise_xor.accumulate(xors)


@register
class Gorilla(Encoding):
    """Facebook Gorilla XOR compression for float columns."""

    id = 17
    name = "gorilla"
    kinds = frozenset({Kind.FLOAT})

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        bits = _to_bits(values)
        xors, leads, trails = (
            a.tolist() for a in _xor_lead_trail(bits)
        )
        vals: list[int] = [int(bits[0])]
        widths: list[int] = [64]
        ap_v = vals.append
        ap_w = widths.append
        prev_lead, prev_trail = 65, 65  # invalid -> first xor writes window
        for j, xor in enumerate(xors):
            if xor == 0:
                ap_v(0)
                ap_w(1)
                continue
            lead = leads[j]
            if lead > 31:
                lead = 31
            trail = trails[j]
            if lead >= prev_lead and trail >= prev_trail:
                ap_v(2)  # bits '1','0': reuse the previous window
                ap_w(2)
                ap_v(xor >> prev_trail)
                ap_w(64 - prev_lead - prev_trail)
            else:
                meaningful = 64 - lead - trail
                # '11' + 5-bit lead + 7-bit length, as one 14-bit field
                ap_v((0b11 << 12) | (lead << 7) | meaningful)
                ap_w(14)
                ap_v(xor >> trail)
                ap_w(meaningful)
                prev_lead, prev_trail = lead, trail
        payload, n_bits = _emit(vals, widths)
        writer.write_u64(n_bits)
        writer.write(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=dtype)
        total = reader.read_u64()
        payload = reader.read((total + 7) // 8)
        if total < 64:
            raise EncodingError("gorilla: truncated bit stream")
        win_np, nxt_np = _msb_windows(payload)
        win = win_np.tolist()
        nxt = nxt_np.tolist()
        pos = 64
        lead, trail = 65, 65
        idxs: list[int] = []
        poss: list[int] = []
        widths: list[int] = []
        trails: list[int] = []
        for i in range(1, count):
            if pos >= total:
                raise EncodingError("gorilla: truncated bit stream")
            byte_idx = pos >> 3
            shift = pos & 7
            if shift:
                window = ((win[byte_idx] << shift) & _M64) | (
                    nxt[byte_idx] >> (8 - shift)
                )
            else:
                window = win[byte_idx]
            if not window >> 63:
                pos += 1
                continue
            if window >> 62 == 0b10:
                pos += 2
                meaningful = 64 - lead - trail
                if meaningful <= 0:
                    # corrupt stream reusing the initial (invalid)
                    # window; the scalar reference read zero bits here
                    continue
            else:
                pos += 2
                if pos + 12 > total:
                    raise EncodingError("gorilla: truncated bit stream")
                # lead(5) + length(7) sit inside the same 64-bit window
                header = (window >> 50) & 0xFFF
                lead = header >> 7
                meaningful = header & 0x7F
                trail = 64 - lead - meaningful
                pos += 12
                if trail < 0:
                    raise EncodingError("gorilla: corrupt meaningful length")
            if pos + meaningful > total:
                raise EncodingError("gorilla: truncated bit stream")
            if meaningful:
                idxs.append(i)
                poss.append(pos)
                widths.append(meaningful)
                trails.append(trail)
                pos += meaningful
        out = _accumulate_xors(
            win_np, nxt_np, win[0], count, idxs, poss, widths, trails
        )
        return out.view(np.float64).astype(dtype)


#: Chimp's leading-zero rounding table (values 0..64 -> class)
_CHIMP_LEAD_ROUND = [0, 8, 12, 16, 18, 20, 22, 24]


def _chimp_round_lead(lead: int) -> int:
    best = 0
    for v in _CHIMP_LEAD_ROUND:
        if v <= lead:
            best = v
    return best


@register
class Chimp(Encoding):
    """Chimp: Gorilla with a 3-bit leading-zero class table.

    Flag scheme per value (2 bits):
      00 -> identical to previous
      01 -> reuse previous leading class, meaningful bits follow
      10 -> new leading class (3 bits) + meaningful bits to the end
      11 -> new leading class (3 bits) + 6-bit significant length + bits
    """

    id = 18
    name = "chimp"
    kinds = frozenset({Kind.FLOAT})

    def encode(self, values) -> bytes:
        values = as_float(values)
        writer = ByteWriter()
        writer.write_u8(float_dtype_code(values.dtype))
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        bits = _to_bits(values)
        xors_np, lead_np, trail_np = _xor_lead_trail(bits)
        # leading-zero class per transition, whole-array
        class_idx = (
            np.searchsorted(_CHIMP_LEAD_ROUND, lead_np, side="right") - 1
        ).tolist()
        xors = xors_np.tolist()
        trails = trail_np.tolist()
        vals: list[int] = [int(bits[0])]
        widths: list[int] = [64]
        ap_v = vals.append
        ap_w = widths.append
        prev_class = -1
        for j, xor in enumerate(xors):
            if xor == 0:
                ap_v(0b00)
                ap_w(2)
                continue
            idx = class_idx[j]
            lead_class = _CHIMP_LEAD_ROUND[idx]
            trail = trails[j]
            if trail > 6:
                # worth spending 6 bits on an explicit length;
                # '11' + 3-bit class + 6-bit length as one 11-bit field
                sig = 64 - lead_class - trail
                ap_v((0b11 << 9) | (idx << 6) | sig)
                ap_w(11)
                ap_v(xor >> trail)
                ap_w(sig)
                prev_class = lead_class
            elif lead_class == prev_class:
                ap_v(0b01)
                ap_w(2)
                ap_v(xor)
                ap_w(64 - lead_class)
            else:
                ap_v((0b10 << 3) | idx)
                ap_w(5)
                ap_v(xor)
                ap_w(64 - lead_class)
                prev_class = lead_class
        payload, n_bits = _emit(vals, widths)
        writer.write_u64(n_bits)
        writer.write(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        dtype = float_dtype_from_code(reader.read_u8())
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=dtype)
        total = reader.read_u64()
        payload = reader.read((total + 7) // 8)
        if total < 64:
            raise EncodingError("chimp: truncated bit stream")
        win_np, nxt_np = _msb_windows(payload)
        win = win_np.tolist()
        nxt = nxt_np.tolist()
        pos = 64
        lead_class = 0
        table = _CHIMP_LEAD_ROUND
        idxs: list[int] = []
        poss: list[int] = []
        widths: list[int] = []
        trails: list[int] = []
        for i in range(1, count):
            if pos + 2 > total:
                raise EncodingError("chimp: truncated bit stream")
            byte_idx = pos >> 3
            shift = pos & 7
            if shift:
                window = ((win[byte_idx] << shift) & _M64) | (
                    nxt[byte_idx] >> (8 - shift)
                )
            else:
                window = win[byte_idx]
            flag = window >> 62
            if flag == 0b00:
                pos += 2
                continue
            if flag == 0b11:
                if pos + 11 > total:
                    raise EncodingError("chimp: truncated bit stream")
                # class(3) + length(6) sit inside the same window
                lead_class = table[(window >> 59) & 7]
                sig = (window >> 53) & 63
                trail = 64 - lead_class - sig
                if trail < 0:
                    raise EncodingError("chimp: corrupt significant length")
                pos += 11
                if pos + sig > total:
                    raise EncodingError("chimp: truncated bit stream")
                if sig:
                    idxs.append(i)
                    poss.append(pos)
                    widths.append(sig)
                    trails.append(trail)
                    pos += sig
            else:
                if flag == 0b10:
                    lead_class = table[(window >> 59) & 7]
                    pos += 5
                else:  # 0b01
                    pos += 2
                meaningful = 64 - lead_class
                if pos + meaningful > total:
                    raise EncodingError("chimp: truncated bit stream")
                idxs.append(i)
                poss.append(pos)
                widths.append(meaningful)
                trails.append(0)
                pos += meaningful
        out = _accumulate_xors(
            win_np, nxt_np, win[0], count, idxs, poss, widths, trails
        )
        return out.view(np.float64).astype(dtype)
