"""Roaring bitmap encoding for boolean columns.

Table 2: "advanced bitmap encoding that dynamically switches between
different container types based on data density" [13].

We implement the two classic container types over 2^16-row buckets:

* **array container** — sorted uint16 positions, used when the bucket
  holds fewer than 4096 set bits;
* **bitmap container** — 8 KiB packed bitmap, used for dense buckets.

This is both a Table 2 catalog entry and the storage representation of
Bullion's deletion vectors for very large files.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import Encoding, EncodingError, Kind, register
from repro.util.bitio import ByteReader, ByteWriter

BUCKET_BITS = 16
BUCKET_SIZE = 1 << BUCKET_BITS
ARRAY_CONTAINER_MAX = 4096

_CONTAINER_ARRAY = 0
_CONTAINER_BITMAP = 1


@register
class Roaring(Encoding):
    """Roaring-style hybrid bitmap over a boolean array."""

    id = 21
    name = "roaring"
    kinds = frozenset({Kind.BOOL})

    def encode(self, values) -> bytes:
        arr = np.asarray(values)
        if arr.dtype != np.bool_:
            raise EncodingError("roaring expects a boolean array")
        writer = ByteWriter()
        writer.write_u64(len(arr))
        positions = np.flatnonzero(arr).astype(np.uint64)
        high = (positions >> np.uint64(BUCKET_BITS)).astype(np.uint32)
        low = (positions & np.uint64(BUCKET_SIZE - 1)).astype(np.uint16)
        buckets, starts = np.unique(high, return_index=True)
        writer.write_u32(len(buckets))
        bounds = np.append(starts, len(positions))
        for i, bucket in enumerate(buckets):
            members = low[bounds[i] : bounds[i + 1]]
            writer.write_u32(int(bucket))
            writer.write_u32(len(members))
            if len(members) < ARRAY_CONTAINER_MAX:
                writer.write_u8(_CONTAINER_ARRAY)
                writer.write_array(members)
            else:
                writer.write_u8(_CONTAINER_BITMAP)
                bitmap = np.zeros(BUCKET_SIZE, dtype=np.bool_)
                bitmap[members] = True
                writer.write(np.packbits(bitmap, bitorder="little").tobytes())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        n_buckets = reader.read_u32()
        out = np.zeros(count, dtype=np.bool_)
        for _ in range(n_buckets):
            bucket = reader.read_u32()
            n_members = reader.read_u32()
            container = reader.read_u8()
            base = bucket * BUCKET_SIZE
            if container == _CONTAINER_ARRAY:
                members = reader.read_array(np.uint16, n_members)
                positions = base + members.astype(np.int64)
                if len(positions) and int(positions[-1]) >= count:
                    # members are sorted on encode; a final entry past
                    # the row count means a mangled bucket header
                    if int(positions.max()) >= count:
                        raise EncodingError(
                            "roaring position beyond row count"
                        )
                out[positions] = True
            elif container == _CONTAINER_BITMAP:
                if base >= count:
                    raise EncodingError("roaring bucket beyond row count")
                raw = reader.read(BUCKET_SIZE // 8)
                bits = np.unpackbits(
                    np.frombuffer(raw, dtype=np.uint8), bitorder="little"
                ).astype(np.bool_)
                end = min(base + BUCKET_SIZE, count)
                out[base:end] = bits[: end - base]
            else:
                raise EncodingError(f"bad roaring container type {container}")
        return out

    @staticmethod
    def cardinality(blob_payload: bytes) -> int:
        """Count set bits without materializing the boolean array."""
        reader = ByteReader(blob_payload)
        reader.read_u64()
        n_buckets = reader.read_u32()
        total = 0
        for _ in range(n_buckets):
            reader.read_u32()
            n_members = reader.read_u32()
            container = reader.read_u8()
            total += n_members
            if container == _CONTAINER_ARRAY:
                reader.read(2 * n_members)
            else:
                reader.read(BUCKET_SIZE // 8)
        return total
