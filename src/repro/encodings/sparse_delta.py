"""Long-sequence sparse feature delta encoding (paper §2.2, Fig 4).

Sparse features like ``clk_seq_cids`` are ``list<int64>`` vectors (e.g.
256 ad IDs) sorted by (uid, time). Consecutive vectors of the same user
overlap heavily — a *sliding window*: a few new IDs enter at the head,
a few old ones fall off the tail. The paper extends delta encoding to
these vectors:

    the first vector of the column serves as the base vector, using a
    delta flag set to 0 ... Subsequent feature encodings adopt the
    format: <delta bit> <delta range> <len(head),data> <len(tail),data>

so a row is reconstructed as ``head ++ prev[a:b] ++ tail``. Exactly as
in Fig 4, "feature metadata and indexes are placed at the beginning,
encoded via bitpacking or varint due to their smaller value. The bulk
data follows, which can be compressed via zstd" (zlib here; see
DESIGN.md substitutions).

Overlap search: the common sliding-window alignments (small shifts) are
tried first with vectorized runs, so typical rows cost O(n); the general
fallback scans all alignments (worst case O(n^2), only hit by
adversarial data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    decode_child,
    encode_child,
    register,
)
from repro.encodings.chunked import Chunked
from repro.encodings.lists import normalize_list_column
from repro.encodings.varint_enc import Varint
from repro.util.bitio import ByteReader, ByteWriter


@dataclass(frozen=True)
class Overlap:
    """A match ``cur[head_len : len(cur)-tail_len] == prev[start:end]``."""

    start: int
    end: int
    head_len: int
    tail_len: int

    @property
    def length(self) -> int:
        return self.end - self.start


def _longest_run(eq: np.ndarray) -> tuple[int, int]:
    """(start, length) of the longest run of True in a boolean array."""
    if len(eq) == 0:
        return 0, 0
    padded = np.concatenate(([False], eq, [False]))
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    if len(edges) == 0:
        return 0, 0
    starts, ends = edges[0::2], edges[1::2]
    lengths = ends - starts
    best = int(np.argmax(lengths))
    return int(starts[best]), int(lengths[best])


from functools import lru_cache


@lru_cache(maxsize=64)
def _shift_order(n_prev: int, n_cur: int) -> tuple[int, ...]:
    return tuple(sorted(range(-(n_prev - 1), n_cur), key=abs))


def find_overlap(prev: np.ndarray, cur: np.ndarray) -> Overlap:
    """Best contiguous overlap between ``prev`` and ``cur``.

    Fast paths cover the canonical sliding-window shapes (identical
    window, new IDs at the head, old IDs dropped) in O(window) time;
    the general fallback tries alignment shifts in order of increasing
    magnitude with pruning.
    """
    n_prev, n_cur = len(prev), len(cur)
    if n_prev == 0 or n_cur == 0:
        return Overlap(0, 0, 0, n_cur)
    # fast path 1: identical windows (repeat events, Fig 4 row 3)
    if n_prev == n_cur and prev[0] == cur[0] and np.array_equal(prev, cur):
        return Overlap(0, n_prev, 0, 0)
    # fast path 2: h new values at the head, window truncated to size
    # (cur = new ++ prev[:keep]) — Fig 4 row 2
    max_probe = min(8, n_cur - 1)
    for h in range(1, max_probe + 1):
        keep = min(n_cur - h, n_prev)
        if keep > 0 and prev[0] == cur[h] and np.array_equal(
            cur[h : h + keep], prev[:keep]
        ):
            return Overlap(0, keep, h, n_cur - h - keep)
    # fast path 3: d oldest values dropped from the head — Fig 4 row 4
    for d in range(1, min(8, n_prev - 1) + 1):
        keep = min(n_prev - d, n_cur)
        if keep > 0 and prev[d] == cur[0] and np.array_equal(
            cur[:keep], prev[d : d + keep]
        ):
            return Overlap(d, d + keep, 0, n_cur - keep)
    best = Overlap(0, 0, 0, n_cur)  # empty match
    # upper bound: a contiguous match cannot exceed the multiset overlap;
    # re-anchored (fresh) windows exit here in one vectorized op
    max_possible = len(np.intersect1d(prev, cur))
    if max_possible == 0:
        return best
    # shift s aligns prev[a] with cur[a + s]
    shifts = _shift_order(n_prev, n_cur)
    for shift in shifts:
        if best.length >= max_possible:
            break
        a0 = max(0, -shift)
        k0 = a0 + shift
        overlap = min(n_prev - a0, n_cur - k0)
        if overlap <= best.length:
            continue  # cannot beat current best at this shift
        eq = prev[a0 : a0 + overlap] == cur[k0 : k0 + overlap]
        run_start, run_len = _longest_run(eq)
        if run_len > best.length:
            start = a0 + run_start
            head_len = k0 + run_start
            best = Overlap(
                start,
                start + run_len,
                head_len,
                n_cur - head_len - run_len,
            )
        if run_len == overlap and overlap == min(n_prev, n_cur):
            break  # perfect sliding-window match; nothing longer exists
    return best


@register
class SparseListDelta(Encoding):
    """Fig 4 encoding for ``list<int64>`` sparse feature columns."""

    id = 25
    name = "sparse_list_delta"
    kinds = frozenset({Kind.LIST_INT})

    #: below this reuse fraction a row is re-anchored as a new base
    MIN_OVERLAP_FRACTION = 0.25

    def __init__(self, bulk_child: Encoding | None = None) -> None:
        self._bulk_child = bulk_child if bulk_child is not None else Chunked()

    def encode(self, values) -> bytes:
        rows = normalize_list_column(values, Kind.LIST_INT)
        n = len(rows)
        delta_flags = np.zeros(n, dtype=np.bool_)
        range_starts = np.zeros(n, dtype=np.int64)
        range_ends = np.zeros(n, dtype=np.int64)
        head_sizes = np.zeros(n, dtype=np.int64)
        tail_sizes = np.zeros(n, dtype=np.int64)
        bulk_parts: list[np.ndarray] = []
        prev: np.ndarray | None = None
        for i, cur in enumerate(rows):
            overlap = (
                find_overlap(prev, cur) if prev is not None else None
            )
            reuse_ok = (
                overlap is not None
                and len(cur) > 0
                and overlap.length >= self.MIN_OVERLAP_FRACTION * len(cur)
            )
            if reuse_ok:
                delta_flags[i] = True
                range_starts[i] = overlap.start
                range_ends[i] = overlap.end
                head_sizes[i] = overlap.head_len
                tail_sizes[i] = overlap.tail_len
                bulk_parts.append(cur[: overlap.head_len])
                bulk_parts.append(cur[len(cur) - overlap.tail_len :])
            else:
                # base vector: delta flag 0, full data in bulk
                head_sizes[i] = len(cur)
                bulk_parts.append(cur)
            prev = cur
        bulk = (
            np.concatenate(bulk_parts)
            if bulk_parts
            else np.zeros(0, dtype=np.int64)
        )
        writer = ByteWriter()
        writer.write_u64(n)
        flags_packed = np.packbits(delta_flags, bitorder="little").tobytes()
        writer.write_blob(flags_packed)
        encode_child(writer, range_starts, Varint())
        encode_child(writer, range_ends, Varint())
        encode_child(writer, head_sizes, Varint())
        encode_child(writer, tail_sizes, Varint())
        encode_child(writer, bulk, self._bulk_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> list[np.ndarray]:
        n = reader.read_u64()
        flags_packed = reader.read_blob()
        delta_flags = (
            np.unpackbits(
                np.frombuffer(flags_packed, dtype=np.uint8), bitorder="little"
            )[:n].astype(np.bool_)
            if n
            else np.zeros(0, dtype=np.bool_)
        )
        range_starts = decode_child(reader)
        range_ends = decode_child(reader)
        head_sizes = decode_child(reader)
        tail_sizes = decode_child(reader)
        bulk = np.asarray(decode_child(reader), dtype=np.int64)
        if n == 0:
            return []
        if bool(delta_flags[0]):
            raise EncodingError("delta row without a base vector")
        heads = np.asarray(head_sizes, dtype=np.int64)
        if len(heads) != n or len(tail_sizes) != n:
            raise EncodingError("sparse_list_delta: corrupt size columns")
        # base rows carry their whole payload as "head"; their range and
        # tail columns are padding and must not contribute
        tails = np.where(delta_flags, np.asarray(tail_sizes, np.int64), 0)
        starts = np.asarray(range_starts, dtype=np.int64)
        ends = np.asarray(range_ends, dtype=np.int64)
        if int(heads.min(initial=0)) < 0 or int(tails.min(initial=0)) < 0:
            raise EncodingError("sparse_list_delta: negative segment size")
        mids = np.where(delta_flags, ends - starts, 0)
        lens = heads + mids + tails
        prev_len = np.zeros(n, dtype=np.int64)
        prev_len[1:] = lens[:-1]
        bad_range = delta_flags & (
            (starts < 0) | (ends < starts) | (ends > prev_len)
        )
        if bad_range.any():
            raise EncodingError("sparse_list_delta: corrupt overlap range")
        bulk_counts = heads + tails
        if int(bulk_counts.sum()) > len(bulk):
            raise EncodingError("sparse_list_delta: truncated bulk data")
        # assembly stays per-row: each row is two bulk memcpys plus a
        # slice of the previous (already materialized) row, which is
        # O(total bytes) — a whole-array copy-chain resolution was
        # measured slower (chains span hundreds of rows in real sliding
        # windows, so pointer-doubling pays log-chain full gathers).
        # Rows are views into the shared bulk where possible; the seed's
        # per-row astype copies are gone.
        rows: list[np.ndarray] = []
        pos = 0
        prev: np.ndarray | None = None
        for i in range(n):
            head_len = int(heads[i])
            if not delta_flags[i]:
                cur = bulk[pos : pos + head_len]
                pos += head_len
            else:
                tail_len = int(tails[i])
                head = bulk[pos : pos + head_len]
                pos += head_len
                tail = bulk[pos : pos + tail_len]
                pos += tail_len
                middle = prev[int(starts[i]) : int(ends[i])]
                cur = np.concatenate((head, middle, tail))
            rows.append(cur)
            prev = cur
        return rows

    @staticmethod
    def plain_size(values) -> int:
        """Bytes of the trivially-encoded column (for savings reports)."""
        rows = normalize_list_column(values, Kind.LIST_INT)
        return sum(8 * len(r) + 4 for r in rows)
