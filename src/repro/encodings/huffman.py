"""Canonical Huffman encoding for small-range integers.

"An entropy-based encoding optimized for integer values in the small
range, assigning shorter codes to more frequent values" (Table 2).

We build a canonical Huffman code so only the (symbol, code length)
pairs need to be persisted; codes are reconstructed deterministically on
decode. The bit stream is materialized through numpy to keep encode/
decode out of pure-Python inner loops where possible.
"""

from __future__ import annotations

import heapq
from array import array

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_int64,
    register,
)
from repro.util.bitio import (
    BitWindowReader,
    ByteReader,
    ByteWriter,
    pack_varwidth_msb,
)

#: guardrail: Huffman tables beyond this cardinality are a selector bug
MAX_SYMBOLS = 65536

#: lookup-table tag for codes deeper than the table (resolved scalar)
_DEEP_CODE = 255


class _DeepCodeResolver:
    """Scalar fallback for codes deeper than the decode lookup table.

    Canonical codes of one length, left-aligned to 64 bits, occupy a
    contiguous range below ``(first + count) << (64 - length)``; prefix-
    freeness keeps those upper bounds increasing with length, so the
    code length at a bit position is found by bisecting its 64-bit
    window against them.
    """

    def __init__(
        self, raw, total_bits, uniq_lens, first_rank, group_ends,
        codes_sorted,
    ) -> None:
        self._window = BitWindowReader(raw, total_bits)
        self._total_bits = total_bits
        self._lens = [int(x) for x in uniq_lens]
        self._first_rank = [int(x) for x in first_rank]
        self._first_code = [int(codes_sorted[lo]) for lo in first_rank]
        self._bounds = [
            ((int(codes_sorted[hi - 1]) + 1) << (64 - int(ln))) - 1
            for ln, hi in zip(uniq_lens, group_ends)
            if int(ln) > 0
        ]
        if self._lens and self._lens[0] == 0:
            self._lens = self._lens[1:]
            self._first_rank = self._first_rank[1:]
            self._first_code = self._first_code[1:]

    def resolve(self, pos: int) -> tuple[int, int]:
        import bisect

        window = self._window.peek64(pos)
        group = bisect.bisect_left(self._bounds, window)
        if group >= len(self._lens):
            raise EncodingError("corrupt huffman bit stream")
        length = self._lens[group]
        if pos + length > self._total_bits:
            raise EncodingError("corrupt huffman bit stream")
        rank = self._first_rank[group] + (
            (window >> (64 - length)) - self._first_code[group]
        )
        return length, rank


def _code_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol via the standard heap algorithm."""
    if len(symbols) == 1:
        return np.array([1], dtype=np.uint8)
    heap = [(int(c), i, None) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    tick = len(heap)
    parents: dict[int, tuple] = {}
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        node = (a[0] + b[0], tick, (a, b))
        tick += 1
        heapq.heappush(heap, node)
    lengths = np.zeros(len(symbols), dtype=np.uint8)

    stack = [(heap[0], 0)]
    while stack:
        (count, ident, children), depth = stack.pop()
        if children is None:
            lengths[ident] = max(depth, 1)
        else:
            stack.append(((children[0]), depth + 1))
            stack.append(((children[1]), depth + 1))
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes given code lengths (sorted-by-length rule)."""
    order = np.lexsort((np.arange(len(lengths)), lengths))
    codes = np.zeros(len(lengths), dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        length = int(lengths[idx])
        code <<= length - prev_len
        codes[idx] = code
        code += 1
        prev_len = length
    return codes


@register
class Huffman(Encoding):
    """Canonical Huffman over the distinct values of an int64 column."""

    id = 8
    name = "huffman"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u64(len(values))
        if len(values) == 0:
            writer.write_u32(0)
            return writer.getvalue()
        symbols, inverse, counts = np.unique(
            values, return_inverse=True, return_counts=True
        )
        if len(symbols) > MAX_SYMBOLS:
            raise EncodingError(
                f"huffman table would need {len(symbols)} symbols "
                f"(max {MAX_SYMBOLS}); use dictionary or FOR instead"
            )
        lengths = _code_lengths(symbols, counts)
        codes = _canonical_codes(lengths)
        writer.write_u32(len(symbols))
        writer.write_array(symbols.astype(np.int64))
        writer.write_array(lengths)
        # emit bit stream: per value, `length` bits of its code, MSB first
        payload, total_bits = pack_varwidth_msb(
            codes[inverse], lengths[inverse].astype(np.int64)
        )
        writer.write_u64(total_bits)
        writer.write(payload)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        n_symbols = reader.read_u32()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        symbols = reader.read_array(np.int64, n_symbols)
        lengths = reader.read_array(np.uint8, n_symbols)
        codes = _canonical_codes(lengths)
        total_bits = reader.read_u64()
        raw = reader.read((total_bits + 7) // 8)
        max_len = int(lengths.max()) if n_symbols else 0
        if max_len == 0 or max_len > 64:
            raise EncodingError("corrupt huffman bit stream")
        if total_bits == 0:
            raise EncodingError("corrupt huffman bit stream")
        order = np.lexsort((np.arange(n_symbols), lengths))
        sym_by_rank = symbols[order]
        sorted_lens = lengths[order].astype(np.int64)
        codes_sorted = codes[order]

        # one-shot lookup table over the first T bits of a code: slot ->
        # (code length, canonical rank). Codes deeper than T bits mark
        # their shared T-bit prefix slots with the escape tag and are
        # resolved scalar (a Huffman code of depth d occurs with
        # frequency ~2^-d, so T=18 makes escapes vanishingly rare).
        table_bits = min(max_len, 18)
        tbl_len = np.zeros(1 << table_bits, dtype=np.uint8)
        tbl_rank = np.zeros(1 << table_bits, dtype=np.int32)
        uniq_lens, first_rank = np.unique(sorted_lens, return_index=True)
        group_ends = np.append(first_rank[1:], n_symbols)
        for length, lo, hi in zip(uniq_lens, first_rank, group_ends):
            length = int(length)
            if length == 0:  # zero-length entries are never emitted
                continue
            group_codes = codes_sorted[lo:hi].astype(np.int64)
            if length <= table_bits:
                span = 1 << (table_bits - length)
                slots = (
                    (group_codes << (table_bits - length))[:, None]
                    + np.arange(span)[None, :]
                ).ravel()
                tbl_len[slots] = length
                tbl_rank[slots] = np.repeat(np.arange(lo, hi), span)
            else:
                slots = np.unique(group_codes >> (length - table_bits))
                tbl_len[slots] = _DEEP_CODE

        # T-bit window at every bit position, via byte-aligned 32-bit
        # windows and the 8 sub-byte shifts (r + T <= 25 < 32).
        n_bytes = len(raw)
        pad = np.zeros(n_bytes + 8, dtype=np.uint32)
        pad[:n_bytes] = np.frombuffer(raw, dtype=np.uint8)
        win32 = (
            (pad[0:n_bytes] << np.uint32(24))
            | (pad[1 : n_bytes + 1] << np.uint32(16))
            | (pad[2 : n_bytes + 2] << np.uint32(8))
            | pad[3 : n_bytes + 3]
        )
        slot_at = np.empty(total_bits, dtype=np.int32)
        for r in range(8):
            m = len(slot_at[r::8])
            slot_at[r::8] = (
                (win32[:m] << np.uint32(r)) >> np.uint32(32 - table_bits)
            ).astype(np.int32)

        # per-position advance, with out-of-band marks above total_bits:
        # sink (invalid slot / overrun / exhausted) and deep-code escape.
        sink = total_bits + 2
        escape = total_bits + 1
        adv = tbl_len[slot_at].astype(np.int32)
        step_np = np.empty(total_bits + 1, dtype=np.int32)
        body = step_np[:total_bits]
        np.add(np.arange(total_bits, dtype=np.int32), adv, out=body)
        body[adv == 0] = sink
        body[body > total_bits] = sink
        body[adv == _DEEP_CODE] = escape
        step_np[total_bits] = sink
        # array('i') wraps the raw buffer without boxing every element
        # the way .tolist() would; the walk below indexes it count times
        step = array("i", step_np.tobytes())

        # walk the code chain (sequential by nature; each hop is two
        # list lookups), then classify all token positions in one gather
        seq = np.empty(count, dtype=np.int64)
        deep: list[tuple[int, int]] = []
        resolver = None
        pos = 0
        for i in range(count):
            seq[i] = pos
            nxt = step[pos]
            if nxt > total_bits:
                if nxt != escape:
                    raise EncodingError("corrupt huffman bit stream")
                if resolver is None:
                    resolver = _DeepCodeResolver(
                        raw, total_bits, uniq_lens, first_rank,
                        group_ends, codes_sorted,
                    )
                length, rank = resolver.resolve(pos)
                deep.append((i, rank))
                nxt = pos + length
            pos = nxt
        ranks = tbl_rank[slot_at[seq]].astype(np.int64)
        for i, rank in deep:
            ranks[i] = rank
        return sym_by_rank[ranks].astype(np.int64)
