"""Canonical Huffman encoding for small-range integers.

"An entropy-based encoding optimized for integer values in the small
range, assigning shorter codes to more frequent values" (Table 2).

We build a canonical Huffman code so only the (symbol, code length)
pairs need to be persisted; codes are reconstructed deterministically on
decode. The bit stream is materialized through numpy to keep encode/
decode out of pure-Python inner loops where possible.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_int64,
    register,
)
from repro.util.bitio import ByteReader, ByteWriter

#: guardrail: Huffman tables beyond this cardinality are a selector bug
MAX_SYMBOLS = 65536


def _code_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Huffman code length per symbol via the standard heap algorithm."""
    if len(symbols) == 1:
        return np.array([1], dtype=np.uint8)
    heap = [(int(c), i, None) for i, c in enumerate(counts)]
    heapq.heapify(heap)
    tick = len(heap)
    parents: dict[int, tuple] = {}
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        node = (a[0] + b[0], tick, (a, b))
        tick += 1
        heapq.heappush(heap, node)
    lengths = np.zeros(len(symbols), dtype=np.uint8)

    stack = [(heap[0], 0)]
    while stack:
        (count, ident, children), depth = stack.pop()
        if children is None:
            lengths[ident] = max(depth, 1)
        else:
            stack.append(((children[0]), depth + 1))
            stack.append(((children[1]), depth + 1))
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes given code lengths (sorted-by-length rule)."""
    order = np.lexsort((np.arange(len(lengths)), lengths))
    codes = np.zeros(len(lengths), dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        length = int(lengths[idx])
        code <<= length - prev_len
        codes[idx] = code
        code += 1
        prev_len = length
    return codes


@register
class Huffman(Encoding):
    """Canonical Huffman over the distinct values of an int64 column."""

    id = 8
    name = "huffman"
    kinds = frozenset({Kind.INT})

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u64(len(values))
        if len(values) == 0:
            writer.write_u32(0)
            return writer.getvalue()
        symbols, inverse, counts = np.unique(
            values, return_inverse=True, return_counts=True
        )
        if len(symbols) > MAX_SYMBOLS:
            raise EncodingError(
                f"huffman table would need {len(symbols)} symbols "
                f"(max {MAX_SYMBOLS}); use dictionary or FOR instead"
            )
        lengths = _code_lengths(symbols, counts)
        codes = _canonical_codes(lengths)
        writer.write_u32(len(symbols))
        writer.write_array(symbols.astype(np.int64))
        writer.write_array(lengths)
        # emit bit stream: per value, `length` bits of its code, MSB first
        value_codes = codes[inverse]
        value_lengths = lengths[inverse].astype(np.int64)
        total_bits = int(value_lengths.sum())
        bit_parts = []
        for code, length in zip(value_codes, value_lengths):
            length = int(length)
            bits = (int(code) >> np.arange(length - 1, -1, -1)) & 1
            bit_parts.append(bits.astype(np.uint8))
        all_bits = (
            np.concatenate(bit_parts) if bit_parts else np.zeros(0, dtype=np.uint8)
        )
        writer.write_u64(total_bits)
        writer.write(np.packbits(all_bits, bitorder="big").tobytes())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        n_symbols = reader.read_u32()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        symbols = reader.read_array(np.int64, n_symbols)
        lengths = reader.read_array(np.uint8, n_symbols)
        codes = _canonical_codes(lengths)
        # canonical decode table: (length, code) -> symbol index
        table = {
            (int(lengths[i]), int(codes[i])): i for i in range(n_symbols)
        }
        total_bits = reader.read_u64()
        raw = reader.read((total_bits + 7) // 8)
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="big")
        out = np.empty(count, dtype=np.int64)
        pos = 0
        acc = 0
        acc_len = 0
        produced = 0
        max_len = int(lengths.max())
        while produced < count:
            if acc_len > max_len or pos >= total_bits:
                raise EncodingError("corrupt huffman bit stream")
            acc = (acc << 1) | int(bits[pos])
            pos += 1
            acc_len += 1
            hit = table.get((acc_len, acc))
            if hit is not None:
                out[produced] = symbols[hit]
                produced += 1
                acc = 0
                acc_len = 0
        return out
