"""Run-Length Encoding with composable sub-columns.

"Compresses repeated values by storing distinct values and their
consecutive occurrence counts in separate sub-columns" (Table 2). Both
sub-columns are nested self-describing blobs, so a cascade can choose
e.g. Dictionary for the run values and Varint for the run lengths.

The deletion story for RLE (paper §2.1) is *not* in-place masking —
masking can grow the re-encoded data — but drop-and-realign: deleted
elements are removed before re-encoding and a deletion vector restores
offsets at read time. :func:`runs_without` implements the drop step and
is used by :mod:`repro.core.deletion`.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_int64,
    decode_child,
    encode_child,
    register,
)
from repro.encodings.varint_enc import Varint, ZigZag
from repro.util.bitio import ByteReader, ByteWriter


def compute_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split an array into (run_values, run_lengths)."""
    if len(values) == 0:
        return values[:0], np.zeros(0, dtype=np.int64)
    change = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(values)]))
    return values[starts], (ends - starts).astype(np.int64)


def runs_without(values: np.ndarray, drop_mask: np.ndarray) -> np.ndarray:
    """Values with ``drop_mask`` positions removed (deletion support)."""
    return values[~drop_mask]


@register
class RLE(Encoding):
    """Run-length encoding of int64 (bools are cast through int)."""

    id = 4
    name = "rle"
    kinds = frozenset({Kind.INT, Kind.BOOL})

    def __init__(
        self,
        values_child: Encoding | None = None,
        counts_child: Encoding | None = None,
    ) -> None:
        self._values_child = values_child if values_child is not None else ZigZag()
        self._counts_child = counts_child if counts_child is not None else Varint()

    def encode(self, values) -> bytes:
        arr = np.asarray(values)
        is_bool = arr.dtype == np.bool_
        arr = arr.astype(np.int64) if is_bool else as_int64(arr)
        run_values, run_lengths = compute_runs(arr)
        writer = ByteWriter()
        writer.write_u8(1 if is_bool else 0)
        writer.write_u64(len(arr))
        encode_child(writer, run_values, self._values_child)
        encode_child(writer, run_lengths, self._counts_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        is_bool = reader.read_u8() == 1
        total = reader.read_u64()
        run_values = decode_child(reader)
        run_lengths = decode_child(reader)
        if int(run_lengths.sum()) != total:
            raise EncodingError(
                f"RLE corrupt: run lengths sum to {int(run_lengths.sum())}, "
                f"expected {total}"
            )
        out = np.repeat(run_values.astype(np.int64), run_lengths)
        return out.astype(np.bool_) if is_bool else out
