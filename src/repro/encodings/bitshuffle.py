"""BitShuffle encoding.

Table 2: "a bit-level transformation that rearranges data by transposing
a matrix of elements-by-bits, grouping bits of the same significance
level together to improve compression efficiency."

On its own the transpose is size-neutral; its value is as a *cascade
stage* in front of a general-purpose codec (the reference bitshuffle
library pairs it with LZ4; we pair it with :class:`Chunked`/zlib by
default). Grouping same-significance bits turns slowly-varying numeric
columns into long runs of identical bytes.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_float,
    as_int64,
    decode_child,
    encode_child,
    float_dtype_code,
    float_dtype_from_code,
    infer_kind,
    register,
)
from repro.encodings.chunked import Chunked
from repro.util.bitio import ByteReader, ByteWriter

_TAG_INT = 0
_TAG_FLOAT = 1


def bit_transpose(raw: np.ndarray) -> bytes:
    """Transpose an (n, itemsize*8) bit matrix into significance-major order."""
    bytes_view = raw.view(np.uint8).reshape(len(raw), raw.dtype.itemsize)
    bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
    return np.packbits(bits.T.reshape(-1), bitorder="little").tobytes()


def bit_untranspose(data: bytes, dtype, count: int) -> np.ndarray:
    """Inverse of :func:`bit_transpose`."""
    dt = np.dtype(dtype)
    width = dt.itemsize * 8
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8),
                         bitorder="little")
    bits = bits[: width * count].reshape(width, count).T
    packed = np.packbits(bits.reshape(-1), bitorder="little").tobytes()
    return np.frombuffer(packed[: count * dt.itemsize], dtype=dt).copy()


@register
class BitShuffle(Encoding):
    """Bit transpose + child compression (Chunked/zlib by default)."""

    id = 15
    name = "bitshuffle"
    kinds = frozenset({Kind.INT, Kind.FLOAT})

    def __init__(self, child: Encoding | None = None) -> None:
        self._child = child if child is not None else Chunked()

    def encode(self, values) -> bytes:
        kind = infer_kind(values)
        writer = ByteWriter()
        if kind == Kind.INT:
            arr = as_int64(values)
            writer.write_u8(_TAG_INT)
        elif kind == Kind.FLOAT:
            arr = as_float(values)
            writer.write_u8(_TAG_FLOAT)
            writer.write_u8(float_dtype_code(arr.dtype))
        else:  # pragma: no cover - guarded by kinds
            raise EncodingError(f"bitshuffle cannot encode {kind}")
        writer.write_u64(len(arr))
        transposed = bit_transpose(arr) if len(arr) else b""
        encode_child(writer, [transposed], self._child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        tag = reader.read_u8()
        dtype = np.int64 if tag == _TAG_INT else float_dtype_from_code(
            reader.read_u8()
        )
        count = reader.read_u64()
        transposed = decode_child(reader)[0]
        if count == 0:
            return np.zeros(0, dtype=dtype)
        return bit_untranspose(transposed, dtype, count)
