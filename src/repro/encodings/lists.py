"""Generic list encoding: offsets sub-column + flattened values.

This is the Parquet-equivalent physical layout for ``list<int64>`` /
``list<float>`` columns (repetition levels collapse to an offsets array
for one nesting level) and the baseline the paper's sparse-feature
delta encoding (Fig 4) is compared against.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    decode_child,
    encode_child,
    float_dtype_code,
    float_dtype_from_code,
    infer_kind,
    register,
)
from repro.encodings.delta import Delta
from repro.encodings.trivial import Trivial
from repro.util.bitio import ByteReader, ByteWriter

_TAG_INT = 0
_TAG_FLOAT = 1
_TAG_BYTES = 2
_TAG_NESTED_INT = 3


def normalize_list_column(values, kind: Kind) -> list[np.ndarray]:
    """Coerce a LIST_* column into a list of 1-D numpy arrays."""
    dtype = np.int64 if kind == Kind.LIST_INT else np.float64
    out = []
    for item in values:
        arr = np.asarray(item)
        if arr.ndim != 1:
            raise EncodingError("list columns must contain 1-D sequences")
        if kind == Kind.LIST_INT:
            arr = arr.astype(np.int64, copy=False)
        elif arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(dtype)
        out.append(arr)
    return out


@register
class ListEncoding(Encoding):
    """Offsets + flattened values, each a composable sub-column."""

    id = 24
    name = "list"
    kinds = frozenset(
        {Kind.LIST_INT, Kind.LIST_FLOAT, Kind.LIST_BYTES, Kind.LIST_LIST_INT}
    )

    def __init__(
        self,
        values_child: Encoding | None = None,
        offsets_child: Encoding | None = None,
    ) -> None:
        self._values_child = values_child if values_child is not None else Trivial()
        self._offsets_child = offsets_child if offsets_child is not None else Delta()

    def encode(self, values) -> bytes:
        kind = infer_kind(values) if len(values) else Kind.LIST_INT
        if kind not in self.kinds:
            raise EncodingError(f"list encoding cannot handle {kind}")
        writer = ByteWriter()
        if kind == Kind.LIST_BYTES:
            rows = [[bytes(b) for b in row] for row in values]
            writer.write_u8(_TAG_BYTES)
            flat: object = [b for row in rows for b in row]
        elif kind == Kind.LIST_LIST_INT:
            rows = [
                [np.asarray(inner, dtype=np.int64) for inner in row]
                for row in values
            ]
            writer.write_u8(_TAG_NESTED_INT)
            flat = [inner for row in rows for inner in row]
        elif kind == Kind.LIST_INT:
            rows = normalize_list_column(values, kind)
            writer.write_u8(_TAG_INT)
            flat = (
                np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
            ).astype(np.int64)
        else:
            rows = normalize_list_column(values, kind)
            writer.write_u8(_TAG_FLOAT)
            flat = (
                np.concatenate(rows) if rows else np.zeros(0, dtype=np.float64)
            )
            if flat.dtype not in (np.float32, np.float64):
                flat = flat.astype(np.float64)
            writer.write_u8(float_dtype_code(flat.dtype))
        lengths = np.fromiter(
            (len(r) for r in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
        encode_child(writer, offsets, self._offsets_child)
        if kind == Kind.LIST_LIST_INT:
            encode_child(writer, flat, ListEncoding(self._values_child))
        else:
            encode_child(writer, flat, self._values_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        tag = reader.read_u8()
        if tag == _TAG_FLOAT:
            float_dtype_from_code(reader.read_u8())  # dtype carried by child
        offsets = decode_child(reader)
        flat = decode_child(reader)
        return [
            flat[int(offsets[i]) : int(offsets[i + 1])]
            for i in range(len(offsets) - 1)
        ]
