"""Delta and frame-of-reference (FOR) encodings.

Delta "stores differences between consecutive values ... effective for
monotonic or slowly-changing sequences" (Table 2); deltas go through a
child encoding (zigzag+varint by default).

FOR-delta "declares a base value for each block ... encoding data as
deltas relative to these values. It supports random access to any
element, and is often coupled with bit-packing" (§2.1). We keep the
classic block structure: per-block base + per-block bit width + packed
offsets, which is also what gives the deletion masker a fixed-width
slot to scrub.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_int64,
    decode_child,
    encode_child,
    register,
)
from repro.encodings.varint_enc import ZigZag
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    bit_lengths,
    min_bit_width,
    pack_bits,
    unpack_bits,
)


@register
class Delta(Encoding):
    """First-order differences with a composable deltas sub-column."""

    id = 6
    name = "delta"
    kinds = frozenset({Kind.INT})

    def __init__(self, deltas_child: Encoding | None = None) -> None:
        self._deltas_child = deltas_child if deltas_child is not None else ZigZag()

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        writer.write_i64(int(values[0]))
        deltas = np.diff(values)
        encode_child(writer, deltas, self._deltas_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        first = reader.read_i64()
        deltas = decode_child(reader)
        out = np.empty(count, dtype=np.int64)
        out[0] = first
        if count > 1:
            np.cumsum(deltas, out=out[1:])
            out[1:] += first
        return out


DEFAULT_FOR_BLOCK = 128


@register
class FrameOfReference(Encoding):
    """Per-block base + bit-packed offsets (FOR-delta of §2.1)."""

    id = 7
    name = "for"
    kinds = frozenset({Kind.INT})

    def __init__(self, block_size: int = DEFAULT_FOR_BLOCK) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u32(self._block_size)
        writer.write_u64(len(values))
        bs = self._block_size
        if bs == DEFAULT_FOR_BLOCK and len(values):
            # whole-array path for the canonical 128-value blocks: block
            # mins/maxes via one reshape (partial tail handled apart so
            # padding can't leak into min), then one batch bit pack —
            # byte-identical to the per-block loop below
            from repro.encodings.fastpfor import _batch_pack

            n = len(values)
            n_blocks = (n + bs - 1) // bs
            n_full = n // bs
            bases = np.empty(n_blocks, dtype=np.int64)
            if n_full:
                bases[:n_full] = (
                    values[: n_full * bs].reshape(-1, bs).min(axis=1)
                )
            if n_blocks > n_full:
                bases[-1] = values[n_full * bs :].min()
            block_id = np.arange(n, dtype=np.int64) >> 7
            offsets = (values - bases[block_id]).astype(np.uint64)
            widths64 = np.zeros(n_blocks, dtype=np.int64)
            if n_full:
                widths64[:n_full] = bit_lengths(
                    offsets[: n_full * bs].reshape(-1, bs).max(axis=1)
                )
            if n_blocks > n_full:
                widths64[-1] = int(offsets[n_full * bs :].max()).bit_length()
            writer.write_array(bases)
            writer.write_array(widths64.astype(np.uint8))
            writer.write(_batch_pack(offsets, widths64, n))
            return writer.getvalue()
        n_blocks = (len(values) + bs - 1) // bs
        bases = np.empty(n_blocks, dtype=np.int64)
        widths = np.empty(n_blocks, dtype=np.uint8)
        packed_parts = []
        for b in range(n_blocks):
            block = values[b * bs : (b + 1) * bs]
            base = int(block.min())
            offsets = (block - base).astype(np.uint64)
            width = min_bit_width(offsets)
            bases[b] = base
            widths[b] = width
            packed_parts.append(pack_bits(offsets, width))
        writer.write_array(bases)
        writer.write_array(widths)
        for part in packed_parts:
            writer.write(part)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        block_size = reader.read_u32()
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if block_size == 0:
            raise EncodingError("for: zero block size")
        n_blocks = (count + block_size - 1) // block_size
        bases = reader.read_array(np.int64, n_blocks)
        widths = reader.read_array(np.uint8, n_blocks)
        if block_size == DEFAULT_FOR_BLOCK:
            from repro.encodings.fastpfor import _batch_unpack, _block_layout

            widths64 = widths.astype(np.int64)
            if int(widths64.max(initial=0)) > 64:
                raise EncodingError("for: corrupt block width")
            _n_per, block_bytes, _offs = _block_layout(count, widths64)
            parts = reader.read(int(block_bytes.sum()))
            offsets = _batch_unpack(parts, widths64, count)
            block_id = np.arange(count, dtype=np.int64) >> 7
            return offsets.astype(np.int64) + bases[block_id]
        out = np.empty(count, dtype=np.int64)
        for b in range(n_blocks):
            n = min(block_size, count - b * block_size)
            width = int(widths[b])
            n_bytes = (width * n + 7) // 8
            offsets = unpack_bits(reader.read(n_bytes), width, n)
            out[b * block_size : b * block_size + n] = (
                offsets.astype(np.int64) + bases[b]
            )
        return out
