"""Delta and frame-of-reference (FOR) encodings.

Delta "stores differences between consecutive values ... effective for
monotonic or slowly-changing sequences" (Table 2); deltas go through a
child encoding (zigzag+varint by default).

FOR-delta "declares a base value for each block ... encoding data as
deltas relative to these values. It supports random access to any
element, and is often coupled with bit-packing" (§2.1). We keep the
classic block structure: per-block base + per-block bit width + packed
offsets, which is also what gives the deletion masker a fixed-width
slot to scrub.
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    Kind,
    as_int64,
    decode_child,
    encode_child,
    register,
)
from repro.encodings.varint_enc import ZigZag
from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    min_bit_width,
    pack_bits,
    unpack_bits,
)


@register
class Delta(Encoding):
    """First-order differences with a composable deltas sub-column."""

    id = 6
    name = "delta"
    kinds = frozenset({Kind.INT})

    def __init__(self, deltas_child: Encoding | None = None) -> None:
        self._deltas_child = deltas_child if deltas_child is not None else ZigZag()

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u64(len(values))
        if len(values) == 0:
            return writer.getvalue()
        writer.write_i64(int(values[0]))
        deltas = np.diff(values)
        encode_child(writer, deltas, self._deltas_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        first = reader.read_i64()
        deltas = decode_child(reader)
        out = np.empty(count, dtype=np.int64)
        out[0] = first
        if count > 1:
            np.cumsum(deltas, out=out[1:])
            out[1:] += first
        return out


DEFAULT_FOR_BLOCK = 128


@register
class FrameOfReference(Encoding):
    """Per-block base + bit-packed offsets (FOR-delta of §2.1)."""

    id = 7
    name = "for"
    kinds = frozenset({Kind.INT})

    def __init__(self, block_size: int = DEFAULT_FOR_BLOCK) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size

    def encode(self, values) -> bytes:
        values = as_int64(values)
        writer = ByteWriter()
        writer.write_u32(self._block_size)
        writer.write_u64(len(values))
        n_blocks = (len(values) + self._block_size - 1) // self._block_size
        bases = np.empty(n_blocks, dtype=np.int64)
        widths = np.empty(n_blocks, dtype=np.uint8)
        packed_parts = []
        for b in range(n_blocks):
            block = values[b * self._block_size : (b + 1) * self._block_size]
            base = int(block.min())
            offsets = (block - base).astype(np.uint64)
            width = min_bit_width(offsets)
            bases[b] = base
            widths[b] = width
            packed_parts.append(pack_bits(offsets, width))
        writer.write_array(bases)
        writer.write_array(widths)
        for part in packed_parts:
            writer.write(part)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader) -> np.ndarray:
        block_size = reader.read_u32()
        count = reader.read_u64()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        n_blocks = (count + block_size - 1) // block_size
        bases = reader.read_array(np.int64, n_blocks)
        widths = reader.read_array(np.uint8, n_blocks)
        out = np.empty(count, dtype=np.int64)
        for b in range(n_blocks):
            n = min(block_size, count - b * block_size)
            width = int(widths[b])
            n_bytes = (width * n + 7) // 8
            offsets = unpack_bits(reader.read(n_bytes), width, n)
            out[b * block_size : b * block_size + n] = (
                offsets.astype(np.int64) + bases[b]
            )
        return out
