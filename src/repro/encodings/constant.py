"""Constant and MainlyConstant (frequency) encodings.

Table 2:
* Constant — "optimizes storage for columns containing a single
  repeated value by storing only the constant value";
* MainlyConstant — "optimizes columns dominated by a single value,
  storing the constant value, positions of exceptions, and their
  corresponding values. Also known as Frequency Encoding."
"""

from __future__ import annotations

import numpy as np

from repro.encodings.base import (
    Encoding,
    EncodingError,
    Kind,
    as_bytes_list,
    decode_child,
    encode_child,
    infer_kind,
    register,
)
from repro.encodings.trivial import Trivial
from repro.encodings.varint_enc import Varint
from repro.util.bitio import ByteReader, ByteWriter


def _most_common(values) -> object:
    """Most frequent element (mode) of the column."""
    if isinstance(values, np.ndarray):
        uniq, counts = np.unique(values, return_counts=True)
        return uniq[int(np.argmax(counts))]
    counter: dict = {}
    for v in values:
        counter[v] = counter.get(v, 0) + 1
    return max(counter.items(), key=lambda kv: kv[1])[0]


@register
class Constant(Encoding):
    """Store a single value + count; refuses non-constant input."""

    id = 12
    name = "constant"
    kinds = frozenset({Kind.INT, Kind.FLOAT, Kind.BYTES, Kind.BOOL})

    def encode(self, values) -> bytes:
        kind = infer_kind(values)
        n = len(values)
        writer = ByteWriter()
        writer.write_u64(n)
        if n == 0:
            # degenerate: remember the kind so decode returns the right type
            writer.write_u8(_KIND_CODE[kind])
            encode_child(writer, _empty(kind), Trivial())
            return writer.getvalue()
        first = values[0]
        if isinstance(values, np.ndarray):
            if not bool((values == first).all()):
                raise EncodingError("constant encoding on non-constant data")
            single = values[:1]
        else:
            items = as_bytes_list(values)
            if any(v != items[0] for v in items):
                raise EncodingError("constant encoding on non-constant data")
            single = items[:1]
        writer.write_u8(_KIND_CODE[kind])
        encode_child(writer, single, Trivial())
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        n = reader.read_u64()
        kind_code = reader.read_u8()
        single = decode_child(reader)
        if n == 0:
            return single
        if isinstance(single, np.ndarray):
            return np.repeat(single, n)
        return [single[0]] * n


@register
class MainlyConstant(Encoding):
    """Mode value + exception positions + exception values."""

    id = 13
    name = "mainly_constant"
    kinds = frozenset({Kind.INT, Kind.FLOAT, Kind.BYTES})

    def __init__(
        self,
        exceptions_child: Encoding | None = None,
        positions_child: Encoding | None = None,
    ) -> None:
        self._exceptions_child = (
            exceptions_child if exceptions_child is not None else Trivial()
        )
        self._positions_child = (
            positions_child if positions_child is not None else Varint()
        )

    def encode(self, values) -> bytes:
        kind = infer_kind(values)
        writer = ByteWriter()
        writer.write_u64(len(values))
        writer.write_u8(_KIND_CODE[kind])
        if len(values) == 0:
            encode_child(writer, _empty(kind), Trivial())
            encode_child(writer, np.zeros(0, dtype=np.int64), self._positions_child)
            encode_child(writer, _empty(kind), self._exceptions_child)
            return writer.getvalue()
        mode = _most_common(values)
        if isinstance(values, np.ndarray):
            exc_mask = values != mode
            positions = np.flatnonzero(exc_mask).astype(np.int64)
            exceptions = values[exc_mask]
            constant = values[values == mode][:1]
        else:
            items = as_bytes_list(values)
            positions = np.array(
                [i for i, v in enumerate(items) if v != mode], dtype=np.int64
            )
            exceptions = [v for v in items if v != mode]
            constant = [mode]
        encode_child(writer, constant, Trivial())
        deltas = np.diff(positions, prepend=np.int64(0)) if len(positions) else positions
        encode_child(writer, deltas, self._positions_child)
        encode_child(writer, exceptions, self._exceptions_child)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        n = reader.read_u64()
        kind_code = reader.read_u8()
        constant = decode_child(reader)
        deltas = decode_child(reader)
        exceptions = decode_child(reader)
        positions = (
            np.cumsum(deltas.astype(np.int64)) if len(deltas) else
            np.zeros(0, dtype=np.int64)
        )
        if isinstance(constant, np.ndarray):
            if n == 0:
                return constant
            out = np.repeat(constant, n)
            if len(positions):
                out[positions] = exceptions
            return out
        out_list = ([constant[0]] * n) if n else []
        for pos, val in zip(positions, exceptions):
            out_list[int(pos)] = val
        return out_list


_KIND_CODE = {Kind.INT: 0, Kind.FLOAT: 1, Kind.BYTES: 2, Kind.BOOL: 3}


def _empty(kind: Kind):
    if kind == Kind.INT:
        return np.zeros(0, dtype=np.int64)
    if kind == Kind.FLOAT:
        return np.zeros(0, dtype=np.float64)
    if kind == Kind.BOOL:
        return np.zeros(0, dtype=np.bool_)
    return []
