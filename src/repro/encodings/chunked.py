"""Chunked general-purpose block compression.

Table 2: "applies zstd compression to fixed-size chunks (256KB) of raw
data, particularly effective for ML datasets with local patterns."

Substitution note (see DESIGN.md): zstd is not available offline, so the
block codec is stdlib ``zlib``. The structure — fixed-size chunks of a
child-encoded byte stream, independently decompressible — is identical;
only the constant-factor ratio/speed differ.

Chunked is a *wrapper* encoding: it first encodes its child blob, then
compresses the child's bytes. That is exactly how the paper positions
general-purpose compression at the bottom of a cascade ("formats should
not apply general-purpose block compression by default" — but it stays
available where it wins, e.g. cold features).
"""

from __future__ import annotations

import zlib

from repro.encodings.base import (
    Encoding,
    Kind,
    decode_blob,
    encode_blob,
    register,
)
from repro.encodings.trivial import Trivial
from repro.util.bitio import ByteReader, ByteWriter

DEFAULT_CHUNK_SIZE = 256 * 1024
DEFAULT_LEVEL = 6


@register
class Chunked(Encoding):
    """zlib-compressed fixed-size chunks over a child-encoded blob."""

    id = 14
    name = "chunked"
    kinds = frozenset(
        {Kind.INT, Kind.FLOAT, Kind.BYTES, Kind.BOOL}
    )

    def __init__(
        self,
        child: Encoding | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        level: int = DEFAULT_LEVEL,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._child = child if child is not None else Trivial()
        self._chunk_size = chunk_size
        self._level = level

    def encode(self, values) -> bytes:
        inner = encode_blob(values, self._child)
        writer = ByteWriter()
        writer.write_u32(self._chunk_size)
        writer.write_u64(len(inner))
        n_chunks = (len(inner) + self._chunk_size - 1) // self._chunk_size
        writer.write_u32(n_chunks)
        for i in range(n_chunks):
            chunk = inner[i * self._chunk_size : (i + 1) * self._chunk_size]
            writer.write_blob(zlib.compress(chunk, self._level))
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: ByteReader):
        reader.read_u32()  # chunk_size (layout info only)
        reader.read_u64()  # uncompressed length (sanity/meta)
        n_chunks = reader.read_u32()
        parts = [zlib.decompress(reader.read_blob()) for _ in range(n_chunks)]
        return decode_blob(b"".join(parts))
