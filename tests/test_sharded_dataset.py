"""Tests for ShardedDataset and multi-shard loader iteration."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    ShardedDataset,
    Table,
    WriterOptions,
)
from repro.core.dataset import LoaderOptions, TrainingDataLoader
from repro.iosim import FileStorage, SimulatedStorage


def _table(n=1000):
    rng = np.random.default_rng(19)
    return Table(
        {
            "x": np.arange(n, dtype=np.int64),
            "y": rng.normal(size=n).astype(np.float32),
        }
    )


_OPTS = WriterOptions(rows_per_page=50, rows_per_group=100)


class TestShardedWrite:
    def test_num_shards_split(self):
        ds = ShardedDataset.write(_table(), num_shards=4, options=_OPTS)
        assert ds.num_shards == 4
        assert [r.num_rows for r in ds.readers()] == [250, 250, 250, 250]
        assert ds.num_rows == 1000

    def test_rows_per_shard_split_with_remainder(self):
        ds = ShardedDataset.write(_table(), rows_per_shard=300, options=_OPTS)
        assert [r.num_rows for r in ds.readers()] == [300, 300, 300, 100]

    def test_shards_concatenate_to_original(self):
        table = _table()
        ds = ShardedDataset.write(table, num_shards=3, options=_OPTS)
        parts = [r.project(["x", "y"]) for r in ds.readers()]
        merged = np.concatenate([p.column("x") for p in parts])
        assert np.array_equal(merged, table.column("x"))

    def test_scan_chains_across_shards(self):
        table = _table()
        ds = ShardedDataset.write(table, num_shards=3, options=_OPTS)
        seen = np.concatenate(
            [b.column("x") for b in ds.scan(["x"], batch_size=128)]
        )
        assert np.array_equal(seen, table.column("x"))

    def test_split_spec_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            ShardedDataset.write(_table(10))
        with pytest.raises(ValueError, match="exactly one"):
            ShardedDataset.write(_table(10), num_shards=2, rows_per_shard=5)

    def test_file_backed_shards(self, tmp_path):
        table = _table(400)
        ds = ShardedDataset.write(
            table,
            num_shards=2,
            options=_OPTS,
            storage_factory=lambda i: FileStorage(tmp_path / f"shard{i}.bullion"),
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "shard0.bullion",
            "shard1.bullion",
        ]
        assert ds.num_rows == 400
        got = np.concatenate(
            [b.column("x") for b in ds.scan(["x"])]
        )
        assert np.array_equal(got, table.column("x"))


class TestShardedLoader:
    def test_batches_cover_all_shards_in_order(self):
        table = _table()
        ds = ShardedDataset.write(table, num_shards=4, options=_OPTS)
        loader = TrainingDataLoader(ds, ["x"], LoaderOptions(batch_size=128))
        seen = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert np.array_equal(seen, table.column("x"))

    def test_batches_span_shard_boundaries(self):
        # 250-row shards with 300-row batches force cross-shard carry
        ds = ShardedDataset.write(_table(), num_shards=4, options=_OPTS)
        loader = TrainingDataLoader(ds, ["x"], LoaderOptions(batch_size=300))
        assert [b.num_rows for b in loader] == [300, 300, 300, 100]

    def test_prefetch_yields_same_batches(self):
        table = _table()
        ds = ShardedDataset.write(table, num_shards=4, options=_OPTS)
        plain = TrainingDataLoader(ds, ["x"], LoaderOptions(batch_size=128))
        prefetched = TrainingDataLoader(
            ds, ["x"], LoaderOptions(batch_size=128, prefetch_batches=3)
        )
        for a, b in zip(plain, prefetched):
            assert a.equals(b)

    def test_shuffle_covers_all_rows_and_reshuffles(self):
        ds = ShardedDataset.write(_table(), num_shards=4, options=_OPTS)
        loader = TrainingDataLoader(
            ds,
            ["x"],
            LoaderOptions(batch_size=200, shuffle_row_groups=True),
        )
        epoch1 = np.concatenate([np.asarray(b.column("x")) for b in loader])
        epoch2 = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert sorted(epoch1) == list(range(1000))
        assert sorted(epoch2) == list(range(1000))
        assert not np.array_equal(epoch1, epoch2)

    def test_list_of_storages_accepted(self):
        table = _table(400)
        shards = []
        for lo in (0, 200):
            dev = SimulatedStorage()
            from repro.core import BullionWriter

            BullionWriter(dev, options=_OPTS).write(table.slice(lo, lo + 200))
            shards.append(dev)
        loader = TrainingDataLoader(shards, ["x"], LoaderOptions(batch_size=100))
        seen = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert np.array_equal(seen, table.column("x"))
        assert loader.num_shards == 2

    def test_missing_column_rejected_on_any_shard(self):
        ds = ShardedDataset.write(_table(100), num_shards=2, options=_OPTS)
        with pytest.raises(KeyError, match="not in file"):
            TrainingDataLoader(ds, ["nope"])

    def test_single_storage_still_works(self):
        dev = SimulatedStorage()
        from repro.core import BullionWriter

        table = _table(500)
        BullionWriter(dev, options=_OPTS).write(table)
        loader = TrainingDataLoader(dev, ["x"], LoaderOptions(batch_size=200))
        assert [b.num_rows for b in loader] == [200, 200, 100]


class TestRegressionFixes:
    def test_sharded_scan_batches_exact_across_shards(self):
        # shard boundary at 250; batches must still be exactly 300
        ds = ShardedDataset.write(_table(), num_shards=4, options=_OPTS)
        sizes = [b.num_rows for b in ds.scan(["x"], batch_size=300)]
        assert sizes == [300, 300, 300, 100]

    def test_rows_per_shard_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ShardedDataset.write(_table(10), rows_per_shard=0)

    def test_prefetch_consumer_early_exit_stops_producer(self):
        import threading
        import time

        ds = ShardedDataset.write(_table(), num_shards=4, options=_OPTS)
        loader = TrainingDataLoader(
            ds, ["x"], LoaderOptions(batch_size=64, prefetch_batches=1)
        )
        before = threading.active_count()
        it = iter(loader)
        next(it)
        it.close()  # consumer abandons the epoch
        deadline = time.time() + 2.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before
