"""Tests for the batch-oriented training data loader."""

import numpy as np
import pytest

from repro.core import BullionWriter, Table, WriterOptions, delete_rows
from repro.core.dataset import LoaderOptions, TrainingDataLoader
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy


def _file(n=1000, quantization=None):
    rng = np.random.default_rng(23)
    table = Table(
        {
            "x": np.arange(n, dtype=np.int64),
            "y": rng.normal(size=n).astype(np.float32),
        }
    )
    dev = SimulatedStorage()
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=100, rows_per_group=200, quantization=quantization
        ),
    ).write(table)
    return dev, table


class TestLoader:
    def test_batches_cover_all_rows_in_order(self):
        dev, table = _file()
        loader = TrainingDataLoader(
            dev, ["x"], LoaderOptions(batch_size=128)
        )
        seen = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert np.array_equal(seen, table.column("x"))

    def test_batch_sizes(self):
        dev, _t = _file(n=1000)
        batches = list(
            TrainingDataLoader(dev, ["x"], LoaderOptions(batch_size=300))
        )
        assert [b.num_rows for b in batches] == [300, 300, 300, 100]

    def test_drop_last(self):
        dev, _t = _file(n=1000)
        batches = list(
            TrainingDataLoader(
                dev, ["x"], LoaderOptions(batch_size=300, drop_last=True)
            )
        )
        assert [b.num_rows for b in batches] == [300, 300, 300]

    def test_shuffle_permutes_groups_per_epoch(self):
        dev, table = _file(n=1000)
        loader = TrainingDataLoader(
            dev, ["x"], LoaderOptions(batch_size=200, shuffle_row_groups=True)
        )
        epoch1 = np.concatenate([np.asarray(b.column("x")) for b in loader])
        epoch2 = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert sorted(epoch1) == list(range(1000))
        assert sorted(epoch2) == list(range(1000))
        assert not np.array_equal(epoch1, epoch2)  # reshuffled

    def test_deleted_rows_excluded(self):
        dev, _t = _file(n=1000)
        delete_rows(dev, range(50, 150))
        loader = TrainingDataLoader(dev, ["x"], LoaderOptions(batch_size=100))
        seen = np.concatenate([np.asarray(b.column("x")) for b in loader])
        assert len(seen) == 900
        assert not np.isin(np.arange(50, 150), seen).any()

    def test_widen_quantized(self):
        policy = QuantizationPolicy(default=FloatFormat.FP16)
        dev, table = _file(quantization=policy)
        loader = TrainingDataLoader(
            dev, ["y"], LoaderOptions(batch_size=500, widen_quantized=True)
        )
        batch = next(iter(loader))
        assert batch.column("y").dtype == np.float32
        assert np.allclose(
            batch.column("y"), table.column("y")[:500], atol=1e-3
        )

    def test_missing_column_rejected(self):
        dev, _t = _file()
        with pytest.raises(KeyError, match="not in file"):
            TrainingDataLoader(dev, ["nope"])
