"""Behavioural tests for the float codecs (Gorilla, Chimp, ALP, etc.)."""

import numpy as np
import pytest

from repro.encodings import (
    ALP,
    Chimp,
    Gorilla,
    Pseudodecimal,
    decode_blob,
    encode_blob,
)


def special_values():
    return np.array(
        [0.0, -0.0, np.inf, -np.inf, np.nan, 1e-308, 1e308, np.pi],
        dtype=np.float64,
    )


@pytest.mark.parametrize(
    "encoding", [Gorilla(), Chimp(), ALP(), Pseudodecimal()], ids=lambda e: e.name
)
def test_special_values_roundtrip(encoding):
    data = special_values()
    out = decode_blob(encode_blob(data, encoding))
    # NaN compares unequal; compare bit patterns for exactness
    assert np.array_equal(
        out.view(np.uint64), data.view(np.uint64)
    ) or (
        np.array_equal(out[~np.isnan(data)], data[~np.isnan(data)])
        and np.isnan(out[np.isnan(data)]).all()
    )


class TestGorilla:
    def test_repeated_values_one_bit_each(self):
        data = np.full(10000, 3.14159, dtype=np.float64)
        blob = encode_blob(data, Gorilla())
        # first value 64 bits, then ~1 bit per repeat
        assert len(blob) < 10000 / 8 + 100

    def test_slowly_varying_compresses(self):
        t = np.arange(5000)
        data = 20.0 + 0.25 * (t // 100)  # step-wise sensor-style series
        blob = encode_blob(data, Gorilla())
        assert len(blob) < data.nbytes / 2


class TestChimp:
    def test_beats_gorilla_on_noisy_decimals(self):
        rng = np.random.default_rng(0)
        data = np.round(rng.normal(20, 2, 5000), 1)
        chimp = len(encode_blob(data, Chimp()))
        raw = data.nbytes
        assert chimp < raw  # compresses at all on realistic series


class TestALP:
    def test_decimal_data_compresses_hard(self):
        rng = np.random.default_rng(1)
        data = np.round(rng.uniform(0, 100, 8000), 2)  # prices
        blob = encode_blob(data, ALP())
        assert len(blob) < data.nbytes / 3
        assert np.array_equal(decode_blob(blob), data)

    def test_random_doubles_take_frontbits_path(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=4000)
        blob = encode_blob(data, ALP())
        assert blob[1 + 1 + 8] == 1  # mode byte after id+dtype+count: frontbits
        assert np.array_equal(decode_blob(blob), data)

    def test_decimal_path_mode_byte(self):
        data = np.round(np.arange(1000) * 0.01, 2)
        blob = encode_blob(data, ALP())
        assert blob[1 + 1 + 8] == 0  # decimal mode

    def test_mixed_exceptions_patched(self):
        data = np.round(np.arange(1000) * 0.1, 1)
        data[500] = np.pi  # one non-decimal exception
        out = decode_blob(encode_blob(data, ALP()))
        assert np.array_equal(out, data)


class TestPseudodecimal:
    def test_two_subcolumn_structure(self):
        data = np.array([1.5, 2.25, 300.0], dtype=np.float64)
        out = decode_blob(encode_blob(data, Pseudodecimal()))
        assert np.array_equal(out, data)

    def test_smallest_exponent_chosen(self):
        # 0.5 should use e=1 (5 / 10^1), not larger exponents
        data = np.array([0.5], dtype=np.float64)
        out = decode_blob(encode_blob(data, Pseudodecimal()))
        assert out[0] == 0.5

    def test_float16_roundtrip(self):
        data = np.array([1.5, 2.5, 0.25], dtype=np.float16)
        out = decode_blob(encode_blob(data, Pseudodecimal()))
        assert out.dtype == np.float16
        assert np.array_equal(out, data)
