"""Failure injection: corruption, truncation and misuse must be loud.

"Errors should never pass silently" — every malformed input should
raise a typed error or be caught by the Merkle verification, never
return silently-wrong data.
"""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.core.footer import FooterError, FooterView
from repro.encodings import (
    EncodingError,
    FixedBitWidth,
    Trivial,
    decode_blob,
    encode_blob,
    encoding_by_id,
    encoding_by_name,
)
from repro.iosim import SimulatedStorage


class TestBlobCorruption:
    def test_empty_blob(self):
        with pytest.raises(EncodingError, match="empty"):
            decode_blob(b"")

    def test_unknown_encoding_id(self):
        with pytest.raises(EncodingError, match="unknown encoding id"):
            decode_blob(bytes([250]) + b"\x00" * 10)

    def test_unknown_encoding_name(self):
        with pytest.raises(EncodingError, match="unknown encoding"):
            encoding_by_name("lzma_turbo")

    def test_registry_lookup(self):
        assert encoding_by_id(Trivial.id) is Trivial

    def test_truncated_payload_raises(self):
        blob = encode_blob(np.arange(100, dtype=np.int64), Trivial())
        with pytest.raises(Exception):
            decode_blob(blob[: len(blob) // 2])

    def test_truncated_bitpack_raises(self):
        blob = encode_blob(np.arange(1000, dtype=np.int64), FixedBitWidth())
        with pytest.raises(Exception):
            decode_blob(blob[:-20])


class TestFileCorruption:
    def _file(self):
        rng = np.random.default_rng(0)
        table = Table(
            {
                "a": rng.integers(0, 100, 500).astype(np.int64),
                "b": rng.normal(size=500),
            }
        )
        dev = SimulatedStorage()
        footer = BullionWriter(
            dev, options=WriterOptions(rows_per_page=100, rows_per_group=100)
        ).write(table)
        return dev, footer

    def test_truncated_file(self):
        dev, _f = self._file()
        dev.truncate(dev.size // 2)
        with pytest.raises(Exception):
            BullionReader(dev)

    def test_corrupt_tail_magic(self):
        dev, _f = self._file()
        dev.corrupt(dev.size - 2, b"XX")
        with pytest.raises(Exception, match="magic"):
            BullionReader(dev)

    def test_corrupt_footer_header(self):
        dev, footer = self._file()
        dev.corrupt(footer.file_offset, b"EVIL")
        with pytest.raises(FooterError, match="magic"):
            BullionReader(dev)

    def test_page_corruption_caught_by_merkle(self):
        dev, footer = self._file()
        page = footer.page(3)
        dev.corrupt(page.offset + 25, b"\xde\xad")
        reader = BullionReader(dev)
        assert not reader.verify()
        assert not reader.verify(page_ids=[3])
        assert reader.verify(page_ids=[0, 1, 2])  # others untouched

    def test_checksum_section_tamper_detected(self):
        dev, footer = self._file()
        pages_base, _g, _r = footer.checksum_file_offsets()
        dev.corrupt(pages_base, b"\x00" * 8)
        assert not BullionReader(dev).verify()

    def test_footer_view_requires_header(self):
        with pytest.raises(FooterError):
            FooterView(b"")


class TestMisuse:
    def test_project_missing_column(self):
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table({"x": np.zeros(4, dtype=np.int64)}))
        with pytest.raises(KeyError):
            BullionReader(dev).project(["nope"])

    def test_delete_negative_row(self):
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table({"x": np.zeros(4, dtype=np.int64)}))
        with pytest.raises(ValueError, match="range"):
            delete_rows(dev, [-1])

    def test_prune_missing_column(self):
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table({"x": np.zeros(4, dtype=np.int64)}))
        with pytest.raises(KeyError):
            BullionReader(dev).prune_row_groups("nope", min_value=0)


class TestDeletionPropertyStyle:
    """Randomized end-to-end: delete arbitrary subsets, reads stay exact."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_delete_sequences(self, seed):
        rng = np.random.default_rng(seed)
        n = 700
        table = Table(
            {
                "i": rng.integers(0, 50, n).astype(np.int64),
                "f": np.round(rng.normal(size=n), 2),
                "s": [b"v%d" % (i % 7) for i in range(n)],
            }
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=128, rows_per_group=256)
        ).write(table)
        deleted: set[int] = set()
        for _round in range(3):
            batch = rng.choice(n, size=rng.integers(1, 40), replace=False)
            delete_rows(dev, batch)
            deleted.update(int(b) for b in batch)
            reader = BullionReader(dev)
            assert reader.verify()
            out = reader.project(["i", "f", "s"])
            keep = np.array([i not in deleted for i in range(n)])
            assert out.equals(table.take_mask(keep))
