"""TieredChunkCache: byte budgets, disk spill, crash consistency,
single-flight, and fingerprint-keyed sharing across readers.

The disk tier's failure contract is the load-bearing part: a spill
file that was truncated, corrupted, or clobbered must surface as a
*miss* (refetch from the backend) — never as bad bytes.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    TieredChunkCache,
    WriterOptions,
    delete_rows,
    notify_mutation,
    storage_identity,
)
from repro.core.chunk_cache import configure_process_cache
from repro.core.reader import ChunkCache
from repro.iosim import FileStorage, SimulatedStorage


def _cache(tmp_path=None, memory_bytes=1 << 20, disk_bytes=0, **kw):
    return TieredChunkCache(
        memory_bytes,
        disk_bytes=disk_bytes,
        disk_dir=str(tmp_path / "spill") if tmp_path else None,
        mirror=False,
        **kw,
    )


class TestMemoryTier:
    def test_byte_budget_evicts_lru(self):
        cache = _cache(memory_bytes=100)
        cache.put(("a",), b"x" * 40)
        cache.put(("b",), b"y" * 40)
        cache.get(("a",))  # a is now most-recent
        cache.put(("c",), b"z" * 40)  # 120 bytes: evict LRU = b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == b"x" * 40
        assert cache.get(("c",)) == b"z" * 40
        assert cache.memory_used == 80
        assert cache.stats.memory_evictions == 1

    def test_oversized_entry_does_not_wedge(self):
        cache = _cache(memory_bytes=10)
        cache.put(("big",), b"x" * 100)
        assert cache.memory_used == 0  # immediately evicted
        assert cache.get(("big",)) is None

    def test_replacement_does_not_leak_budget(self):
        cache = _cache(memory_bytes=100)
        for _ in range(10):
            cache.put(("k",), b"a" * 60)
        assert cache.memory_used == 60
        assert len(cache) == 1

    def test_entry_cap_matches_legacy_contract(self):
        cache = _cache(max_entries=2)
        cache.put((0, 0), b"a")
        cache.put((0, 1), b"b")
        cache.put((0, 2), b"c")
        assert cache.get((0, 0)) is None
        assert cache.get((0, 2)) == b"c"
        assert len(cache) == 2


class TestLegacyShim:
    def test_byte_budget_on_the_legacy_cache(self):
        # the satellite fix: ChunkCache now budgets bytes, not entries
        cache = ChunkCache(capacity=32, capacity_bytes=100)
        cache.put((0, 0), b"x" * 60)
        cache.put((0, 1), b"y" * 60)  # 120 bytes: evicts (0, 0)
        assert cache.get((0, 0)) is None
        assert cache.get((0, 1)) == b"y" * 60
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ChunkCache(capacity=0)
        cache.put((0, 0), b"x")
        assert cache.get((0, 0)) is None
        assert len(cache) == 0
        assert cache.misses == 1  # the put was a no-op


class TestDiskSpill:
    def test_eviction_spills_and_disk_hit_promotes(self, tmp_path):
        cache = _cache(tmp_path, memory_bytes=100, disk_bytes=1 << 20)
        cache.put(("a",), b"x" * 80)
        cache.put(("b",), b"y" * 80)  # evicts a -> spills to disk
        assert cache.stats.spills == 1
        assert cache.disk_used == 80
        assert cache.get(("a",)) == b"x" * 80  # disk hit
        assert cache.stats.disk_hits == 1
        # promoted back to memory: a second get is a memory hit
        assert cache.get(("a",)) == b"x" * 80
        assert cache.stats.memory_hits >= 1

    def test_disk_budget_bounded(self, tmp_path):
        cache = _cache(tmp_path, memory_bytes=50, disk_bytes=100)
        for i in range(5):
            cache.put((i,), bytes([i]) * 40)
        assert cache.disk_used <= 100
        assert cache.stats.disk_evictions > 0

    def test_clear_removes_spill_files(self, tmp_path):
        cache = _cache(tmp_path, memory_bytes=10, disk_bytes=1 << 20)
        cache.put(("a",), b"x" * 50)
        spill_dir = tmp_path / "spill"
        assert list(spill_dir.iterdir())
        cache.clear()
        assert not list(spill_dir.iterdir())
        assert cache.disk_used == 0


class TestDiskCrashConsistency:
    """Truncated/corrupt spill files -> miss + refetch, never bad bytes."""

    def _spilled(self, tmp_path):
        cache = _cache(tmp_path, memory_bytes=10, disk_bytes=1 << 20)
        cache.put(("k", 1), b"payload-bytes" * 10)
        (spill_file,) = (tmp_path / "spill").iterdir()
        return cache, spill_file

    def test_truncated_spill_is_a_miss(self, tmp_path):
        cache, spill_file = self._spilled(tmp_path)
        spill_file.write_bytes(spill_file.read_bytes()[:20])
        assert cache.get(("k", 1)) is None
        assert cache.stats.checksum_failures == 1
        assert not spill_file.exists()  # the bad entry was dropped
        assert cache.disk_used == 0

    def test_corrupted_spill_is_a_miss(self, tmp_path):
        cache, spill_file = self._spilled(tmp_path)
        blob = bytearray(spill_file.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload bit
        spill_file.write_bytes(bytes(blob))
        assert cache.get(("k", 1)) is None
        assert cache.stats.checksum_failures == 1

    def test_deleted_spill_is_a_miss(self, tmp_path):
        cache, spill_file = self._spilled(tmp_path)
        spill_file.unlink()
        assert cache.get(("k", 1)) is None
        assert cache.stats.checksum_failures == 1

    def test_corrupt_spill_refetches_good_bytes_end_to_end(self, tmp_path):
        """A reader over a corrupted disk tier silently refetches from
        the backend and the scan still verifies against the file's own
        page checksums."""
        dev = SimulatedStorage()
        table = Table({"x": np.arange(400, dtype=np.int64)})
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=100, rows_per_group=200)
        ).write(table)
        cache = TieredChunkCache(
            1,  # every entry immediately spills
            disk_bytes=1 << 20,
            disk_dir=str(tmp_path / "spill"),
            mirror=False,
        )
        reader = BullionReader(dev, chunk_cache=cache)
        assert np.array_equal(
            reader.scan(["x"], max_workers=0).to_table().column("x"),
            table.column("x"),
        )
        # smash every spill file, then re-scan through the same cache
        for f in (tmp_path / "spill").iterdir():
            f.write_bytes(b"garbage")
        out = reader.scan(["x"], max_workers=0).to_table()
        assert np.array_equal(out.column("x"), table.column("x"))
        assert cache.stats.checksum_failures > 0
        assert reader.verify()


class TestSingleFlight:
    def test_concurrent_fetchers_coalesce_to_one(self):
        cache = _cache()
        n_threads = 8
        fetches = []
        barrier = threading.Barrier(n_threads)
        results = []

        def fetch():
            fetches.append(1)
            return b"the-bytes"

        def worker():
            barrier.wait()
            results.append(cache.get_or_fetch(("hot",), fetch))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fetches) == 1
        assert results == [b"the-bytes"] * n_threads
        assert cache.stats.misses == 1
        assert (
            cache.stats.hits + cache.stats.singleflight_waits == n_threads - 1
        )

    def test_leader_failure_promotes_a_waiter(self):
        cache = _cache()
        release = threading.Event()
        attempts = []

        def failing_fetch():
            attempts.append("leader")
            release.wait(5)
            raise OSError("backend 500")

        def good_fetch():
            attempts.append("waiter")
            return b"recovered"

        leader_err = []

        def leader():
            try:
                cache.get_or_fetch(("k",), failing_fetch)
            except OSError as exc:
                leader_err.append(exc)

        t1 = threading.Thread(target=leader)
        t1.start()
        while not attempts:  # leader holds the flight
            pass
        got = []
        t2 = threading.Thread(
            target=lambda: got.append(cache.get_or_fetch(("k",), good_fetch))
        )
        t2.start()
        release.set()
        t1.join()
        t2.join()
        assert leader_err  # the leader saw its own error
        assert got == [b"recovered"]  # the waiter retried and won
        assert attempts == ["leader", "waiter"]

    def test_claim_fulfill_contract(self):
        cache = _cache()
        kind, _ = cache.claim(("k",))
        assert kind == "mine"
        kind2, flight = cache.claim(("k",))
        assert kind2 == "wait"
        cache.fulfill(("k",), b"v")
        assert flight.value == b"v" and flight.event.is_set()
        assert cache.claim(("k",)) == ("hit", b"v")


class TestSharingAndInvalidation:
    def _write(self, dev, n=400):
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=100, rows_per_group=200)
        ).write(Table({"x": np.arange(n, dtype=np.int64)}))

    def test_second_reader_hits_first_readers_entries(self):
        dev = SimulatedStorage()
        self._write(dev)
        cache = _cache()
        r1 = BullionReader(dev, chunk_cache=cache)
        r1.scan(["x"], max_workers=0).to_table()
        reads_before = dev.stats.reads
        r2 = BullionReader(dev, chunk_cache=cache)  # fresh reader, same file
        out = r2.scan(["x"], max_workers=0).to_table()
        # only the footer open hit the device; all chunks came shared
        assert dev.stats.reads == reads_before + 1
        assert np.array_equal(out.column("x"), np.arange(400))

    def test_fingerprint_isolates_mutated_file(self):
        """In-place deletion changes the footer fingerprint, so a new
        reader over the mutated file can never be served the old
        chunks — without any explicit invalidation."""
        dev = SimulatedStorage()
        self._write(dev)
        cache = _cache()
        r1 = BullionReader(dev, chunk_cache=cache)
        before = r1.scan(["x"], max_workers=0).to_table()
        assert before.num_rows == 400
        delete_rows(dev, range(100))
        r2 = BullionReader(dev, chunk_cache=cache)
        assert r2.fingerprint != r1.fingerprint
        after = r2.scan(["x"], max_workers=0).to_table()
        assert after.num_rows == 300
        assert after.column("x").min() == 100

    def test_invalidate_prefix_scopes_to_one_storage(self):
        cache = _cache()
        cache.put(("dev-a", 1, 0, 0), b"a")
        cache.put(("dev-b", 1, 0, 0), b"b")
        dropped = cache.invalidate_prefix(("dev-a",))
        assert dropped == 1
        assert cache.get(("dev-a", 1, 0, 0)) is None
        assert cache.get(("dev-b", 1, 0, 0)) == b"b"

    def test_notify_mutation_clears_process_cache(self, tmp_path):
        dev = SimulatedStorage()
        self._write(dev)
        cache = configure_process_cache(1 << 20)
        try:
            reader = BullionReader(dev, chunk_cache=cache)
            reader.scan(["x"], max_workers=0).to_table()
            assert len(cache) > 0
            notify_mutation(dev)
            assert len(cache) == 0
        finally:
            configure_process_cache()  # reset to defaults for other tests

    def test_storage_identity_file_vs_memory(self, tmp_path):
        path = tmp_path / "t.bln"
        fs1 = FileStorage(str(path))
        fs2 = FileStorage(str(path))
        try:
            assert storage_identity(fs1) == storage_identity(fs2)
        finally:
            fs1.close()
            fs2.close()
        m1, m2 = SimulatedStorage(), SimulatedStorage()
        assert storage_identity(m1) != storage_identity(m2)
        assert storage_identity(m1) == storage_identity(m1)

    def test_reader_invalidate_cache_on_shared_cache(self):
        dev = SimulatedStorage()
        self._write(dev)
        cache = _cache()
        reader = BullionReader(dev, chunk_cache=cache)
        reader.scan(["x"], max_workers=0).to_table()
        assert len(cache) > 0
        reader.invalidate_cache()
        assert len(cache) == 0

    def test_rejects_disk_budget_without_dir(self):
        with pytest.raises(ValueError):
            TieredChunkCache(1 << 20, disk_bytes=1 << 20)
