"""Tests for the type system (schema) and the in-memory Table."""

import numpy as np
import pytest

from repro.core.schema import (
    Field,
    LogicalType,
    PhysicalType,
    Primitive,
    Schema,
)
from repro.core.table import (
    Table,
    infer_physical_type,
    physical_schema_for_table,
    validate_against_schema,
)


class TestLogicalType:
    @pytest.mark.parametrize(
        "text",
        [
            "int64",
            "float",
            "double",
            "string",
            "binary",
            "list<int64>",
            "list<float>",
            "list<list<int64>>",
            "struct<list<int64>, list<float>>",
            "struct<list<binary>, list<binary>>",
            "struct<list<list<int64>>>",
        ],
    )
    def test_parse_str_roundtrip(self, text):
        assert str(LogicalType.parse(text)) == text

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError):
            LogicalType.parse("decimal(38,10)")

    def test_exactly_one_variant_enforced(self):
        with pytest.raises(ValueError):
            LogicalType()

    def test_flatten_primitive(self):
        cols = LogicalType.of(Primitive.INT64).flatten("x")
        assert cols == [("x", PhysicalType(Primitive.INT64, 0))]

    def test_flatten_list(self):
        cols = LogicalType.parse("list<int64>").flatten("x")
        assert cols == [("x", PhysicalType(Primitive.INT64, 1))]

    def test_flatten_nested_list(self):
        cols = LogicalType.parse("list<list<int64>>").flatten("x")
        assert cols == [("x", PhysicalType(Primitive.INT64, 2))]

    def test_flatten_struct_feature_flattening(self):
        """Structs flatten to one stream per field (Meta-Alpha style)."""
        cols = LogicalType.parse(
            "struct<list<int64>, list<float>>"
        ).flatten("feat")
        assert [name for name, _t in cols] == ["feat.f0", "feat.f1"]
        assert cols[0][1] == PhysicalType(Primitive.INT64, 1)
        assert cols[1][1] == PhysicalType(Primitive.FLOAT32, 1)

    def test_deep_nesting_rejected(self):
        with pytest.raises(ValueError, match="deeper"):
            LogicalType.parse("list<list<list<int64>>>").flatten("x")


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema(
                [
                    Field("a", LogicalType.of(Primitive.INT64)),
                    Field("a", LogicalType.of(Primitive.INT64)),
                ]
            )

    def test_census(self):
        schema = Schema(
            [
                Field("a", LogicalType.parse("list<int64>")),
                Field("b", LogicalType.parse("list<int64>")),
                Field("c", LogicalType.parse("string")),
            ]
        )
        assert schema.census() == {"list<int64>": 2, "string": 1}

    def test_physical_columns_expand_structs(self):
        schema = Schema(
            [Field("s", LogicalType.parse("struct<list<int64>, list<float>>"))]
        )
        assert [c.name for c in schema.physical_columns()] == ["s.f0", "s.f1"]
        assert all(c.source_field == "s" for c in schema.physical_columns())


class TestTable:
    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table({"a": np.zeros(3), "b": np.zeros(4)})

    def test_select_slice(self):
        t = Table({"a": np.arange(10), "b": [b"x"] * 10})
        assert t.select(["a"]).num_columns == 1
        assert t.slice(2, 5).num_rows == 3

    def test_take_mask_mixed_columns(self):
        t = Table({"a": np.arange(4), "b": [b"w", b"x", b"y", b"z"]})
        keep = np.array([True, False, True, False])
        out = t.take_mask(keep)
        assert list(out.column("a")) == [0, 2]
        assert out.column("b") == [b"w", b"y"]

    def test_equals_deep_for_list_columns(self):
        rows = [np.array([1, 2], dtype=np.int64)]
        assert Table({"l": rows}).equals(Table({"l": [np.array([1, 2])]}))
        assert not Table({"l": rows}).equals(Table({"l": [np.array([1, 3])]}))


class TestInference:
    @pytest.mark.parametrize(
        "values,expected",
        [
            (np.zeros(3, dtype=np.int64), PhysicalType(Primitive.INT64, 0)),
            (np.zeros(3, dtype=np.int32), PhysicalType(Primitive.INT32, 0)),
            (np.zeros(3, dtype=np.float32), PhysicalType(Primitive.FLOAT32, 0)),
            (np.zeros(3, dtype=np.float64), PhysicalType(Primitive.FLOAT64, 0)),
            (np.zeros(3, dtype=np.bool_), PhysicalType(Primitive.BOOL, 0)),
            ([b"x"], PhysicalType(Primitive.BINARY, 0)),
            ([np.zeros(2, dtype=np.int64)], PhysicalType(Primitive.INT64, 1)),
            ([[b"x"]], PhysicalType(Primitive.BINARY, 1)),
        ],
    )
    def test_infer_physical_type(self, values, expected):
        assert infer_physical_type(values) == expected

    def test_physical_schema_for_table(self):
        t = Table({"a": np.zeros(2, dtype=np.int64)})
        cols = physical_schema_for_table(t)
        assert cols[0].name == "a"

    def test_validate_against_schema_mismatch(self):
        schema = Schema([Field("a", LogicalType.of(Primitive.INT64))])
        with pytest.raises(ValueError, match="mismatch"):
            validate_against_schema(Table({"b": np.zeros(2)}), schema)
