"""Tests for the multimodal dual-table layout (§2.5, Fig 7)."""

import numpy as np
import pytest

from repro.core.table import Table
from repro.iosim import SimulatedStorage
from repro.multimodal import (
    MediaReader,
    MediaWriter,
    MultimodalDataset,
    contiguous_run_stats,
    reorder_columns,
    sort_rows_by_quality,
)
from repro.workloads.multimodal_gen import MultimodalConfig, generate_samples


class TestMediaFile:
    def test_roundtrip_random_access(self):
        dev = SimulatedStorage()
        w = MediaWriter(dev, field_names=["id", "video"], block_records=4)
        for i in range(10):
            w.append({"id": bytes([i]), "video": bytes([i]) * 50})
        refs = w.close()
        r = MediaReader(dev)
        for i in (0, 3, 4, 9):
            rec = r.read_record(refs[i])
            assert rec["id"] == bytes([i])
            assert rec["video"] == bytes([i]) * 50

    def test_scan_order(self):
        dev = SimulatedStorage()
        w = MediaWriter(dev, field_names=["v"], block_records=3)
        for i in range(7):
            w.append({"v": bytes([i])})
        w.close()
        values = [rec["v"] for rec in MediaReader(dev).scan()]
        assert values == [bytes([i]) for i in range(7)]

    def test_missing_field_rejected(self):
        w = MediaWriter(SimulatedStorage(), field_names=["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            w.append({"a": b"x"})

    def test_bad_magic(self):
        dev = SimulatedStorage()
        dev.append(b"nope" * 10)
        with pytest.raises(ValueError, match="magic"):
            MediaReader(dev)

    def test_row_format_walk_cost(self):
        """Row orientation: later records in a block cost a payload walk."""
        dev = SimulatedStorage()
        w = MediaWriter(dev, field_names=["v"], block_records=8)
        for i in range(8):
            w.append({"v": bytes(100)})
        refs = w.close()
        r = MediaReader(dev)
        dev.stats.reset()
        r.read_record(refs[7])
        assert dev.stats.bytes_read > 800  # whole block payload read


class TestQualityReordering:
    def test_sort_rows_by_quality(self):
        table = Table(
            {
                "q": np.array([0.1, 0.9, 0.5]),
                "name": [b"lo", b"hi", b"mid"],
            }
        )
        out, order = sort_rows_by_quality(table, "q")
        assert list(out.column("q")) == [0.9, 0.5, 0.1]
        assert out.column("name") == [b"hi", b"mid", b"lo"]
        assert list(order) == [1, 2, 0]

    def test_reorder_columns_puts_hot_first(self):
        table = Table({"a": np.zeros(2), "b": np.zeros(2), "c": np.zeros(2)})
        out = reorder_columns(table, ["c", "a"])
        assert list(out.columns) == ["c", "a", "b"]

    def test_reorder_missing_hot_column(self):
        with pytest.raises(KeyError):
            reorder_columns(Table({"a": np.zeros(2)}), ["zz"])

    def test_contiguous_run_stats(self):
        runs, mean = contiguous_run_stats(np.array([0, 1, 2, 10, 11, 50]))
        assert runs == 3
        assert mean == 2.0
        assert contiguous_run_stats(np.array([], dtype=np.int64)) == (0, 0.0)


class TestMultimodalDataset:
    @pytest.fixture(scope="class")
    def samples(self):
        return generate_samples(MultimodalConfig(n_samples=400, seed=3))

    def _build(self, samples, presort):
        ds = MultimodalDataset(
            presort_by_quality=presort, rows_per_page=64, rows_per_group=64
        )
        ds.ingest(samples)
        return ds

    def test_presort_reduces_runs_and_bytes(self, samples):
        sorted_ds = self._build(samples, presort=True)
        unsorted_ds = self._build(samples, presort=False)
        thr = 0.55
        rep_s = sorted_ds.train_epoch(thr)
        rep_u = unsorted_ds.train_epoch(thr)
        assert rep_s.samples_read == rep_u.samples_read
        assert rep_s.selected_runs < rep_u.selected_runs
        assert rep_s.meta.bytes_read < rep_u.meta.bytes_read

    def test_inline_highlights_avoid_media_io(self, samples):
        ds = self._build(samples, presort=True)
        inline = ds.train_epoch(0.5, use_inline_highlights=True)
        bounced = ds.train_epoch(0.5, use_inline_highlights=False)
        assert inline.media.reads == 0
        assert bounced.media.reads >= bounced.samples_read
        assert bounced.media.seeks > 0

    def test_modelled_time_favors_inline(self, samples):
        ds = self._build(samples, presort=True)
        inline = ds.train_epoch(0.5, use_inline_highlights=True)
        bounced = ds.train_epoch(0.5, use_inline_highlights=False)
        assert inline.modelled_time() < bounced.modelled_time()

    def test_full_video_lookup(self, samples):
        ds = self._build(samples, presort=True)
        video = ds.lookup_full_video(0)
        assert len(video) == MultimodalConfig().video_bytes

    def test_threshold_one_selects_nothing(self, samples):
        ds = self._build(samples, presort=True)
        rep = ds.train_epoch(1.1)
        assert rep.samples_read == 0
