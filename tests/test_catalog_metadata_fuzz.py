"""Metadata fuzzing: damaged schema logs fail typed, never tracebacks.

Manifest bytes come from storage — truncation, bit rot, or a buggy
writer are all survivable events, and the contract is a
:class:`CatalogMetadataError` (or its :class:`SchemaLogError`
subclass) with a readable message. A bare ``KeyError``/``TypeError``
escaping means some parse path trusted the bytes; these tests throw
randomized and adversarial damage at every layer that reads the
schema log to pin the contract down.
"""

import json

import numpy as np
import pytest

from repro.catalog import (
    AddColumn,
    CatalogMetadataError,
    CatalogTable,
    DirectoryCatalogStore,
    MemoryCatalogStore,
    SchemaLog,
    SchemaLogError,
    Snapshot,
)
from repro.core import Table
from repro.tools.inspect import main as inspect_main


def _evolved_manifest() -> bytes:
    """A healthy manifest with a two-schema log to damage."""
    cat = CatalogTable.create(MemoryCatalogStore())
    cat.append(Table({
        "ts": np.arange(20, dtype=np.int64),
        "v": np.linspace(0.0, 1.0, 20),
    }))
    cat.evolve(AddColumn("clicks", "int64"))
    cat.append(Table({
        "ts": np.arange(20, 40, dtype=np.int64),
        "v": np.linspace(1.0, 2.0, 20),
        "clicks": np.arange(20, dtype=np.int64),
    }))
    return cat.current_snapshot().to_json()


#: exceptions a parser may legitimately surface for damaged metadata
_TYPED = (CatalogMetadataError,)


class TestRandomizedDamage:
    def test_truncations_never_leak_raw_errors(self):
        data = _evolved_manifest()
        for cut in range(0, len(data), 7):
            try:
                snap = Snapshot.from_json(data[:cut])
                SchemaLog.from_snapshot(snap)
            except _TYPED:
                pass  # typed failure is the contract

    def test_byte_flips_never_leak_raw_errors(self):
        data = _evolved_manifest()
        rng = np.random.default_rng(7)
        for _ in range(300):
            pos = int(rng.integers(0, len(data)))
            flipped = bytearray(data)
            flipped[pos] ^= 1 << int(rng.integers(0, 8))
            try:
                snap = Snapshot.from_json(bytes(flipped))
                SchemaLog.from_snapshot(snap)
            except _TYPED:
                pass

    def test_json_value_mutations(self):
        """Swap random scalar values for wrong-typed junk."""
        doc = json.loads(_evolved_manifest())
        junk = [None, "x", -1, [], {}, 3.5, "list<", "int65"]
        rng = np.random.default_rng(11)

        def mutate(node, depth=0):
            if isinstance(node, dict):
                for k in list(node):
                    if rng.random() < 0.3:
                        node[k] = junk[int(rng.integers(0, len(junk)))]
                    else:
                        mutate(node[k], depth + 1)
            elif isinstance(node, list):
                for i in range(len(node)):
                    mutate(node[i], depth + 1)

        for _ in range(200):
            damaged = json.loads(json.dumps(doc))
            mutate(damaged)
            try:
                snap = Snapshot.from_json(json.dumps(damaged).encode())
                SchemaLog.from_snapshot(snap)
            except _TYPED:
                pass


class TestAdversarialSchemaLog:
    """Hand-crafted damage aimed at each schema-log validation."""

    def _load(self, rewrite) -> Snapshot:
        doc = json.loads(_evolved_manifest())
        rewrite(doc)
        return Snapshot.from_json(json.dumps(doc).encode())

    def _expect(self, rewrite, fragment: str | None = None):
        with pytest.raises(_TYPED, match=fragment):
            snap = self._load(rewrite)
            SchemaLog.from_snapshot(snap)

    def test_dangling_current_schema_id(self):
        def rw(doc):
            doc["current_schema_id"] = 99
        self._expect(rw, "current_schema_id 99")

    def test_file_references_unknown_schema(self):
        def rw(doc):
            doc["files"][0]["schema_id"] = 42
        self._expect(rw, "references schema 42")

    def test_schema_entry_missing_columns(self):
        def rw(doc):
            del doc["schemas"][0]["columns"]
        self._expect(rw)

    def test_column_missing_field_id(self):
        def rw(doc):
            del doc["schemas"][0]["columns"][0]["id"]
        self._expect(rw)

    def test_unparseable_column_type(self):
        def rw(doc):
            doc["schemas"][1]["columns"][0]["type"] = "list<int64"
        self._expect(rw)

    def test_unknown_primitive_name(self):
        def rw(doc):
            doc["schemas"][1]["columns"][0]["type"] = "int65"
        self._expect(rw)

    def test_duplicate_column_names(self):
        def rw(doc):
            cols = doc["schemas"][1]["columns"]
            cols[1]["name"] = cols[0]["name"]
        self._expect(rw)

    def test_duplicate_field_ids(self):
        def rw(doc):
            cols = doc["schemas"][1]["columns"]
            cols[1]["id"] = cols[0]["id"]
        self._expect(rw)

    def test_schema_log_error_is_catalog_and_value_error(self):
        assert issubclass(SchemaLogError, CatalogMetadataError)
        assert issubclass(CatalogMetadataError, ValueError)


class TestDamagedTableOnDisk:
    """End to end: a corrupted manifest on disk degrades to a typed
    error from the library and a one-line exit-1 from the CLI."""

    def _damaged_table(self, tmp_path) -> str:
        root = tmp_path / "table"
        cat = CatalogTable.create(DirectoryCatalogStore(str(root)))
        cat.append(Table({"ts": np.arange(10, dtype=np.int64)}))
        cat.evolve(AddColumn("clicks", "int64"))
        head = max((root / "snapshots").glob("snap-*.json"))
        doc = json.loads(head.read_bytes())
        doc["schemas"][0]["columns"][0].pop("type")
        head.write_bytes(json.dumps(doc).encode())
        return str(root)

    def test_library_raises_typed_error(self, tmp_path):
        root = self._damaged_table(tmp_path)
        table = CatalogTable(DirectoryCatalogStore(root))
        with pytest.raises(CatalogMetadataError):
            table.current_snapshot()

    def test_cli_exit_one_no_traceback(self, tmp_path, capsys):
        root = self._damaged_table(tmp_path)
        try:
            code = inspect_main(["catalog", "files", root])
        except SystemExit as exc:
            code = exc.code
        err = capsys.readouterr().err
        assert code == 1
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 1 and lines[0].startswith("repro-inspect:")
        assert "Traceback" not in err
