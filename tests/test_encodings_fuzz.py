"""Corruption fuzzing for every decoder in the Table 2 catalog.

The decoder contract is the safety net under footer checksums: a blob
that fails its checksum is rejected before decode, but maintenance
tools (``repro-inspect``, scrubbing, compaction) decode payloads from
partially written or damaged files.  A decoder handed garbage must
raise ``EncodingError`` (a ``ValueError``) or return a well-formed
value — never hang, loop, or leak an arbitrary crash class
(``IndexError`` deep inside a numpy kernel, ``struct.error`` from a
short read, a absurd-size ``MemoryError`` allocation).

Two attack shapes, both deterministic (seeded rng):

* **truncation** — every prefix length of a valid blob;
* **bit flips** — single-bit and multi-byte mutations at random
  offsets, including the id byte and length-prefix regions.
"""

import numpy as np
import pytest

from repro.encodings import (
    ALP,
    BitShuffle,
    Chimp,
    Chunked,
    Delta,
    Dictionary,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    FSST,
    Gorilla,
    Huffman,
    ListEncoding,
    MainlyConstant,
    Pseudodecimal,
    RLE,
    Roaring,
    SparseBool,
    SparseListDelta,
    Trivial,
    Varint,
    ZigZag,
    decode_blob,
    encode_blob,
)

RNG = np.random.default_rng(777)


def _ints(n=300):
    return RNG.integers(0, 10**6, n).astype(np.int64)


def _floats(n=200):
    return np.round(RNG.normal(size=n) * 100, 3)


def _strings(n=120):
    return [f"fuzz/{i % 17}/payload".encode() for i in range(n)]


def _bools(n=1500):
    return RNG.random(n) < 0.1


def _lists(n=40):
    return [
        RNG.integers(0, 10**4, int(RNG.integers(0, 20))).astype(np.int64)
        for _ in range(n)
    ]


BLOBS = {
    "trivial": encode_blob(_ints(), Trivial()),
    "fixed_bit_width": encode_blob(_ints(), FixedBitWidth()),
    "zigzag": encode_blob(_ints() - 500_000, ZigZag()),
    "varint": encode_blob(_ints(), Varint()),
    "delta": encode_blob(np.sort(_ints()), Delta()),
    "for": encode_blob(_ints() + 10**9, FrameOfReference()),
    "rle": encode_blob(np.repeat(_ints(40), 25), RLE()),
    "dictionary": encode_blob(_ints(500) % 50, Dictionary()),
    "fastpfor": encode_blob(_ints(), FastPFOR()),
    "fastbp128": encode_blob(_ints(), FastBP128()),
    "huffman": encode_blob(_ints() % 200, Huffman()),
    "chunked": encode_blob(_ints(), Chunked()),
    "bitshuffle": encode_blob(_ints(), BitShuffle()),
    "gorilla": encode_blob(_floats(), Gorilla()),
    "chimp": encode_blob(_floats(), Chimp()),
    "alp": encode_blob(_floats(), ALP()),
    "pseudodecimal": encode_blob(_floats(), Pseudodecimal()),
    "mainly_constant": encode_blob(
        np.where(RNG.random(400) < 0.9, 1.5, _floats(400)), MainlyConstant()
    ),
    "fsst": encode_blob(_strings(), FSST()),
    "sparse_bool": encode_blob(_bools(), SparseBool()),
    "roaring": encode_blob(_bools(), Roaring()),
    "list": encode_blob(_lists(), ListEncoding()),
    "sparse_list_delta": encode_blob(_lists(), SparseListDelta()),
}


def _decode_must_fail_cleanly(blob: bytes) -> None:
    """Decode may succeed or raise ValueError; nothing else is legal."""
    try:
        decode_blob(bytes(blob))
    except ValueError:
        pass  # EncodingError subclasses ValueError: the contract
    # any other exception type propagates and fails the test


@pytest.mark.parametrize("name", sorted(BLOBS), ids=str)
def test_truncation_every_prefix(name):
    blob = BLOBS[name]
    # every prefix for short blobs; a stride for long ones, but always
    # include the first/last 64 boundaries where headers live
    if len(blob) <= 256:
        cuts = range(len(blob))
    else:
        cuts = sorted(
            set(range(0, 64))
            | set(range(len(blob) - 64, len(blob)))
            | set(range(64, len(blob) - 64, 37))
        )
    for cut in cuts:
        _decode_must_fail_cleanly(blob[:cut])


@pytest.mark.parametrize("name", sorted(BLOBS), ids=str)
def test_single_bit_flips(name):
    blob = bytearray(BLOBS[name])
    rng = np.random.default_rng(hash(name) & 0xFFFF)
    offsets = rng.integers(0, len(blob), 80)
    bits = rng.integers(0, 8, 80)
    for off, bit in zip(offsets.tolist(), bits.tolist()):
        mutated = bytearray(blob)
        mutated[off] ^= 1 << bit
        _decode_must_fail_cleanly(mutated)


@pytest.mark.parametrize("name", sorted(BLOBS), ids=str)
def test_byte_stomps(name):
    """Overwrite whole byte ranges (simulated torn/overwritten pages)."""
    blob = bytearray(BLOBS[name])
    rng = np.random.default_rng(hash(name) & 0xFFFF ^ 0xABCD)
    for _ in range(30):
        start = int(rng.integers(0, len(blob)))
        span = int(rng.integers(1, min(16, len(blob) - start) + 1))
        mutated = bytearray(blob)
        mutated[start : start + span] = bytes(
            rng.integers(0, 256, span, dtype=np.uint8).tobytes()
        )
        _decode_must_fail_cleanly(mutated)


def test_header_garbage():
    """All-0xFF and all-zero blobs of assorted sizes decode cleanly-fail."""
    for size in (0, 1, 2, 7, 16, 64, 1024):
        _decode_must_fail_cleanly(b"\xff" * size)
        _decode_must_fail_cleanly(b"\x00" * size)


def test_unknown_id_byte():
    with pytest.raises(ValueError):
        decode_blob(b"\xf7" + b"\x00" * 32)
