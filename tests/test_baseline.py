"""Tests for the Parquet-like baseline (thrift-like protocol + format)."""

import time

import numpy as np
import pytest

from repro.baseline import (
    ParquetLikeReader,
    ParquetLikeWriter,
    parse_metadata,
    serialize_metadata,
)
from repro.baseline.metadata import (
    ColumnMetaData,
    FileMetaData,
    RowGroup,
    SchemaElement,
    Statistics,
)
from repro.baseline.thriftlike import CompactReader, CompactWriter, T_STRUCT
from repro.core.table import Table
from repro.iosim import SimulatedStorage


class TestCompactProtocol:
    def test_field_types_roundtrip(self):
        w = CompactWriter()
        w.struct_begin()
        w.field_i32(1, -42)
        w.field_i64(2, 2**40)
        w.field_bool(3, True)
        w.field_string(4, "path.to.column")
        w.struct_end()
        r = CompactReader(w.getvalue())
        r.struct_begin()
        fid, _t = r.read_field_header()
        assert fid == 1 and r.read_i32() == -42
        fid, _t = r.read_field_header()
        assert fid == 2 and r.read_i64() == 2**40
        fid, t = r.read_field_header()
        assert fid == 3  # bool value is in the type nibble
        fid, _t = r.read_field_header()
        assert fid == 4 and r.read_string() == "path.to.column"
        assert r.read_field_header() is None

    def test_field_id_delta_encoding(self):
        w = CompactWriter()
        w.struct_begin()
        w.field_i32(1, 0)
        w.field_i32(100, 0)  # delta 99 > 15: explicit id path
        w.struct_end()
        r = CompactReader(w.getvalue())
        r.struct_begin()
        assert r.read_field_header()[0] == 1
        r.read_i32()
        assert r.read_field_header()[0] == 100

    def test_skip_walks_nested_structs(self):
        w = CompactWriter()
        w.struct_begin()
        w.field_struct(1)
        w.field_string(1, "inner")
        w.struct_end()
        w.field_i32(2, 5)
        w.struct_end()
        r = CompactReader(w.getvalue())
        r.struct_begin()
        _fid, t = r.read_field_header()
        r.skip(t)  # skip the nested struct entirely
        fid, _t = r.read_field_header()
        assert fid == 2 and r.read_i32() == 5


class TestMetadataRoundtrip:
    def _meta(self, n_cols=100):
        meta = FileMetaData(num_rows=777)
        meta.schema.append(SchemaElement(name="root", num_children=n_cols))
        rg = RowGroup(num_rows=777)
        for i in range(n_cols):
            meta.schema.append(SchemaElement(name=f"col{i}", type_code=1))
            rg.columns.append(
                ColumnMetaData(
                    path_in_schema=f"col{i}",
                    type_code=1,
                    encodings=[0, 4],
                    num_values=777,
                    data_page_offset=1000 + i,
                    statistics=Statistics(b"\x00", b"\xff", i),
                )
            )
        meta.row_groups.append(rg)
        return meta

    def test_roundtrip(self):
        meta = self._meta()
        out = parse_metadata(serialize_metadata(meta))
        assert out.num_rows == 777
        assert len(out.schema) == 101
        assert out.row_groups[0].columns[42].path_in_schema == "col42"
        assert out.row_groups[0].columns[42].statistics.null_count == 42
        assert out.row_groups[0].columns[7].encodings == [0, 4]

    def test_parse_cost_scales_with_columns(self):
        """The Fig 5 premise: full parse is linear in column count."""
        small = serialize_metadata(self._meta(200))
        large = serialize_metadata(self._meta(2000))

        def time_parse(data, reps=5):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                parse_metadata(data)
                best = min(best, time.perf_counter() - t0)
            return best

        ratio = time_parse(large) / time_parse(small)
        assert ratio > 4  # ~10x columns should cost ~10x; allow jitter


class TestParquetLikeFormat:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        table = Table(
            {
                "a": rng.integers(0, 100, 500).astype(np.int64),
                "b": rng.normal(size=500),
                "s": [f"v{i % 13}".encode() for i in range(500)],
                "l": [
                    rng.integers(0, 10, 3).astype(np.int64) for _ in range(500)
                ],
            }
        )
        dev = SimulatedStorage()
        ParquetLikeWriter(dev, rows_per_group=200).write(table)
        out = ParquetLikeReader(dev).project(["a", "b", "s", "l"])
        assert out.equals(table)

    def test_bad_magic_rejected(self):
        dev = SimulatedStorage()
        dev.append(b"not a parquet file at all")
        with pytest.raises(ValueError, match="magic"):
            ParquetLikeReader(dev)

    def test_open_reads_whole_footer(self):
        rng = np.random.default_rng(1)
        table = Table(
            {f"c{i}": rng.integers(0, 9, 10).astype(np.int64) for i in range(300)}
        )
        dev = SimulatedStorage()
        meta = ParquetLikeWriter(dev).write(table)
        footer_len = len(serialize_metadata(meta))
        dev.stats.reset()
        ParquetLikeReader(dev)
        assert dev.stats.bytes_read >= footer_len
