"""Metadata / result-cache behaviour, proven at the storage layer.

A counting catalog store records every manifest read
(``read_metadata``) and every file open (``open_data`` — each open
costs one footer parse).  The serving layer's contract:

* repeat queries and scans on a warm server do **zero** manifest reads
  and **zero** file opens — metadata is parsed once per (snapshot,
  file) for the life of the server;
* a committed snapshot invalidates nothing retroactively: the next
  HEAD request reads exactly the new snapshot's manifest and opens
  exactly the new file, while requests pinned to old snapshots keep
  hitting their caches;
* an in-place compliance scrub (:func:`repro.core.deletion.delete_rows`
  fires :func:`repro.core.chunk_cache.notify_mutation`) invalidates
  exactly the entries whose snapshot references the mutated file —
  entries for snapshots that never saw the file survive untouched —
  and the recomputed response is byte-identical to a fresh library
  replay.
"""

from __future__ import annotations

import numpy as np

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core.chunk_cache import storage_identity
from repro.core.deletion import delete_rows
from repro.obs import families as fam
from repro.core.table import Table
from repro.obs.metrics import default_registry
from repro.server import BullionServer, ServerClient, TableService
from repro.server import protocol
from repro.server.cache import KeyedCache, ReaderPool


class CountingCatalogStore(MemoryCatalogStore):
    """Counts manifest reads and data-file opens between phases."""

    def __init__(self) -> None:
        super().__init__("counting")
        self.meta_reads = 0
        self.data_opens = 0

    def read_metadata(self, name: str) -> bytes:
        self.meta_reads += 1
        return super().read_metadata(name)

    def open_data(self, file_id: str):
        self.data_opens += 1
        return super().open_data(file_id)

    def begin_phase(self) -> None:
        self.meta_reads = 0
        self.data_opens = 0


def _batch(lo: int, n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table({
        "ts": np.arange(lo, lo + n, dtype=np.int64),
        "v": rng.normal(size=n),
        "region": rng.integers(0, 5, size=n).astype(np.int32),
    })


def _serve(store, table, **kwargs):
    service = TableService({"events": table}, workers=2, **kwargs)
    server = BullionServer(service)
    client = ServerClient(server.host, server.port, timeout=30.0)
    return server, client


def test_warm_repeat_requests_read_no_metadata():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    for k in range(3):
        table.append(_batch(k * 100, 100, seed=k))
    server, client = _serve(store, table)
    try:
        # cold pass: parse everything once
        client.query("events", ["count", "sum(v)"], where="region >= 1")
        client.scan("events", ["ts", "v"], where="region = 2")
        reg = default_registry()
        store.begin_phase()
        base = reg.snapshot()
        for _ in range(5):
            client.query(
                "events", ["count", "sum(v)"], where="region >= 1"
            )
            client.scan("events", ["ts", "v"], where="region = 2")
        assert store.meta_reads == 0, "warm queries re-read a manifest"
        assert store.data_opens == 0, "warm queries re-read a footer"
        delta = reg.delta(base)
        assert delta.value("server_result_cache_hits_total") == 5
        assert delta.value("server_plan_cache_hits_total") == 5
        assert delta.value("server_footer_cache_misses_total") == 0
    finally:
        client.close()
        server.close()


def test_commit_costs_exactly_the_new_metadata():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    table.append(_batch(0, 100, seed=0))
    table.append(_batch(100, 100, seed=1))
    server, client = _serve(store, table)
    try:
        old = client.query("events", ["sum(v)"])
        old_sid = old.snapshot_id
        table.append(_batch(200, 100, seed=2))  # the racing committer
        store.begin_phase()
        head = client.query("events", ["sum(v)"])
        assert head.snapshot_id == old_sid + 1
        # commit already cached the new snapshot document in the
        # table handle, so the only storage touch is the pin-time
        # existence check — and never a re-read of the old manifests
        assert store.meta_reads == 1
        # exactly the new file's footer; the old readers stay pooled
        assert store.data_opens == 1
        # the old snapshot's entry was not invalidated by the commit
        store.begin_phase()
        past = client.query("events", ["sum(v)"], snapshot_id=old_sid)
        assert past.raw == old.raw
        assert store.meta_reads == 0 and store.data_opens == 0
    finally:
        client.close()
        server.close()


def test_scrub_invalidates_exactly_the_affected_entries():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    s1 = table.append(_batch(0, 100, seed=0))
    s2 = table.append(_batch(100, 100, seed=1))
    (file_b,) = sorted(s2.file_ids() - s1.file_ids())
    server, client = _serve(store, table)
    try:
        reg = default_registry()
        old = client.query(
            "events", ["sum(ts)"], snapshot_id=s1.snapshot_id
        )
        head = client.query("events", ["sum(ts)"])
        assert head.snapshot_id == s2.snapshot_id

        # compliance scrub, outside the catalog: rows 0-2 of file B
        storage = store.open_data(file_b)
        base = reg.snapshot()
        store.begin_phase()
        delete_rows(storage, [0, 1, 2])
        delta = reg.delta(base)
        assert (
            delta.value(
                "server_cache_invalidations_total", cache="readers"
            )
            == 1
        )
        assert (
            delta.value(
                "server_cache_invalidations_total", cache="results"
            )
            == 1  # only the head entry references file B
        )

        # the S1 entry survived: cache hit, zero storage traffic,
        # byte-identical to the pre-scrub response
        store.begin_phase()
        past = client.query(
            "events", ["sum(ts)"], snapshot_id=s1.snapshot_id
        )
        assert past.raw == old.raw
        assert store.meta_reads == 0 and store.data_opens == 0

        # the head entry was dropped: recomputed with exactly one
        # file re-opened (the scrubbed one), and byte-identical to a
        # fresh library replay through an independent table handle
        store.begin_phase()
        fresh = client.query("events", ["sum(ts)"])
        assert store.data_opens == 1
        assert fresh.raw != head.raw, "scrub must change the answer"
        replica = CatalogTable(store)
        pin = replica.pin(snapshot_id=s2.snapshot_id)
        try:
            plan = protocol.canonical_query_plan(
                {"aggregates": ["sum(ts)"]}
            )
            assert fresh.raw == protocol.replay_query_frame(
                pin, s2.snapshot_id, plan
            )
        finally:
            pin.release()
    finally:
        client.close()
        server.close()


def test_mutation_of_unknown_storage_is_a_noop():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    table.append(_batch(0, 50, seed=0))
    server, client = _serve(store, table)
    try:
        warm = client.query("events", ["sum(ts)"])
        # scrub a file the server never opened (a different store)
        other = MemoryCatalogStore("other")
        other_table = CatalogTable.create(other)
        snap = other_table.append(_batch(0, 50, seed=9))
        (fid,) = snap.file_ids()
        delete_rows(other.open_data(fid), [0])
        store.begin_phase()
        again = client.query("events", ["sum(ts)"])
        assert again.raw == warm.raw
        assert store.meta_reads == 0 and store.data_opens == 0
    finally:
        client.close()
        server.close()


# ---------------------------------------------------------------------------
# cache structures in isolation
# ---------------------------------------------------------------------------

def test_reader_pool_shares_footers_and_drains_busy_entries():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    snap = table.append(_batch(0, 50, seed=0))
    (fid,) = snap.file_ids()
    store.begin_phase()
    pool = ReaderPool(store, capacity=4)
    r1 = pool.acquire(fid)
    r2 = pool.acquire(fid)
    assert r1 is r2 and store.data_opens == 1
    # invalidate while busy: the entry drains instead of vanishing
    # under its holders, and the next acquire opens afresh
    assert pool.invalidate_file(fid)
    r3 = pool.acquire(fid)
    assert r3 is not r1 and store.data_opens == 2
    pool.release(fid, r3)
    pool.release(fid, r1)
    pool.release(fid, r2)
    assert len(pool) == 1
    identity = storage_identity(store.open_data(fid))
    assert pool.file_for_identity(identity) == fid
    pool.close()


def test_keyed_cache_invalidates_by_file_tag():
    cache = KeyedCache(
        8,
        fam.SERVER_RESULT_CACHE_HITS,
        fam.SERVER_RESULT_CACHE_MISSES,
        "results",
    )
    cache.put(b"a", 1, file_ids={"f1"})
    cache.put(b"b", 2, file_ids={"f1", "f2"})
    cache.put(b"c", 3, file_ids={"f3"})
    assert cache.invalidate_files({"f1"}) == 2
    assert cache.get(b"a") is None and cache.get(b"b") is None
    assert cache.get(b"c") == 3
    cache.clear()
    assert len(cache) == 0


def test_keyed_cache_lru_eviction():
    cache = KeyedCache(
        2,
        fam.SERVER_PLAN_CACHE_HITS,
        fam.SERVER_PLAN_CACHE_MISSES,
        "plans",
    )
    cache.put(b"a", 1)
    cache.put(b"b", 2)
    assert cache.get(b"a") == 1  # refresh a
    cache.put(b"c", 3)  # evicts b, the least recently used
    assert cache.get(b"b") is None
    assert cache.get(b"a") == 1 and cache.get(b"c") == 3
